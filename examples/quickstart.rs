//! Quickstart: build a register automaton, run it, project it, verify it.
//!
//! ```sh
//! cargo run -p rega-examples --example quickstart
//! ```

use rega_analysis::emptiness::{check_emptiness, EmptinessOptions};
use rega_analysis::verify::{verify, VerifyOptions, VerifyResult};
use rega_core::simulate::{self, SearchLimits};
use rega_core::ExtendedAutomaton;
use rega_data::{Database, Literal, Qf, QfTerm, Schema, SigmaType, Term, Value};
use rega_logic::LtlFo;
use rega_views::prop20::project_register_automaton;

fn main() {
    // A 2-register automaton: register 2 holds a session token that never
    // changes; register 1 is a request id, fresh at every step.
    let mut ra = rega_core::RegisterAutomaton::new(2, Schema::empty());
    let serving = ra.add_state("serving");
    ra.set_initial(serving);
    ra.set_accepting(serving);
    ra.add_transition(
        serving,
        SigmaType::new(
            2,
            [
                Literal::eq(Term::x(1), Term::y(1)),  // token persists
                Literal::neq(Term::x(0), Term::y(0)), // request id changes
                Literal::neq(Term::x(0), Term::x(1)), // id ≠ token
            ],
        ),
        serving,
    )
    .expect("valid transition");
    println!("== the automaton ==\n{ra}");

    // 1. Simulate run prefixes.
    let ext = ExtendedAutomaton::new(ra.clone());
    let db = Database::new(Schema::empty());
    let pool: Vec<Value> = (1..=3).map(Value).collect();
    let runs = simulate::enumerate_prefixes(&ext, &db, 4, &pool, SearchLimits::default());
    println!("== {} run prefixes of length 4; one of them ==", runs.len());
    if let Some(run) = runs.first() {
        for (i, c) in run.configs.iter().enumerate() {
            println!("  position {i}: request={}, token={}", c.regs[0], c.regs[1]);
        }
    }

    // 2. Emptiness (Corollary 10): does the automaton have infinite runs?
    let verdict = check_emptiness(&ext, &EmptinessOptions::default()).expect("decidable");
    println!("== emptiness == non-empty: {}", verdict.is_nonempty());

    // 3. Project away the token (Proposition 20): what does a user see who
    // only observes the request ids?
    let projection = project_register_automaton(&ra, 1).expect("no database");
    println!(
        "== request-id view == {} states, {} global constraints",
        projection.view.ra().num_states(),
        projection.view.constraints().len()
    );

    // 4. Verify (Theorem 12): the token never changes.
    let phi = LtlFo::new(
        "G token_stable",
        [("token_stable", Qf::Eq(QfTerm::x(1), QfTerm::y(1)))],
    )
    .expect("well-formed sentence");
    match verify(&ext, &phi, &VerifyOptions::default()).expect("decidable") {
        VerifyResult::Holds => println!("== verification == G (x2 = y2) holds"),
        VerifyResult::CounterExample(w) => {
            println!(
                "== verification == counterexample found: {}",
                w.prefix_run.configs.len()
            )
        }
    }

    // ... and a property that fails: the request id eventually stabilizes.
    let phi = LtlFo::new(
        "F (G id_stable)",
        [("id_stable", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))],
    )
    .expect("well-formed sentence");
    match verify(&ext, &phi, &VerifyOptions::default()).expect("decidable") {
        VerifyResult::Holds => println!("unexpected: F G (x1 = y1) holds"),
        VerifyResult::CounterExample(_) => {
            println!("== verification == F G (x1 = y1) fails, as expected")
        }
    }
}
