//! LTL-FO verification (Theorem 12) on the reviewing workflow: properties
//! with register comparisons, database atoms, and global variables.
//!
//! ```sh
//! cargo run -p rega-examples --example verification
//! ```

use rega_analysis::verify::{verify, VerifyOptions, VerifyResult};
use rega_core::ExtendedAutomaton;
use rega_data::{Qf, QfTerm};
use rega_logic::LtlFo;
use rega_workflow::abstract_model;

fn check(ext: &ExtendedAutomaton, name: &str, phi: &LtlFo) {
    match verify(ext, phi, &VerifyOptions::default()).expect("decidable") {
        VerifyResult::Holds => println!("  ✓ {name}: holds"),
        VerifyResult::CounterExample(w) => {
            println!("  ✗ {name}: fails; counterexample register trace:");
            for (i, c) in w.prefix_run.configs.iter().take(6).enumerate() {
                let vals: Vec<String> = c.regs.iter().map(|v| v.to_string()).collect();
                println!("      position {i}: [{}]", vals.join(", "));
            }
        }
    }
}

fn main() {
    let wf = abstract_model();
    let ext = ExtendedAutomaton::new(wf.automaton.clone());
    println!(
        "verifying the abstract reviewing workflow ({} states, {} registers)…",
        ext.ra().num_states(),
        ext.ra().k()
    );

    // The paper id never changes once the run leaves `start`: X G (x1=y1).
    check(
        &ext,
        "X G (paper stable)",
        &LtlFo::new(
            "X (G paper_stable)",
            [("paper_stable", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))],
        )
        .expect("well-formed"),
    );

    // The author never changes either.
    check(
        &ext,
        "X G (author stable)",
        &LtlFo::new(
            "X (G author_stable)",
            [("author_stable", Qf::Eq(QfTerm::x(1), QfTerm::y(1)))],
        )
        .expect("well-formed"),
    );

    // The reviewer register is NOT globally stable (reassignments happen).
    check(
        &ext,
        "X G (reviewer stable)",
        &LtlFo::new(
            "X (G reviewer_stable)",
            [("reviewer_stable", Qf::Eq(QfTerm::x(2), QfTerm::y(2)))],
        )
        .expect("well-formed"),
    );

    // Conflict-of-interest freedom, with a global variable: for every value
    // z, whenever the author holds z, the reviewer does not — unless the
    // reviewer slot holds the unassigned placeholder (= the paper id).
    // ∀z X G (author = z → reviewer ≠ z ∨ reviewer = paper)
    check(
        &ext,
        "∀z X G (author=z → reviewer≠z ∨ unassigned)",
        &LtlFo::new(
            "X (G (author_is_z -> (reviewer_not_z | unassigned)))",
            [
                ("author_is_z", Qf::Eq(QfTerm::x(1), QfTerm::z(0))),
                ("reviewer_not_z", Qf::neq(QfTerm::x(2), QfTerm::z(0))),
                ("unassigned", Qf::Eq(QfTerm::x(2), QfTerm::x(0))),
            ],
        )
        .expect("well-formed"),
    );

    // Liveness: the Büchi condition forces every run to reach `accepted`
    // eventually and loop there, where all registers propagate — so
    // "eventually the registers stabilize forever" HOLDS.
    check(
        &ext,
        "F G (all registers stable)",
        &LtlFo::new(
            "F (G (s0 & s1 & s2))",
            [
                ("s0", Qf::Eq(QfTerm::x(0), QfTerm::y(0))),
                ("s1", Qf::Eq(QfTerm::x(1), QfTerm::y(1))),
                ("s2", Qf::Eq(QfTerm::x(2), QfTerm::y(2))),
            ],
        )
        .expect("well-formed"),
    );

    // A failing global-variable property, exposing the placeholder
    // convention: the paper id *is* reused in the reviewer slot while no
    // reviewer is assigned, so ∀z X G (paper = z → reviewer ≠ z) fails.
    check(
        &ext,
        "∀z X G (paper=z → reviewer≠z)",
        &LtlFo::new(
            "X (G (paper_is_z -> reviewer_not_z))",
            [
                ("paper_is_z", Qf::Eq(QfTerm::x(0), QfTerm::z(0))),
                ("reviewer_not_z", Qf::neq(QfTerm::x(2), QfTerm::z(0))),
            ],
        )
        .expect("well-formed"),
    );
}
