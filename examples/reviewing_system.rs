//! The manuscript-reviewing workflow of the paper's introduction:
//! simulate it over a generated database, compute the author and
//! double-blind reviewer views, and show what each user observes.
//!
//! ```sh
//! cargo run -p rega-examples --example reviewing_system
//! ```

use rega_analysis::lr::{is_lr_bounded, LrOptions};
use rega_workflow::{
    abstract_model, database_model, sample_database, views::project_run, views::with_views,
};

fn main() {
    // --- The database-backed model, simulated over a concrete database.
    let wf = database_model();
    let db = sample_database(&wf, 3, 4, 2, 42);
    println!("== generated database ==\n{db}");

    let runs = rega_workflow::scenario::sample_runs(&wf, &db, 4, 50).expect("simulation");
    println!("== {} sampled run prefixes; one of them ==", runs.len());
    if let Some(run) = runs
        .iter()
        .find(|r| r.configs.iter().any(|c| c.state == wf.under_review))
    {
        for (i, c) in run.configs.iter().enumerate() {
            println!(
                "  step {i}: {:<13} paper={} author={} reviewer={} topic={}",
                wf.automaton.state_name(c.state),
                c.regs[0],
                c.regs[1],
                c.regs[2],
                c.regs[3],
            );
        }

        // Runtime views of the same run:
        println!("  the author sees:   {:?}", project_run(run, &[0, 1]));
        println!("  the reviewer sees: {:?}", project_run(run, &[0, 2]));
    }

    // --- The abstract model and its *specification-level* views
    // (Proposition 20): an automaton describing exactly what each class of
    // user can observe, constraints included.
    let bundle = with_views().expect("views constructible");
    println!(
        "== abstract workflow == {} states / author view: {} states, {} constraints / \
         reviewer view: {} states, {} constraints",
        abstract_model().automaton.num_states(),
        bundle.author.view.ra().num_states(),
        bundle.author.view.constraints().len(),
        bundle.reviewer.view.ra().num_states(),
        bundle.reviewer.view.constraints().len(),
    );

    // Proposition 20 guarantees the views are LR-bounded — i.e. they could
    // themselves be run as register automata with finitely many extra
    // registers (Theorem 19).
    let lr = is_lr_bounded(&bundle.author.view, &LrOptions::default()).expect("no database");
    println!(
        "== author view LR-bounded: {} (vertex-cover bound {}) ==",
        lr.bounded, lr.bound
    );
}
