//! The paper's Examples 1, 4, 5 end to end: why register automata are not
//! closed under projection, and how extended automata fix it.
//!
//! ```sh
//! cargo run -p rega-examples --example projection_views
//! ```

use rega_automata::Lasso;
use rega_core::simulate::{self, SearchLimits};
use rega_core::{paper, ExtendedAutomaton};
use rega_data::{Database, Schema, Value};
use rega_views::counterexamples::refute_view_candidate;
use rega_views::prop20::project_register_automaton;

fn main() {
    let limits = SearchLimits {
        max_nodes: 2_000_000,
        max_runs: 500_000,
    };
    let db = Database::new(Schema::empty());
    let pool = vec![Value(1), Value(2)];

    // Example 1: the 2-register automaton whose second register carries the
    // initial value forever.
    let (a, _) = paper::example1();
    println!("== Example 1 ==\n{a}");

    // Example 4: its projection on register 1 keeps the initial value
    // recurring at every q1-position — a property *no* register automaton
    // can express. Demonstrate with the probe traces of the argument:
    let original = ExtendedAutomaton::new(a.clone());
    let recurring = Lasso::periodic(vec![vec![Value(1)], vec![Value(2)]]);
    let vanishing = Lasso::new(vec![vec![Value(1)]], vec![vec![Value(2)], vec![Value(2)]]);
    for (name, probe) in [("recurring", &recurring), ("vanishing", &vanishing)] {
        let admitted =
            simulate::find_lasso_with_projection(&original, &db, probe, &pool, 12, limits)
                .expect("search")
                .is_some();
        println!("projection admits the {name} trace: {admitted}");
    }

    // An unconstrained 1-register candidate view accepts the vanishing
    // trace too — refuted (Example 4's swap argument, executably).
    let mut free = rega_core::RegisterAutomaton::new(1, Schema::empty());
    let p1 = free.add_state("p1");
    let p2 = free.add_state("p2");
    free.set_initial(p1);
    free.set_accepting(p1);
    for (from, to) in [(p1, p2), (p2, p2), (p2, p1)] {
        free.add_transition(from, rega_data::SigmaType::empty(1), to)
            .expect("valid");
    }
    let candidate = ExtendedAutomaton::new(free);
    println!(
        "unconstrained candidate refuted: {}",
        refute_view_candidate(&candidate, 4, &pool, limits).expect("comparable")
    );

    // Example 5: the extended automaton with the global constraint
    // e=11 = p1 p2* p1 is the correct view…
    let example5 = paper::example5();
    println!(
        "Example 5 (global constraint e=11 = p1 p2* p1) refuted: {}",
        refute_view_candidate(&example5, 4, &pool, limits).expect("comparable")
    );

    // …and so is the Lemma 21-based construction (Proposition 20):
    let constructed = project_register_automaton(&a, 1).expect("no database");
    println!(
        "constructed view ({} states, {} constraints) refuted: {}",
        constructed.view.ra().num_states(),
        constructed.view.constraints().len(),
        refute_view_candidate(&constructed.view, 4, &pool, limits).expect("comparable")
    );
}
