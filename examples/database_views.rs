//! Section 6: hiding the database. Example 23's automaton cannot be
//! projected by any extended automaton; the Theorem 24 construction
//! produces an *enhanced* automaton — with finiteness and tuple-inequality
//! constraints — describing `⋃_D Π₁(Reg(D, A))`.
//!
//! ```sh
//! cargo run -p rega-examples --example database_views
//! ```

use rega_core::run::{Config, LassoRun};
use rega_core::{paper, StateId};
use rega_data::{Database, Schema, Value};
use rega_views::thm24::{project_hiding_database, Thm24Options};

fn main() {
    let a = paper::example23();
    println!("== Example 23's automaton ==\n{a}");

    let proj = project_hiding_database(&a, 1, &Thm24Options::default())
        .expect("within the supported fragment");
    println!(
        "== the database-hiding view == {} states, {} extended constraints, \
         {} finiteness constraints, {} tuple-inequality constraints",
        proj.view.ext().ra().num_states(),
        proj.view.ext().constraints().len(),
        proj.view.finiteness_constraints().len(),
        proj.view.tuple_inequalities().len(),
    );

    // Build a candidate 6-cycle trace: adjacent values differ (so the
    // plain constraints pass), but the value 7 appears at both an
    // E-required and an E-forbidden position — no database can support it.
    let ra2 = proj.view.ext().ra();
    let vals = [7u64, 8, 9, 7, 10, 11].map(Value);
    let empty_db = Database::new(Schema::empty());
    'outer: for p0 in ra2.states().filter(|&s| ra2.is_initial(s)) {
        // Depth-6 path search back to p0.
        let mut paths: Vec<Vec<rega_core::TransId>> =
            ra2.outgoing(p0).iter().map(|&t| vec![t]).collect();
        for _ in 1..6 {
            let mut next = Vec::new();
            for path in paths {
                let cur = ra2.transition(*path.last().expect("non-empty")).to;
                for &t in ra2.outgoing(cur) {
                    let mut p2 = path.clone();
                    p2.push(t);
                    next.push(p2);
                }
            }
            paths = next;
        }
        for path in paths {
            if ra2.transition(*path.last().expect("non-empty")).to != p0 {
                continue;
            }
            let mut configs = vec![Config::new(p0, vec![vals[0]])];
            for (idx, &t) in path.iter().take(5).enumerate() {
                configs.push(Config::new(ra2.transition(t).to, vec![vals[idx + 1]]));
            }
            let run = LassoRun::new(configs, path.clone(), 0);
            if proj.view.ext().check_lasso_run(&empty_db, &run).is_ok() {
                println!(
                    "\ncandidate trace 7 8 9 7 10 11 (looping): \
                     passes the plain (in)equality constraints"
                );
                match proj.view.check_lasso_run(&empty_db, &run, Some(12)) {
                    Ok(()) => println!("…and the enhanced constraints?! (unexpected)"),
                    Err(e) => println!("…but the tuple-inequality layer rejects it:\n  {e}"),
                }
                break 'outer;
            }
        }
    }

    // A legal trace: values alternate between two groups, never crossing.
    let p_state = ra2
        .states()
        .find(|&s| ra2.is_initial(s) && !ra2.outgoing(s).is_empty())
        .expect("initial state");
    let t1 = ra2.outgoing(p_state)[0];
    let q_state: StateId = ra2.transition(t1).to;
    if let Some(t2) = ra2
        .outgoing(q_state)
        .iter()
        .copied()
        .find(|&t| ra2.transition(t).to == p_state)
    {
        let run = LassoRun::new(
            vec![
                Config::new(p_state, vec![Value(0)]),
                Config::new(q_state, vec![Value(1)]),
            ],
            vec![t1, t2],
            0,
        );
        match proj.view.check_lasso_run(&empty_db, &run, Some(12)) {
            Ok(()) => {
                println!("\nalternating trace 0 1 0 1 …: accepted (some database supports it)")
            }
            Err(e) => println!("\nalternating trace rejected: {e}"),
        }
    }
}
