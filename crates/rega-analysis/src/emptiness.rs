//! Emptiness of extended register automata (Corollary 10), with witness
//! construction.
//!
//! The paper's route: `Control(𝒜)` is quasi-regular (Theorem 9) — a trace
//! is realizable over a *finite* database iff it is a symbolic control
//! trace whose inequality graph `G_w` has bounded cliques; emptiness of
//! quasi-regular languages is decidable. The executable counterpart works
//! lasso-by-lasso:
//!
//! 1. enumerate accepting lassos of the Büchi automaton for `SControl(A)`;
//! 2. for each, compute the stabilized constraint structure
//!    ([`ClassStructure`]) and check its consistency;
//! 3. with a database present, attempt a *periodic collapse* of the
//!    active-domain classes (the executable stand-in for the paper's
//!    finite-model-property + χ-bounded-coloring argument): classes that
//!    are shifts of one another by a multiple of the period share a value.
//!    A successful collapse yields a finite database; failure for every
//!    collapse period within budget rejects the lasso (e.g. the `pᵚ` trace
//!    of Example 8, whose `G_w` cliques grow without bound).
//!
//! A successful lasso yields a [`Witness`]: the control lasso, a finite
//! database, a concrete *valid* run prefix over it, and — whenever the
//! register values themselves can be made ultimately periodic — a complete
//! [`LassoRun`] verified end-to-end. (Example 7 shows values cannot always
//! be periodic even when the language is non-empty; there the witness
//! carries the prefix run plus the consistent symbolic structure.)

use crate::classes::{ClassOptions, ClassStructure};
use rega_automata::{emptiness as nba_emptiness, Lasso};
use rega_core::run::{Config, FiniteRun, LassoRun};
use rega_core::symbolic::{scontrol_nba_governed, SControlSource};
use rega_core::{Budget, CoreError, ExtendedAutomaton, GovernError, TransId};
use rega_data::{Database, Literal, SatCache, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The default DFS step budget of the lasso search (matches
/// `enumerate_accepting_lassos`).
const LASSO_SEARCH_MAX_STEPS: usize = 500_000;

/// Budgets for the emptiness search.
#[derive(Clone, Copy, Debug)]
pub struct EmptinessOptions {
    /// Maximum number of candidate lassos examined.
    pub max_lassos: usize,
    /// Maximum simple-cycle length in the `SControl` automaton.
    pub max_cycle_len: usize,
    /// Collapse periods tried: `t · period` for `t = 1..=max_collapse`.
    pub max_collapse: usize,
    /// Structure stabilization budgets.
    pub class_opts: ClassOptions,
}

impl Default for EmptinessOptions {
    fn default() -> Self {
        EmptinessOptions {
            max_lassos: 64,
            max_cycle_len: 10,
            max_collapse: 3,
            class_opts: ClassOptions::default(),
        }
    }
}

/// A constructive witness of non-emptiness.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The accepted symbolic control trace.
    pub control: Lasso<TransId>,
    /// A finite database over the automaton's schema.
    pub database: Database,
    /// A concrete valid run prefix over the database (global constraints
    /// checked over the prefix).
    pub prefix_run: FiniteRun,
    /// A complete ultimately periodic run, when one exists within budget
    /// (verified by `ExtendedAutomaton::check_lasso_run`).
    pub lasso_run: Option<LassoRun>,
}

/// The verdict of the emptiness check.
#[derive(Clone, Debug)]
pub enum EmptinessVerdict {
    /// No run was found within the search budget. Exact for the paper's
    /// examples; in general "empty up to the configured budgets".
    Empty,
    /// A run exists; see the witness.
    NonEmpty(Box<Witness>),
}

impl EmptinessVerdict {
    /// Whether the verdict is non-empty.
    pub fn is_nonempty(&self) -> bool {
        matches!(self, EmptinessVerdict::NonEmpty(_))
    }
}

/// Decides emptiness: is there a finite database and an infinite run of the
/// extended automaton over it? (Corollary 10.)
pub fn check_emptiness(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
) -> Result<EmptinessVerdict, CoreError> {
    check_emptiness_cached(ext, opts, &SatCache::new(ext.ra().schema().clone()))
}

/// [`check_emptiness`] with every σ-type operation of the pipeline —
/// `SControl` joint-satisfiability wiring and the per-lasso structure
/// analyses — memoized in `cache`. One cache serves all candidate lassos,
/// and a caller running repeated checks (benchmarks, monitoring startup)
/// can keep the cache warm across calls.
pub fn check_emptiness_cached(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
    cache: &SatCache,
) -> Result<EmptinessVerdict, CoreError> {
    check_emptiness_governed(ext, opts, cache, &Budget::unlimited())
}

/// [`check_emptiness_cached`] under a [`Budget`], running the **on-the-fly
/// kernel**: the `SControl` Büchi automaton is never materialized. A lazy
/// [`SControlSource`] wires successors into its edge arena only for states
/// the lasso search actually reaches, and each candidate lasso is handed to
/// witness construction *as it is discovered* — on satisfiable instances
/// the search stops at the first witness with most of the automaton never
/// built.
///
/// The traversal (and therefore the candidate order, the verdict, and the
/// returned witness) is byte-identical to the retained
/// [`check_emptiness_reference`] pipeline, which materializes the automaton
/// up front; the differential suite pins the two against each other.
///
/// Governance: successor wiring ticks `emptiness.on_the_fly.expand` (with a
/// type-count memory ceiling), the search loop ticks
/// `emptiness.on_the_fly.search` per DFS expansion, and every per-lasso
/// witness construction runs governed. A trip inside the lazy source is
/// stashed (rega-automata cannot see the budget type), drains the search,
/// and is re-raised here; nothing tripped is memoized.
pub fn check_emptiness_governed(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
    cache: &SatCache,
    budget: &Budget,
) -> Result<EmptinessVerdict, CoreError> {
    let _check = rega_obs::span!("emptiness.check", max_lassos = opts.max_lassos);
    let verdict = (|| {
        let mut src = SControlSource::new(ext.ra(), cache, budget);
        let trip = src.trip_handle();
        let mut search_trip: Option<GovernError> = None;
        let mut witness_err: Option<CoreError> = None;
        let mut found: Option<Witness> = None;
        let mut candidates = 0usize;
        let lassos = {
            let _phase = rega_obs::span!("emptiness.on_the_fly.search");
            nba_emptiness::for_each_accepting_lasso(
                &mut src,
                opts.max_lassos,
                opts.max_cycle_len,
                LASSO_SEARCH_MAX_STEPS,
                &mut || {
                    if trip.borrow().is_some() {
                        return true;
                    }
                    match budget.tick("emptiness.on_the_fly.search") {
                        Ok(()) => false,
                        Err(e) => {
                            search_trip = Some(e);
                            true
                        }
                    }
                },
                &mut |control| {
                    let _phase = rega_obs::span!("emptiness.witness", lasso = candidates);
                    candidates += 1;
                    if let Err(e) = budget.check("emptiness.witness") {
                        witness_err = Some(e.into());
                        return true;
                    }
                    match witness_for_lasso_governed(ext, control, opts, cache, budget) {
                        Ok(Some(w)) => {
                            found = Some(w);
                            true
                        }
                        Ok(None) => false,
                        Err(e) => {
                            witness_err = Some(e);
                            true
                        }
                    }
                },
            )
        };
        rega_obs::event!(
            "emptiness.lassos",
            candidates = lassos.len(),
            nodes_expanded = src.arena().nodes_expanded()
        );
        if let Some(e) = src.take_trip() {
            return Err(e.into());
        }
        if let Some(e) = search_trip {
            return Err(e.into());
        }
        if let Some(e) = witness_err {
            return Err(e);
        }
        match found {
            Some(w) => Ok(EmptinessVerdict::NonEmpty(Box::new(w))),
            None => Ok(EmptinessVerdict::Empty),
        }
    })();
    let stats = cache.stats();
    rega_obs::event!(
        "satcache.stats",
        hits = stats.hits,
        misses = stats.misses,
        distinct = stats.distinct_types
    );
    rega_obs::event!(
        "emptiness.verdict",
        nonempty = matches!(verdict, Ok(ref v) if v.is_nonempty())
    );
    verdict
}

/// The pre-kernel emptiness pipeline, retained verbatim as the pinned
/// reference for the differential suite: materialize the full `SControl`
/// Büchi automaton, enumerate every candidate lasso up front, then try
/// witnesses in enumeration order with from-scratch stabilized class
/// builds. [`check_emptiness`] must return identical verdicts (and the
/// same witness lasso) on every input.
pub fn check_emptiness_reference(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
) -> Result<EmptinessVerdict, CoreError> {
    check_emptiness_reference_cached(ext, opts, &SatCache::new(ext.ra().schema().clone()))
}

/// [`check_emptiness_reference`] with a shared [`SatCache`] (the reference
/// still memoizes σ-type analyses — the pipelines differ in *shape*, not
/// in caching policy).
pub fn check_emptiness_reference_cached(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
    cache: &SatCache,
) -> Result<EmptinessVerdict, CoreError> {
    check_emptiness_reference_governed(ext, opts, cache, &Budget::unlimited())
}

/// [`check_emptiness_reference_cached`] under a [`Budget`], governed in all
/// three phases: NBA wiring, lasso search (abort hook), and per-lasso
/// witness construction.
pub fn check_emptiness_reference_governed(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
    cache: &SatCache,
    budget: &Budget,
) -> Result<EmptinessVerdict, CoreError> {
    let _check = rega_obs::span!("emptiness.check", max_lassos = opts.max_lassos);
    let nba = {
        let _phase = rega_obs::span!("emptiness.nba_build");
        scontrol_nba_governed(ext.ra(), cache, budget)?
    };
    let lassos = {
        let _phase = rega_obs::span!("emptiness.lasso_search");
        // rega-automata cannot see the budget type, so governance enters
        // the search as an abort hook: each DFS expansion ticks, and the
        // first trip stops the enumeration and is re-raised here.
        let mut tripped: Option<GovernError> = None;
        let lassos = nba_emptiness::enumerate_accepting_lassos_abortable(
            &nba,
            opts.max_lassos,
            opts.max_cycle_len,
            LASSO_SEARCH_MAX_STEPS,
            &mut || match budget.tick("emptiness.lasso_search") {
                Ok(()) => false,
                Err(e) => {
                    tripped = Some(e);
                    true
                }
            },
        );
        if let Some(e) = tripped {
            return Err(e.into());
        }
        rega_obs::event!("emptiness.lassos", candidates = lassos.len());
        lassos
    };
    let verdict = (|| {
        for (i, control) in lassos.iter().enumerate() {
            let _phase = rega_obs::span!("emptiness.witness", lasso = i);
            budget.check("emptiness.witness")?;
            if let Some(w) =
                witness_for_lasso_reference_governed(ext, control, opts, cache, budget)?
            {
                return Ok(EmptinessVerdict::NonEmpty(Box::new(w)));
            }
        }
        Ok(EmptinessVerdict::Empty)
    })();
    let stats = cache.stats();
    rega_obs::event!(
        "satcache.stats",
        hits = stats.hits,
        misses = stats.misses,
        distinct = stats.distinct_types
    );
    rega_obs::event!(
        "emptiness.verdict",
        nonempty = matches!(verdict, Ok(ref v) if v.is_nonempty())
    );
    verdict
}

/// Runs the single-lasso pipeline: stabilized structure, consistency,
/// witness construction. Returns `None` if this lasso admits no run.
pub fn witness_for_lasso(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    opts: &EmptinessOptions,
) -> Result<Option<Witness>, CoreError> {
    witness_for_lasso_cached(
        ext,
        control,
        opts,
        &SatCache::new(ext.ra().schema().clone()),
    )
}

/// [`witness_for_lasso`] with a shared [`SatCache`].
pub fn witness_for_lasso_cached(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    opts: &EmptinessOptions,
    cache: &SatCache,
) -> Result<Option<Witness>, CoreError> {
    witness_for_lasso_governed(ext, control, opts, cache, &Budget::unlimited())
}

/// [`witness_for_lasso_cached`] under a [`Budget`]: the stabilized class
/// structure builds run governed and each collapse attempt re-checks the
/// deadline/token.
pub fn witness_for_lasso_governed(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    opts: &EmptinessOptions,
    cache: &SatCache,
    budget: &Budget,
) -> Result<Option<Witness>, CoreError> {
    // The structure horizon must comfortably exceed the largest collapse
    // period: prefix + 2·t·period + slack.
    let mut class_opts = opts.class_opts;
    class_opts.initial_periods = class_opts.initial_periods.max(2 * opts.max_collapse + 3);
    let s = ClassStructure::build_stable_governed(ext, control, class_opts, cache, budget)?;
    witness_for_structure(ext, control, opts, budget, s)
}

/// [`witness_for_lasso_governed`] with the *from-scratch* stabilized class
/// builder — the per-lasso pipeline of [`check_emptiness_reference`]. The
/// class structures are field-identical (pinned by the equivalence tests in
/// `classes.rs`), so the two witness paths cannot diverge.
pub fn witness_for_lasso_reference_governed(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    opts: &EmptinessOptions,
    cache: &SatCache,
    budget: &Budget,
) -> Result<Option<Witness>, CoreError> {
    let mut class_opts = opts.class_opts;
    class_opts.initial_periods = class_opts.initial_periods.max(2 * opts.max_collapse + 3);
    let s =
        ClassStructure::build_stable_reference_governed(ext, control, class_opts, cache, budget)?;
    witness_for_structure(ext, control, opts, budget, s)
}

/// The builder-independent tail of the per-lasso pipeline: consistency,
/// then witness construction (with or without a database).
fn witness_for_structure(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    opts: &EmptinessOptions,
    budget: &Budget,
    s: ClassStructure,
) -> Result<Option<Witness>, CoreError> {
    if !s.consistent {
        return Ok(None);
    }
    if ext.ra().schema().is_empty() {
        witness_without_database(ext, control, &s, opts)
    } else {
        for t in 1..=opts.max_collapse {
            budget.check("emptiness.witness")?;
            if let Some(w) = witness_with_collapse(ext, control, &s, t)? {
                return Ok(Some(w));
            }
        }
        Ok(None)
    }
}

/// Value ranges for witness construction (kept apart so collapsed
/// active-domain values, per-class fresh values, and anything user-supplied
/// can never collide).
const ADOM_BASE: u64 = 1 << 20;
const FRESH_BASE: u64 = 1 << 21;

/// The orbit key of a class under collapse period `cp`: classes that are
/// shifts of one another by a multiple of `cp` (entirely within the
/// periodic part) share a key. Prefix-touching and constant-holding classes
/// keep their identity.
fn orbit_key(s: &ClassStructure, cid: usize, cp: usize) -> (Vec<(usize, u16)>, usize) {
    let info = &s.classes[cid];
    if !info.consts.is_empty() || info.members.is_empty() || info.min_pos() < s.prefix_len {
        // Identity key: impossible shape (marker) plus class id as phase.
        return (Vec::new(), cid + (1 << 30));
    }
    let base = info.min_pos();
    let shape: Vec<(usize, u16)> = info.members.iter().map(|&(p, r)| (p - base, r)).collect();
    let phase = (base - s.prefix_len) % cp;
    (shape, phase)
}

/// Assigns values to classes. `collapse_adom`/`collapse_nonadom` control
/// whether the respective classes are collapsed by orbit (period `cp`) or
/// given per-class values.
fn assign_values(
    s: &ClassStructure,
    cp: usize,
    collapse_adom: bool,
    collapse_nonadom: bool,
) -> Vec<Value> {
    let mut adom_orbits: BTreeMap<(Vec<(usize, u16)>, usize), u64> = BTreeMap::new();
    let mut nonadom_orbits: BTreeMap<(Vec<(usize, u16)>, usize), u64> = BTreeMap::new();
    let mut values = Vec::with_capacity(s.classes.len());
    for cid in 0..s.classes.len() {
        let adom = s.classes[cid].adom;
        let v = if adom && collapse_adom {
            let key = orbit_key(s, cid, cp);
            let next = adom_orbits.len() as u64;
            ADOM_BASE + *adom_orbits.entry(key).or_insert(next)
        } else if !adom && collapse_nonadom {
            let key = orbit_key(s, cid, cp);
            let next = nonadom_orbits.len() as u64;
            FRESH_BASE + *nonadom_orbits.entry(key).or_insert(next)
        } else if adom {
            ADOM_BASE + (1 << 15) + cid as u64
        } else {
            FRESH_BASE + (1 << 15) + cid as u64
        };
        values.push(Value(v));
    }
    values
}

/// Checks the `≠_w` pairs under a value assignment.
fn neq_respected(s: &ClassStructure, values: &[Value]) -> bool {
    s.neq.iter().all(|&(a, b)| values[a] != values[b])
}

/// A set of value-level relational facts.
type FactSet = BTreeSet<(rega_data::RelSym, Vec<Value>)>;

/// Collects the positive and negative relational facts (at value level)
/// induced by the trace under the assignment. Returns `None` on a clash.
fn collect_facts(
    ext: &ExtendedAutomaton,
    s: &ClassStructure,
    w: &Lasso<TransId>,
    values: &[Value],
) -> Option<(FactSet, FactSet)> {
    let ra = ext.ra();
    let k = s.k;
    let mut pos = BTreeSet::new();
    let mut neg = BTreeSet::new();
    for n in 0..s.horizon {
        let ty = &ra.transition(*w.at(n)).ty;
        'lits: for lit in ty.literals() {
            if let Literal::Rel {
                rel,
                args,
                positive,
            } = lit
            {
                let mut vals = Vec::with_capacity(args.len());
                for tm in args {
                    let cid = match tm {
                        rega_data::Term::X(i) => s.class_of(n, i.0),
                        rega_data::Term::Y(i) => {
                            if n + 1 < s.horizon {
                                s.class_of(n + 1, i.0)
                            } else {
                                continue 'lits;
                            }
                        }
                        rega_data::Term::Const(c) => s.class_of_const(c.0),
                    };
                    vals.push(values[cid]);
                }
                if *positive {
                    pos.insert((*rel, vals));
                } else {
                    neg.insert((*rel, vals));
                }
            }
        }
    }
    let _ = k;
    if pos.intersection(&neg).next().is_some() {
        return None;
    }
    Some((pos, neg))
}

/// Builds the concrete run prefix over `db` from the value assignment.
fn build_prefix_run(
    ext: &ExtendedAutomaton,
    s: &ClassStructure,
    w: &Lasso<TransId>,
    values: &[Value],
) -> FiniteRun {
    let ra = ext.ra();
    let configs: Vec<Config> = (0..s.horizon)
        .map(|n| {
            let regs: Vec<Value> = (0..s.k).map(|i| values[s.class_of(n, i as u16)]).collect();
            Config::new(ra.transition(*w.at(n)).from, regs)
        })
        .collect();
    let trans: Vec<TransId> = (0..s.horizon - 1).map(|n| *w.at(n)).collect();
    FiniteRun { configs, trans }
}

/// Attempts a full ultimately periodic run: values assigned by orbit
/// collapse for *all* classes, verified end-to-end.
fn try_lasso_run(
    ext: &ExtendedAutomaton,
    s: &ClassStructure,
    w: &Lasso<TransId>,
    db: &Database,
    values: &[Value],
    cp: usize,
) -> Option<LassoRun> {
    let ra = ext.ra();
    let loop_start = s.prefix_len + cp;
    let total = loop_start + cp;
    if total + 1 > s.horizon {
        return None;
    }
    // Value periodicity across the wrap: position `total` must mirror
    // `loop_start`.
    for i in 0..s.k {
        if values[s.class_of(total, i as u16)] != values[s.class_of(loop_start, i as u16)] {
            return None;
        }
    }
    let configs: Vec<Config> = (0..total)
        .map(|n| {
            let regs: Vec<Value> = (0..s.k).map(|i| values[s.class_of(n, i as u16)]).collect();
            Config::new(ra.transition(*w.at(n)).from, regs)
        })
        .collect();
    let trans: Vec<TransId> = (0..total).map(|n| *w.at(n)).collect();
    let run = LassoRun::new(configs, trans, loop_start);
    match ext.check_lasso_run(db, &run) {
        Ok(()) => Some(run),
        Err(_) => None,
    }
}

/// Witness construction for automata without a database: any consistent
/// structure is realizable with pairwise-distinct per-class values.
fn witness_without_database(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    s: &ClassStructure,
    opts: &EmptinessOptions,
) -> Result<Option<Witness>, CoreError> {
    let db = Database::new(ext.ra().schema().clone());
    // Distinct values per class.
    let values = assign_values(s, 1, false, false);
    let prefix_run = build_prefix_run(ext, s, control, &values);
    if prefix_run.validate(ext.ra(), &db).is_err()
        || ext.check_finite_prefix(&db, &prefix_run).is_err()
    {
        return Ok(None);
    }
    // Try a fully periodic run with collapsed values.
    let mut lasso_run = None;
    for t in 1..=opts.max_collapse {
        let cp = t * s.period;
        let collapsed = assign_values(s, cp, true, true);
        if !neq_respected(s, &collapsed) {
            continue;
        }
        if let Some(run) = try_lasso_run(ext, s, control, &db, &collapsed, cp) {
            lasso_run = Some(run);
            break;
        }
    }
    Ok(Some(Witness {
        control: control.clone(),
        database: db,
        prefix_run,
        lasso_run,
    }))
}

/// Witness construction with a database: collapse the active-domain classes
/// with period `t · period`; build the finite database from the positive
/// facts; verify.
fn witness_with_collapse(
    ext: &ExtendedAutomaton,
    control: &Lasso<TransId>,
    s: &ClassStructure,
    t: usize,
) -> Result<Option<Witness>, CoreError> {
    let cp = t * s.period;
    // First try collapsing everything (gives a full periodic run); fall
    // back to collapsing only the adom classes.
    for collapse_nonadom in [true, false] {
        let values = assign_values(s, cp, true, collapse_nonadom);
        if !neq_respected(s, &values) {
            continue;
        }
        let Some((pos_facts, _neg)) = collect_facts(ext, s, control, &values) else {
            continue;
        };
        let mut db = Database::new(ext.ra().schema().clone());
        for (rel, vals) in &pos_facts {
            db.insert(*rel, vals.clone())?;
        }
        for c in ext.ra().schema().constants() {
            db.set_constant(c, values[s.class_of_const(c.0)]);
        }
        let prefix_run = build_prefix_run(ext, s, control, &values);
        if prefix_run.validate(ext.ra(), &db).is_err()
            || ext.check_finite_prefix(&db, &prefix_run).is_err()
        {
            continue;
        }
        let lasso_run = if collapse_nonadom {
            try_lasso_run(ext, s, control, &db, &values, cp)
        } else {
            None
        };
        return Ok(Some(Witness {
            control: control.clone(),
            database: db,
            prefix_run,
            lasso_run,
        }));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::ExtendedAutomaton;

    #[test]
    fn example1_nonempty_with_full_lasso() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        match v {
            EmptinessVerdict::NonEmpty(w) => {
                assert!(w.lasso_run.is_some(), "example 1 has periodic runs");
                let run = w.lasso_run.unwrap();
                assert!(ext.check_lasso_run(&w.database, &run).is_ok());
            }
            EmptinessVerdict::Empty => panic!("example 1 is non-empty"),
        }
    }

    #[test]
    fn example5_nonempty() {
        let ext = paper::example5();
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        assert!(v.is_nonempty());
    }

    #[test]
    fn example7_nonempty_without_periodic_run() {
        // All-distinct: non-empty, but no ultimately periodic run exists.
        let ext = paper::example7();
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        match v {
            EmptinessVerdict::NonEmpty(w) => {
                assert!(w.lasso_run.is_none(), "all-distinct admits no periodic run");
                // The prefix run is valid and uses pairwise distinct values.
                let vals: std::collections::HashSet<Value> =
                    w.prefix_run.configs.iter().map(|c| c.regs[0]).collect();
                assert_eq!(vals.len(), w.prefix_run.configs.len());
            }
            EmptinessVerdict::Empty => panic!("example 7 is non-empty"),
        }
    }

    #[test]
    fn example8_nonempty_through_alternation() {
        // p-blocks are bounded by the database, but alternating p/q runs
        // exist over finite databases.
        let ext = paper::example8();
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        match v {
            EmptinessVerdict::NonEmpty(w) => {
                assert!(w.database.total_facts() > 0, "P must be non-empty");
                assert!(w.lasso_run.is_some());
            }
            EmptinessVerdict::Empty => panic!("example 8 is non-empty"),
        }
    }

    #[test]
    fn contradictory_constraints_empty() {
        // Same-position equal and unequal: no run.
        let mut ext = paper::example5();
        ext.add_constraint_str(
            rega_core::ConstraintKind::NotEqual,
            rega_data::RegIdx(0),
            rega_data::RegIdx(0),
            "p1 p2* p1",
        )
        .unwrap();
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        assert!(!v.is_nonempty());
    }

    #[test]
    fn no_accepting_cycle_empty() {
        use rega_data::{Schema, SigmaType};
        let mut ra = rega_core::RegisterAutomaton::new(1, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(q); // q is a dead end
        ra.add_transition(p, SigmaType::empty(1), q).unwrap();
        let ext = ExtendedAutomaton::new(ra);
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        assert!(!v.is_nonempty());
    }

    #[test]
    fn on_the_fly_matches_reference_on_paper_examples() {
        // The heavyweight 256-case differential suite lives in
        // `tests/emptiness_differential.rs`; this is the in-crate smoke
        // version over the paper's examples, including an empty one.
        let opts = EmptinessOptions::default();
        let mut exts: Vec<ExtendedAutomaton> = Vec::new();
        let (ra, _) = paper::example1();
        exts.push(ExtendedAutomaton::new(ra));
        exts.push(paper::example5());
        exts.push(paper::example7());
        exts.push(paper::example8());
        exts.push(ExtendedAutomaton::new(paper::example23()));
        let mut contradictory = paper::example5();
        contradictory
            .add_constraint_str(
                rega_core::ConstraintKind::NotEqual,
                rega_data::RegIdx(0),
                rega_data::RegIdx(0),
                "p1 p2* p1",
            )
            .unwrap();
        exts.push(contradictory);
        for (i, ext) in exts.iter().enumerate() {
            let fast = check_emptiness(ext, &opts).unwrap();
            let refr = check_emptiness_reference(ext, &opts).unwrap();
            assert_eq!(
                fast.is_nonempty(),
                refr.is_nonempty(),
                "verdict mismatch on workload {i}"
            );
            if let (EmptinessVerdict::NonEmpty(wf), EmptinessVerdict::NonEmpty(wr)) = (&fast, &refr)
            {
                assert_eq!(wf.control, wr.control, "witness lasso mismatch on {i}");
            }
        }
    }

    #[test]
    fn example23_nonempty_with_database() {
        let ra = paper::example23();
        let ext = ExtendedAutomaton::new(ra);
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        match v {
            EmptinessVerdict::NonEmpty(w) => {
                // The witness database must contain E and U facts.
                let e = w.database.schema().relation("E").unwrap();
                let u = w.database.schema().relation("U").unwrap();
                assert!(w.database.num_facts(e) > 0);
                assert!(w.database.num_facts(u) > 0);
            }
            EmptinessVerdict::Empty => panic!("example 23 is non-empty"),
        }
    }
}
