//! The equivalence relation `∼_w` and inequality relation `≠_w` over the
//! (position, register) pairs of a symbolic control trace (Section 3).
//!
//! For a trace `w = ((q_n, δ_n))` of an extended automaton, `∼_w` is the
//! reflexive-symmetric-transitive closure of the equalities induced by the
//! transition types and the global equality constraints; `≠_w` relates
//! classes forced apart by local or global inequalities. The *active
//! domain* classes are those touching a positive relational literal.
//!
//! Infinite traces are analyzed through ultimately periodic presentations:
//! the structure is computed on a bounded unfolding whose horizon is grown
//! until the induced structure on a fixed window *stabilizes* (the
//! constraint sources are finite automata, so the structure on any window
//! is eventually invariant under horizon growth; the stability rounds and
//! the maximal horizon are configurable budgets).

use rega_automata::Lasso;
use rega_core::extended::ConstraintKind;
use rega_core::{Budget, CoreError, ExtendedAutomaton, TransId};
use rega_data::{SatCache, Term};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Budgets for the stabilized structure computation.
#[derive(Clone, Copy, Debug)]
pub struct ClassOptions {
    /// Number of periods unfolded in the first attempt.
    pub initial_periods: usize,
    /// The window structure must be unchanged for this many consecutive
    /// horizon increments to be considered stable.
    pub stability_rounds: usize,
    /// Give up growing the horizon beyond this many periods.
    pub max_periods: usize,
}

impl Default for ClassOptions {
    fn default() -> Self {
        ClassOptions {
            initial_periods: 6,
            stability_rounds: 2,
            max_periods: 64,
        }
    }
}

/// One equivalence class of `∼_w` on the unfolding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassInfo {
    /// Members `(position, register)`, sorted.
    pub members: Vec<(usize, u16)>,
    /// Constant symbols in the class (indices into the schema's constants).
    pub consts: Vec<u32>,
    /// Whether the class is in the active domain (touches a positive
    /// relational literal, or contains a constant).
    pub adom: bool,
}

impl ClassInfo {
    /// Smallest member position (`usize::MAX` for constant-only classes).
    pub fn min_pos(&self) -> usize {
        self.members.first().map_or(usize::MAX, |&(p, _)| p)
    }

    /// Largest member position.
    pub fn max_pos(&self) -> usize {
        self.members.last().map_or(0, |&(p, _)| p)
    }
}

/// The computed structure `(∼_w, ≠_w, adom)` on a bounded unfolding of an
/// ultimately periodic symbolic control trace.
#[derive(Clone, Debug)]
pub struct ClassStructure {
    /// Number of unfolded positions.
    pub horizon: usize,
    /// Registers per position.
    pub k: usize,
    /// Prefix length of the analyzed lasso.
    pub prefix_len: usize,
    /// Period of the analyzed lasso.
    pub period: usize,
    /// Number of constant symbols.
    pub num_consts: usize,
    /// `node_class[n * k + i]` — class id of `(n, i)`; constant `c` is node
    /// `horizon * k + c`.
    node_class: Vec<usize>,
    /// The classes.
    pub classes: Vec<ClassInfo>,
    /// Class-level inequality pairs `(a, b)`, `a < b`.
    pub neq: BTreeSet<(usize, usize)>,
    /// Whether the structure is consistent: no class is forced apart from
    /// itself.
    pub consistent: bool,
    /// Whether the horizon growth stabilized within the budget.
    pub stabilized: bool,
}

impl ClassStructure {
    /// Computes the structure on a fixed unfolding of `horizon` positions.
    pub fn build(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        horizon: usize,
    ) -> Result<ClassStructure, CoreError> {
        Self::build_cached(ext, w, horizon, &SatCache::new(ext.ra().schema().clone()))
    }

    /// [`ClassStructure::build`] with the per-transition type analyses
    /// memoized in `cache`. [`ClassStructure::build_stable`] re-builds the
    /// structure at a growing horizon until the window signature
    /// stabilizes; with a shared cache each distinct type is analyzed once
    /// across all horizons (and across all lassos of an emptiness search)
    /// instead of once per build.
    pub fn build_cached(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        horizon: usize,
        cache: &SatCache,
    ) -> Result<ClassStructure, CoreError> {
        Self::build_governed(ext, w, horizon, cache, &Budget::unlimited())
    }

    /// [`ClassStructure::build_cached`] under a [`Budget`]: the per-position
    /// equality fill and the quadratic constraint-DFA walks (every start
    /// position × every later position, per constraint) tick, so a build at
    /// a hostile horizon is interruptible.
    pub fn build_governed(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        horizon: usize,
        cache: &SatCache,
        budget: &Budget,
    ) -> Result<ClassStructure, CoreError> {
        let _span = rega_obs::span!("classes.build", horizon = horizon);
        let ra = ext.ra();
        let k = ra.k() as usize;
        let num_consts = ra.schema().num_constants();
        let n_nodes = horizon * k + num_consts;
        let node = |n: usize, i: u16| n * k + i as usize;
        let const_node = |c: u32| horizon * k + c as usize;

        // Union-find.
        let mut parent: Vec<usize> = (0..n_nodes).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        };

        // Map a type term at position n to a node (None if out of horizon).
        let term_node = |n: usize, t: Term| -> Option<usize> {
            match t {
                Term::X(i) => Some(node(n, i.0)),
                Term::Y(i) => {
                    if n + 1 < horizon {
                        Some(node(n + 1, i.0))
                    } else {
                        None
                    }
                }
                Term::Const(c) => Some(const_node(c.0)),
            }
        };

        // Per-position type analyses (shared through the `SatCache`, so
        // repeated builds at growing horizons analyze each type once).
        let mut analyses: Vec<Option<Arc<rega_data::types::TypeAnalysis>>> =
            vec![None; ra.num_transitions()];
        for n in 0..horizon {
            let t = *w.at(n);
            if analyses[t.idx()].is_none() {
                analyses[t.idx()] = Some(cache.analyze(&ra.transition(t).ty)?);
            }
        }

        // 1. Local equalities.
        for n in 0..horizon {
            budget.tick("classes.build")?;
            let t = *w.at(n);
            let a = analyses[t.idx()].as_ref().expect("filled above");
            for class in a.classes() {
                let nodes: Vec<usize> = class.iter().filter_map(|&tm| term_node(n, tm)).collect();
                for pair in nodes.windows(2) {
                    union(&mut parent, pair[0], pair[1]);
                }
            }
        }

        // 2. Global equality constraints: walk each constraint DFA from
        // every start position; merge on acceptance.
        for c in ext.constraints() {
            if c.kind != ConstraintKind::Equal {
                continue;
            }
            let dfa = c.dfa();
            for n in 0..horizon {
                let mut s = dfa.init();
                for m in n..horizon {
                    budget.tick("classes.build")?;
                    let q = ra.transition(*w.at(m)).from;
                    s = dfa.step(s, &q);
                    if !c.is_alive(s) {
                        break;
                    }
                    if dfa.is_accepting(s) {
                        union(&mut parent, node(n, c.i.0), node(m, c.j.0));
                    }
                }
            }
        }

        // Dense class ids.
        let mut root_class: Vec<usize> = vec![usize::MAX; n_nodes];
        let mut classes: Vec<ClassInfo> = Vec::new();
        let mut node_class = vec![0usize; n_nodes];
        for (x, xc) in node_class.iter_mut().enumerate() {
            let r = find(&mut parent, x);
            if root_class[r] == usize::MAX {
                root_class[r] = classes.len();
                classes.push(ClassInfo {
                    members: Vec::new(),
                    consts: Vec::new(),
                    adom: false,
                });
            }
            let cid = root_class[r];
            *xc = cid;
            if x < horizon * k {
                classes[cid].members.push((x / k, (x % k) as u16));
            } else {
                classes[cid].consts.push((x - horizon * k) as u32);
                classes[cid].adom = true; // constants are in adom(D)
            }
        }

        // 3. Inequalities (local and global), collected at node level, then
        // lifted to classes.
        let mut neq: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut consistent = true;
        let mut add_neq = |a: usize, b: usize, neq: &mut BTreeSet<(usize, usize)>| {
            let (ca, cb) = (node_class[a], node_class[b]);
            if ca == cb {
                consistent = false;
            } else {
                neq.insert((ca.min(cb), ca.max(cb)));
            }
        };
        for n in 0..horizon {
            let t = *w.at(n);
            let a = analyses[t.idx()].as_ref().expect("filled above");
            for (c1, c2) in a.neq_pairs() {
                // Map one representative node of each side, preferring
                // mappable terms.
                let n1 = a.classes()[c1].iter().find_map(|&tm| term_node(n, tm));
                let n2 = a.classes()[c2].iter().find_map(|&tm| term_node(n, tm));
                if let (Some(x), Some(y)) = (n1, n2) {
                    add_neq(x, y, &mut neq);
                }
            }
        }
        for c in ext.constraints() {
            if c.kind != ConstraintKind::NotEqual {
                continue;
            }
            let dfa = c.dfa();
            for n in 0..horizon {
                let mut s = dfa.init();
                for m in n..horizon {
                    budget.tick("classes.build")?;
                    let q = ra.transition(*w.at(m)).from;
                    s = dfa.step(s, &q);
                    if !c.is_alive(s) {
                        break;
                    }
                    if dfa.is_accepting(s) {
                        add_neq(node(n, c.i.0), node(m, c.j.0), &mut neq);
                    }
                }
            }
        }

        // 4. Active domain: positive relational literals.
        for n in 0..horizon {
            let t = *w.at(n);
            let ty = &ra.transition(t).ty;
            for lit in ty.literals() {
                if !lit.is_positive_rel() {
                    continue;
                }
                for tm in lit.terms() {
                    if let Some(x) = term_node(n, tm) {
                        let cid = node_class[x];
                        classes[cid].adom = true;
                    }
                }
            }
        }

        Ok(ClassStructure {
            horizon,
            k,
            prefix_len: w.prefix_len(),
            period: w.period(),
            num_consts,
            node_class,
            classes,
            neq,
            consistent,
            stabilized: true,
        })
    }

    /// Grows the horizon until the window structure stabilizes (see module
    /// docs), then returns the final structure.
    pub fn build_stable(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        opts: ClassOptions,
    ) -> Result<ClassStructure, CoreError> {
        Self::build_stable_cached(ext, w, opts, &SatCache::new(ext.ra().schema().clone()))
    }

    /// [`ClassStructure::build_stable`] with a shared [`SatCache`].
    pub fn build_stable_cached(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        opts: ClassOptions,
        cache: &SatCache,
    ) -> Result<ClassStructure, CoreError> {
        Self::build_stable_governed(ext, w, opts, cache, &Budget::unlimited())
    }

    /// [`ClassStructure::build_stable_cached`] under a [`Budget`]: the
    /// incremental grower runs governed, and the deadline/token are
    /// re-checked between rounds.
    ///
    /// The stabilization *schedule* — horizons visited, window-signature
    /// comparisons, stability rounds — is exactly that of
    /// [`build_stable_reference_governed`](ClassStructure::build_stable_reference_governed),
    /// but each round grows one union-find incrementally instead of
    /// rebuilding from scratch: only the new positions (plus the previous
    /// last position, whose `ȳ`-terms become mappable) are processed, and
    /// every constraint-DFA walk resumes from its saved state. The two
    /// implementations produce field-identical structures; the reference is
    /// retained and pinned against this one by the equivalence tests below.
    pub fn build_stable_governed(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        opts: ClassOptions,
        cache: &SatCache,
        budget: &Budget,
    ) -> Result<ClassStructure, CoreError> {
        let _span = rega_obs::span!("classes.build_stable");
        let window = w.prefix_len() + 2 * w.period();
        let mut builder = StableBuilder::new(ext, w, cache, budget);
        let mut prev_sig: Option<Vec<u8>> = None;
        let mut stable_for = 0usize;
        let mut periods = opts.initial_periods.max(3);
        while periods <= opts.max_periods {
            budget.check("classes.build_stable")?;
            let horizon = w.prefix_len() + periods * w.period();
            builder.grow(horizon)?;
            let sig = builder.signature(window);
            if prev_sig.as_ref() == Some(&sig) {
                stable_for += 1;
                if stable_for >= opts.stability_rounds {
                    return Ok(builder.finish(true));
                }
            } else {
                stable_for = 0;
            }
            prev_sig = Some(sig);
            periods += 1;
        }
        Ok(builder.finish(false))
    }

    /// The pre-kernel stabilized builder: rebuilds the full structure from
    /// scratch at every horizon of the stabilization schedule. Retained as
    /// the pinned reference implementation for the differential suites (and
    /// for [`check_emptiness_reference`](crate::emptiness::check_emptiness_reference));
    /// [`build_stable_governed`](ClassStructure::build_stable_governed)
    /// must produce field-identical structures.
    pub fn build_stable_reference_governed(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        opts: ClassOptions,
        cache: &SatCache,
        budget: &Budget,
    ) -> Result<ClassStructure, CoreError> {
        let _span = rega_obs::span!("classes.build_stable");
        let window = w.prefix_len() + 2 * w.period();
        let mut prev_sig: Option<Vec<u8>> = None;
        let mut stable_for = 0usize;
        let mut last: Option<ClassStructure> = None;
        let mut periods = opts.initial_periods.max(3);
        while periods <= opts.max_periods {
            budget.check("classes.build_stable")?;
            let horizon = w.prefix_len() + periods * w.period();
            let s = ClassStructure::build_governed(ext, w, horizon, cache, budget)?;
            let sig = s.window_signature(window);
            if prev_sig.as_ref() == Some(&sig) {
                stable_for += 1;
                if stable_for >= opts.stability_rounds {
                    return Ok(s);
                }
            } else {
                stable_for = 0;
            }
            prev_sig = Some(sig);
            last = Some(s);
            periods += 1;
        }
        let mut s = last.expect("at least one build");
        s.stabilized = false;
        Ok(s)
    }

    /// The class id of `(position, register)`.
    pub fn class_of(&self, n: usize, i: u16) -> usize {
        self.node_class[n * self.k + i as usize]
    }

    /// The class id of constant `c`.
    pub fn class_of_const(&self, c: u32) -> usize {
        self.node_class[self.horizon * self.k + c as usize]
    }

    /// Whether two classes are forced distinct.
    pub fn forced_neq(&self, a: usize, b: usize) -> bool {
        self.neq.contains(&(a.min(b), a.max(b)))
    }

    /// Ids of the active-domain classes.
    pub fn adom_classes(&self) -> Vec<usize> {
        (0..self.classes.len())
            .filter(|&c| self.classes[c].adom)
            .collect()
    }

    /// A canonical fingerprint of the structure restricted to the first
    /// `window` positions: the partition, the inequalities, consistency and
    /// adom flags. Used for stabilization detection.
    fn window_signature(&self, window: usize) -> Vec<u8> {
        let window = window.min(self.horizon);
        let mut out = Vec::new();
        out.push(u8::from(self.consistent));
        // Partition: for each window node, the least window node (or
        // constant) in its class.
        let mut canon: std::collections::HashMap<usize, u32> = Default::default();
        let mut next = 0u32;
        for n in 0..window {
            for i in 0..self.k {
                let c = self.class_of(n, i as u16);
                let label = *canon.entry(c).or_insert_with(|| {
                    next += 1;
                    next
                });
                out.extend_from_slice(&label.to_le_bytes());
                out.push(u8::from(self.classes[c].adom));
            }
        }
        // Constants' classes.
        for c in 0..self.num_consts {
            let cid = self.class_of_const(c as u32);
            let label = canon.get(&cid).copied().unwrap_or(0);
            out.extend_from_slice(&label.to_le_bytes());
        }
        // Inequalities among window-labelled classes.
        let mut pairs: Vec<(u32, u32)> = self
            .neq
            .iter()
            .filter_map(|&(a, b)| match (canon.get(&a), canon.get(&b)) {
                (Some(&la), Some(&lb)) => Some((la.min(lb), la.max(lb))),
                _ => None,
            })
            .collect();
        pairs.sort();
        pairs.dedup();
        for (a, b) in pairs {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }
}

/// Union-find `find` with path halving (shared by [`StableBuilder`] and the
/// from-scratch builder above, which keeps its own local copy for clarity).
fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Union by minimum root (the dense-id pass depends on the class
/// representative being the least node), carrying the per-root adom bit.
fn uf_union(parent: &mut [usize], adom: &mut [bool], a: usize, b: usize) {
    let ra = uf_find(parent, a);
    let rb = uf_find(parent, b);
    if ra != rb {
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        parent[hi] = lo;
        adom[lo] = adom[lo] || adom[hi];
    }
}

/// The incremental engine behind [`ClassStructure::build_stable_governed`].
///
/// Growing the horizon only *adds* constraints: the union-find, the
/// node-level inequality pairs, the per-root adom bits, and every
/// constraint-DFA walk are monotone in the horizon, so each stabilization
/// round processes just the new positions. Two layout choices make this
/// sound:
///
/// * internal node ids are growth-stable — constants first (`0..C`), then
///   `(n, i) ↦ C + n·k + i` — unlike the reference layout, which moves the
///   constant nodes every time the horizon grows; [`finish`] remaps to the
///   reference layout, and because dense class ids are a function of the
///   final partition alone (first-seen order over reference node order,
///   with min-root representatives), the result is field-identical to a
///   from-scratch build at the same horizon;
/// * position `h − 1` is re-processed when the horizon grows past `h`: its
///   `ȳ`-terms were unmappable at horizon `h` and only then gain nodes.
///   Re-deriving its equalities is idempotent, and any inequality pair
///   recorded earlier with a different (mappable) representative lifts to
///   the same class pair — all representatives of a type class are unioned
///   by step 1.
///
/// [`finish`]: StableBuilder::finish
struct StableBuilder<'a> {
    ext: &'a ExtendedAutomaton,
    w: &'a Lasso<TransId>,
    cache: &'a SatCache,
    budget: &'a Budget,
    k: usize,
    num_consts: usize,
    /// Positions processed so far.
    horizon: usize,
    /// Union-find over internal ids: constant `c` is node `c`, register
    /// `(n, i)` is node `num_consts + n·k + i`.
    parent: Vec<usize>,
    /// Per-root active-domain bit (meaningful at roots, carried on union).
    adom: Vec<bool>,
    /// Node-level inequality pairs, internal ids, accumulated.
    neq_nodes: Vec<(usize, usize)>,
    /// Per-transition analyses, filled on first use.
    analyses: Vec<Option<Arc<rega_data::types::TypeAnalysis>>>,
    /// Indices of `Equal` / `NotEqual` constraints in `ext.constraints()`.
    eq_cs: Vec<usize>,
    ne_cs: Vec<usize>,
    /// Saved `(dfa_state, alive)` per constraint per start position.
    eq_walks: Vec<Vec<(usize, bool)>>,
    ne_walks: Vec<Vec<(usize, bool)>>,
}

impl<'a> StableBuilder<'a> {
    fn new(
        ext: &'a ExtendedAutomaton,
        w: &'a Lasso<TransId>,
        cache: &'a SatCache,
        budget: &'a Budget,
    ) -> StableBuilder<'a> {
        let ra = ext.ra();
        let num_consts = ra.schema().num_constants();
        let eq_cs: Vec<usize> = (0..ext.constraints().len())
            .filter(|&i| ext.constraints()[i].kind == ConstraintKind::Equal)
            .collect();
        let ne_cs: Vec<usize> = (0..ext.constraints().len())
            .filter(|&i| ext.constraints()[i].kind == ConstraintKind::NotEqual)
            .collect();
        StableBuilder {
            ext,
            w,
            cache,
            budget,
            k: ra.k() as usize,
            num_consts,
            horizon: 0,
            parent: (0..num_consts).collect(),
            // Constant classes are in adom(D) from the start.
            adom: vec![true; num_consts],
            neq_nodes: Vec::new(),
            analyses: vec![None; ra.num_transitions()],
            eq_walks: vec![Vec::new(); eq_cs.len()],
            ne_walks: vec![Vec::new(); ne_cs.len()],
            eq_cs,
            ne_cs,
        }
    }

    /// Internal node id of register `i` at position `n`.
    fn inode(&self, n: usize, i: u16) -> usize {
        self.num_consts + n * self.k + i as usize
    }

    /// Internal node of a type term at position `n` under horizon `h`.
    fn term_inode(&self, n: usize, t: Term, h: usize) -> Option<usize> {
        match t {
            Term::X(i) => Some(self.inode(n, i.0)),
            Term::Y(i) => {
                if n + 1 < h {
                    Some(self.inode(n + 1, i.0))
                } else {
                    None
                }
            }
            Term::Const(c) => Some(c.0 as usize),
        }
    }

    /// Extends the processed horizon to `new_h`, re-processing the previous
    /// last position (whose `ȳ`-terms just became mappable).
    fn grow(&mut self, new_h: usize) -> Result<(), CoreError> {
        let old_h = self.horizon;
        if new_h <= old_h {
            return Ok(());
        }
        let ra = self.ext.ra();
        let k = self.k;
        let c0 = self.num_consts;
        let new_len = c0 + new_h * k;
        self.parent.extend(self.parent.len()..new_len);
        self.adom.resize(new_len, false);

        // Steps 1, 3-local, 4: (re-)process positions old_h-1 .. new_h.
        for n in old_h.saturating_sub(1)..new_h {
            self.budget.tick("classes.build")?;
            let t = *self.w.at(n);
            if self.analyses[t.idx()].is_none() {
                self.analyses[t.idx()] = Some(self.cache.analyze(&ra.transition(t).ty)?);
            }
            let a = Arc::clone(self.analyses[t.idx()].as_ref().expect("filled above"));
            // Local equalities.
            for class in a.classes() {
                let nodes: Vec<usize> = class
                    .iter()
                    .filter_map(|&tm| self.term_inode(n, tm, new_h))
                    .collect();
                for pair in nodes.windows(2) {
                    uf_union(&mut self.parent, &mut self.adom, pair[0], pair[1]);
                }
            }
            // Local inequalities (node-level; lifted to classes at the end).
            for (c1, c2) in a.neq_pairs() {
                let n1 = a.classes()[c1]
                    .iter()
                    .find_map(|&tm| self.term_inode(n, tm, new_h));
                let n2 = a.classes()[c2]
                    .iter()
                    .find_map(|&tm| self.term_inode(n, tm, new_h));
                if let (Some(x), Some(y)) = (n1, n2) {
                    self.neq_nodes.push((x, y));
                }
            }
            // Active domain: positive relational literals.
            for lit in ra.transition(t).ty.literals() {
                if !lit.is_positive_rel() {
                    continue;
                }
                for tm in lit.terms() {
                    if let Some(x) = self.term_inode(n, tm, new_h) {
                        let r = uf_find(&mut self.parent, x);
                        self.adom[r] = true;
                    }
                }
            }
        }

        // Step 2: resume every global-constraint DFA walk.
        for group in 0..2 {
            let (cs, walks) = if group == 0 {
                (&self.eq_cs, &mut self.eq_walks)
            } else {
                (&self.ne_cs, &mut self.ne_walks)
            };
            for (wi, &ci) in cs.iter().enumerate() {
                let c = &self.ext.constraints()[ci];
                let dfa = c.dfa();
                for n in 0..new_h {
                    let (mut s, alive) = if n < old_h {
                        walks[wi][n]
                    } else {
                        (dfa.init(), true)
                    };
                    let mut alive = alive;
                    if alive {
                        let start_m = if n < old_h { old_h } else { n };
                        for m in start_m..new_h {
                            self.budget.tick("classes.build")?;
                            let q = ra.transition(*self.w.at(m)).from;
                            s = dfa.step(s, &q);
                            if !c.is_alive(s) {
                                alive = false;
                                break;
                            }
                            if dfa.is_accepting(s) {
                                let (x, y) = (
                                    self.num_consts + n * self.k + c.i.0 as usize,
                                    self.num_consts + m * self.k + c.j.0 as usize,
                                );
                                if group == 0 {
                                    uf_union(&mut self.parent, &mut self.adom, x, y);
                                } else {
                                    self.neq_nodes.push((x, y));
                                }
                            }
                        }
                    }
                    if n < old_h {
                        walks[wi][n] = (s, alive);
                    } else {
                        walks[wi].push((s, alive));
                    }
                }
            }
        }
        self.horizon = new_h;
        Ok(())
    }

    /// The window signature at the current horizon — byte-identical to
    /// [`ClassStructure::window_signature`] on a from-scratch build.
    fn signature(&mut self, window: usize) -> Vec<u8> {
        let window = window.min(self.horizon);
        let c0 = self.num_consts;
        let k = self.k;
        let mut consistent = true;
        for i in 0..self.neq_nodes.len() {
            let (a, b) = self.neq_nodes[i];
            if uf_find(&mut self.parent, a) == uf_find(&mut self.parent, b) {
                consistent = false;
                break;
            }
        }
        let mut out = Vec::new();
        out.push(u8::from(consistent));
        let mut canon: std::collections::HashMap<usize, u32> = Default::default();
        let mut next = 0u32;
        for n in 0..window {
            for i in 0..k {
                let r = uf_find(&mut self.parent, c0 + n * k + i);
                let label = *canon.entry(r).or_insert_with(|| {
                    next += 1;
                    next
                });
                out.extend_from_slice(&label.to_le_bytes());
                out.push(u8::from(self.adom[r]));
            }
        }
        for c in 0..c0 {
            let r = uf_find(&mut self.parent, c);
            let label = canon.get(&r).copied().unwrap_or(0);
            out.extend_from_slice(&label.to_le_bytes());
        }
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..self.neq_nodes.len() {
            let (a, b) = self.neq_nodes[i];
            let ra = uf_find(&mut self.parent, a);
            let rb = uf_find(&mut self.parent, b);
            if ra == rb {
                continue;
            }
            if let (Some(&la), Some(&lb)) = (canon.get(&ra), canon.get(&rb)) {
                pairs.push((la.min(lb), la.max(lb)));
            }
        }
        pairs.sort();
        pairs.dedup();
        for (a, b) in pairs {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Assembles the [`ClassStructure`] at the current horizon in the
    /// reference node layout (positions first, constants at
    /// `horizon·k ..`), with dense class ids in reference scan order.
    fn finish(mut self, stabilized: bool) -> ClassStructure {
        let h = self.horizon;
        let k = self.k;
        let c0 = self.num_consts;
        let n_nodes = h * k + c0;
        let mut root_class: std::collections::HashMap<usize, usize> = Default::default();
        let mut classes: Vec<ClassInfo> = Vec::new();
        let mut node_class = vec![0usize; n_nodes];
        for (x, xc) in node_class.iter_mut().enumerate() {
            let internal = if x < h * k { c0 + x } else { x - h * k };
            let r = uf_find(&mut self.parent, internal);
            let cid = *root_class.entry(r).or_insert_with(|| {
                classes.push(ClassInfo {
                    members: Vec::new(),
                    consts: Vec::new(),
                    adom: self.adom[r],
                });
                classes.len() - 1
            });
            *xc = cid;
            if x < h * k {
                classes[cid].members.push((x / k, (x % k) as u16));
            } else {
                classes[cid].consts.push((x - h * k) as u32);
            }
        }
        let mut neq: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut consistent = true;
        for &(a, b) in &self.neq_nodes {
            let ra = uf_find(&mut self.parent, a);
            let rb = uf_find(&mut self.parent, b);
            let (ca, cb) = (root_class[&ra], root_class[&rb]);
            if ca == cb {
                consistent = false;
            } else {
                neq.insert((ca.min(cb), ca.max(cb)));
            }
        }
        ClassStructure {
            horizon: h,
            k,
            prefix_len: self.w.prefix_len(),
            period: self.w.period(),
            num_consts: c0,
            node_class,
            classes,
            neq,
            consistent,
            stabilized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;

    #[test]
    fn example1_register2_forms_one_class() {
        // Control trace (δ1 δ2 δ2 δ3)^ω: register 2 holds one value forever.
        let (ra, ts) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let w = Lasso::periodic(vec![ts[0], ts[1], ts[1], ts[2]]);
        let s = ClassStructure::build(&ext, &w, 12).unwrap();
        assert!(s.consistent);
        let c = s.class_of(0, 1);
        for n in 0..12 {
            assert_eq!(s.class_of(n, 1), c, "register 2 at position {n}");
        }
        // Register 1 at position 0 equals register 2 (δ1: x1 = x2).
        assert_eq!(s.class_of(0, 0), c);
        // Register 1 at position 1 is its own class (fresh).
        assert_ne!(s.class_of(1, 0), c);
        // Register 1 at q1-positions (multiples of 4) equals register 2
        // (δ3: y1 = y2 entering q1).
        assert_eq!(s.class_of(4, 0), c);
        assert_eq!(s.class_of(8, 0), c);
    }

    #[test]
    fn example5_constraint_merges_p1_positions() {
        let ext = paper::example5();
        let ra = ext.ra();
        let p1 = ra.state_by_name("p1").unwrap();
        let p2 = ra.state_by_name("p2").unwrap();
        let t_p1p2 = ra.outgoing(p1)[0];
        let p2outs = ra.outgoing(p2);
        let t_p2p2 = p2outs
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p2)
            .unwrap();
        let t_p2p1 = p2outs
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p1)
            .unwrap();
        // trace p1 p2 p2 (p1 p2 p2)^ω
        let w = Lasso::periodic(vec![t_p1p2, t_p2p2, t_p2p1]);
        let s = ClassStructure::build(&ext, &w, 9).unwrap();
        assert!(s.consistent);
        // p1-positions: 0, 3, 6 — all share a class via e=11.
        assert_eq!(s.class_of(0, 0), s.class_of(3, 0));
        assert_eq!(s.class_of(3, 0), s.class_of(6, 0));
        // p2-positions are unconstrained.
        assert_ne!(s.class_of(1, 0), s.class_of(0, 0));
        assert_ne!(s.class_of(1, 0), s.class_of(2, 0));
    }

    #[test]
    fn example7_all_pairs_neq_but_consistent() {
        let ext = paper::example7();
        let q = ext.ra().state_by_name("q").unwrap();
        let t = ext.ra().outgoing(q)[0];
        let w = Lasso::periodic(vec![t]);
        let s = ClassStructure::build(&ext, &w, 8).unwrap();
        assert!(s.consistent, "all-distinct structure is satisfiable");
        // All singleton classes, pairwise neq.
        for n in 0..8 {
            for m in (n + 1)..8 {
                assert_ne!(s.class_of(n, 0), s.class_of(m, 0));
                assert!(s.forced_neq(s.class_of(n, 0), s.class_of(m, 0)));
            }
        }
        // No database: no adom classes.
        assert!(s.adom_classes().is_empty());
    }

    #[test]
    fn inconsistent_when_eq_and_neq_conflict() {
        // Example 5's automaton with an extra constraint making p1-values
        // also *unequal*: inconsistent on any trace visiting p1 twice.
        let mut ext = paper::example5();
        ext.add_constraint_str(
            rega_core::ConstraintKind::NotEqual,
            rega_data::RegIdx(0),
            rega_data::RegIdx(0),
            "p1 p2* p1",
        )
        .unwrap();
        let ra = ext.ra();
        let p1 = ra.state_by_name("p1").unwrap();
        let p2 = ra.state_by_name("p2").unwrap();
        let t_p1p2 = ra.outgoing(p1)[0];
        let t_p2p1 = ra
            .outgoing(p2)
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p1)
            .unwrap();
        let w = Lasso::periodic(vec![t_p1p2, t_p2p1]);
        let s = ClassStructure::build(&ext, &w, 8).unwrap();
        assert!(!s.consistent);
    }

    #[test]
    fn example8_adom_classes_marked() {
        let ext = paper::example8();
        let ra = ext.ra();
        let p = ra.state_by_name("p").unwrap();
        let t_pp = ra
            .outgoing(p)
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p)
            .unwrap();
        let w = Lasso::periodic(vec![t_pp]);
        let s = ClassStructure::build(&ext, &w, 6).unwrap();
        // Every position's register is in P ⇒ in adom.
        for n in 0..5 {
            assert!(s.classes[s.class_of(n, 0)].adom, "position {n}");
        }
    }

    #[test]
    fn build_stable_stabilizes_on_example1() {
        let (ra, ts) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let w = Lasso::periodic(vec![ts[0], ts[1], ts[2]]);
        let s = ClassStructure::build_stable(&ext, &w, ClassOptions::default()).unwrap();
        assert!(s.stabilized);
        assert!(s.consistent);
    }

    /// Asserts the incremental stabilized builder and the pinned
    /// from-scratch reference produce field-identical structures.
    fn assert_incremental_matches_reference(
        ext: &ExtendedAutomaton,
        w: &Lasso<TransId>,
        opts: ClassOptions,
    ) {
        let cache = SatCache::new(ext.ra().schema().clone());
        let budget = Budget::unlimited();
        let fast = ClassStructure::build_stable_governed(ext, w, opts, &cache, &budget).unwrap();
        let refr =
            ClassStructure::build_stable_reference_governed(ext, w, opts, &cache, &budget).unwrap();
        assert_eq!(fast.horizon, refr.horizon, "horizon");
        assert_eq!(fast.k, refr.k, "k");
        assert_eq!(fast.prefix_len, refr.prefix_len, "prefix_len");
        assert_eq!(fast.period, refr.period, "period");
        assert_eq!(fast.num_consts, refr.num_consts, "num_consts");
        assert_eq!(fast.node_class, refr.node_class, "node_class");
        assert_eq!(fast.classes, refr.classes, "classes");
        assert_eq!(fast.neq, refr.neq, "neq");
        assert_eq!(fast.consistent, refr.consistent, "consistent");
        assert_eq!(fast.stabilized, refr.stabilized, "stabilized");
    }

    #[test]
    fn incremental_matches_reference_on_paper_examples() {
        let (ra, ts) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        assert_incremental_matches_reference(
            &ext,
            &Lasso::periodic(vec![ts[0], ts[1], ts[1], ts[2]]),
            ClassOptions::default(),
        );

        let ext = paper::example5();
        let ra = ext.ra();
        let p1 = ra.state_by_name("p1").unwrap();
        let p2 = ra.state_by_name("p2").unwrap();
        let t_p1p2 = ra.outgoing(p1)[0];
        let p2outs = ra.outgoing(p2);
        let t_p2p2 = p2outs
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p2)
            .unwrap();
        let t_p2p1 = p2outs
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p1)
            .unwrap();
        assert_incremental_matches_reference(
            &ext,
            &Lasso::periodic(vec![t_p1p2, t_p2p2, t_p2p1]),
            ClassOptions::default(),
        );
        // Also exercise a lasso with a prefix.
        assert_incremental_matches_reference(
            &ext,
            &Lasso::new(vec![t_p1p2, t_p2p2], vec![t_p2p2, t_p2p1, t_p1p2]),
            ClassOptions::default(),
        );

        let ext = paper::example7();
        let q = ext.ra().state_by_name("q").unwrap();
        let t = ext.ra().outgoing(q)[0];
        assert_incremental_matches_reference(
            &ext,
            &Lasso::periodic(vec![t]),
            ClassOptions::default(),
        );

        let ext = paper::example8();
        let ra = ext.ra();
        let p = ra.state_by_name("p").unwrap();
        let t_pp = ra
            .outgoing(p)
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p)
            .unwrap();
        assert_incremental_matches_reference(
            &ext,
            &Lasso::periodic(vec![t_pp]),
            ClassOptions::default(),
        );
    }

    #[test]
    fn incremental_matches_reference_on_inconsistent_trace() {
        let mut ext = paper::example5();
        ext.add_constraint_str(
            rega_core::ConstraintKind::NotEqual,
            rega_data::RegIdx(0),
            rega_data::RegIdx(0),
            "p1 p2* p1",
        )
        .unwrap();
        let ra = ext.ra();
        let p1 = ra.state_by_name("p1").unwrap();
        let p2 = ra.state_by_name("p2").unwrap();
        let t_p1p2 = ra.outgoing(p1)[0];
        let t_p2p1 = ra
            .outgoing(p2)
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == p1)
            .unwrap();
        let w = Lasso::periodic(vec![t_p1p2, t_p2p1]);
        assert_incremental_matches_reference(&ext, &w, ClassOptions::default());
        let s = ClassStructure::build_stable(&ext, &w, ClassOptions::default()).unwrap();
        assert!(!s.consistent);
    }

    #[test]
    fn incremental_matches_reference_across_schedules() {
        // Vary the stabilization schedule so growth steps of different
        // sizes (and the non-stabilized exhaustion path) are exercised.
        let (ra, ts) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let w = Lasso::periodic(vec![ts[0], ts[1], ts[2]]);
        for (initial, max, rounds) in [(3, 5, 2), (6, 12, 3), (4, 4, 2), (3, 64, 1)] {
            assert_incremental_matches_reference(
                &ext,
                &w,
                ClassOptions {
                    initial_periods: initial,
                    max_periods: max,
                    stability_rounds: rounds,
                },
            );
        }
    }
}
