//! LR-boundedness (Definition 15) and its decision procedure (Theorem 18).
//!
//! An extended automaton (without a database) is *LR-bounded* if there is a
//! uniform bound `N` such that for every control trace `w` and position
//! `h`, the graph `G^w_h` — inequality edges between classes entirely left
//! of `h` and classes entirely right of `h` — has a vertex cover of size
//! `≤ N`. `G^w_h` is bipartite, so the vertex-cover number is the maximum
//! matching (König), which we compute exactly.
//!
//! By Theorem 19, LR-boundedness characterizes (up to register-trace
//! equivalence) the extended automata that arise as projections of register
//! automata: the bound is exactly what lets the inequality obligations be
//! enforced in a streaming fashion with finitely many extra registers
//! (Proposition 22).
//!
//! The decision procedure examines the accepting lassos of `SControl`
//! (consistent ones — others contribute no control trace) and compares the
//! maximal matching across two unfolding depths: growth witnesses
//! unboundedness (the matching of a periodic graph family is eventually
//! constant or grows without bound).

use crate::classes::{ClassOptions, ClassStructure};
use crate::graph::lr_graph;
use rega_automata::{emptiness as nba_emptiness, Lasso};
use rega_core::symbolic::scontrol_nba;
use rega_core::{CoreError, ExtendedAutomaton, TransId};

/// Budgets for the LR-boundedness check.
#[derive(Clone, Copy, Debug)]
pub struct LrOptions {
    /// Maximum number of candidate lassos examined.
    pub max_lassos: usize,
    /// Maximum simple-cycle length in the `SControl` automaton.
    pub max_cycle_len: usize,
    /// Periods unfolded at the first probe depth.
    pub probe_periods: usize,
    /// Structure stabilization budgets.
    pub class_opts: ClassOptions,
}

impl Default for LrOptions {
    fn default() -> Self {
        LrOptions {
            max_lassos: 64,
            max_cycle_len: 10,
            probe_periods: 6,
            class_opts: ClassOptions::default(),
        }
    }
}

/// The verdict of the LR-boundedness check.
#[derive(Clone, Debug)]
pub struct LrVerdict {
    /// Whether the automaton is LR-bounded (within the search budget).
    pub bounded: bool,
    /// When bounded: the largest vertex cover observed (a lower bound on
    /// the true `N`, exact on the examined lassos).
    pub bound: usize,
    /// When unbounded: a control-trace lasso on which the vertex covers
    /// grow without bound.
    pub witness: Option<Lasso<TransId>>,
}

/// Decides LR-boundedness of an extended automaton without a database
/// (Theorem 18).
pub fn is_lr_bounded(ext: &ExtendedAutomaton, opts: &LrOptions) -> Result<LrVerdict, CoreError> {
    if !ext.ra().schema().is_empty() {
        return Err(CoreError::SchemaNotEmpty);
    }
    let nba = scontrol_nba(ext.ra())?;
    let lassos =
        nba_emptiness::enumerate_accepting_lassos(&nba, opts.max_lassos, opts.max_cycle_len);
    let mut bound = 0usize;
    for control in lassos {
        // Probe at two depths; matching growth witnesses unboundedness.
        let h1 = control.prefix_len() + opts.probe_periods * control.period();
        let h2 = control.prefix_len() + 2 * opts.probe_periods * control.period();
        let s1 = ClassStructure::build(ext, &control, h1)?;
        if !s1.consistent {
            continue; // not a control trace: no run satisfies the constraints
        }
        let s2 = ClassStructure::build(ext, &control, h2)?;
        let m1 = max_matching_over_positions(&s1);
        let m2 = max_matching_over_positions(&s2);
        if m2 > m1 {
            return Ok(LrVerdict {
                bounded: false,
                bound: m2,
                witness: Some(control),
            });
        }
        bound = bound.max(m2);
    }
    Ok(LrVerdict {
        bounded: true,
        bound,
        witness: None,
    })
}

/// The maximum over positions `h` of the vertex-cover number of `G^w_h`
/// (computed as a maximum matching).
fn max_matching_over_positions(s: &ClassStructure) -> usize {
    let mut best = 0;
    for h in 0..s.horizon.saturating_sub(1) {
        best = best.max(lr_graph(s, h).max_matching());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;

    #[test]
    fn example16_a_is_lr_bounded() {
        let ext = paper::example16_a();
        let v = is_lr_bounded(&ext, &LrOptions::default()).unwrap();
        assert!(v.bounded);
        assert_eq!(v.bound, 1, "only the (h, h+1) edge at each position");
    }

    #[test]
    fn example16_a_prime_is_not_lr_bounded() {
        let ext = paper::example16_a_prime();
        let v = is_lr_bounded(&ext, &LrOptions::default()).unwrap();
        assert!(!v.bounded, "Example 16's 𝒜′ must not be LR-bounded");
        let w = v.witness.expect("an unbounded lasso is reported");
        // The witness trace must stay in state p (where the all-distinct
        // constraint applies).
        let p = ext.ra().state_by_name("p").unwrap();
        for n in 0..4 {
            assert_eq!(ext.ra().transition(*w.at(n)).from, p);
        }
    }

    #[test]
    fn example7_is_not_lr_bounded() {
        // All-distinct on one state: G^w_h is a growing complete bipartite
        // graph (Example 17's argument).
        let ext = paper::example7();
        let v = is_lr_bounded(&ext, &LrOptions::default()).unwrap();
        assert!(!v.bounded);
    }

    #[test]
    fn example5_is_lr_bounded() {
        // Only equality constraints: no inequality edges at all.
        let ext = paper::example5();
        let v = is_lr_bounded(&ext, &LrOptions::default()).unwrap();
        assert!(v.bounded);
        assert_eq!(v.bound, 0);
    }

    #[test]
    fn database_automata_rejected() {
        let ext = paper::example8();
        assert!(matches!(
            is_lr_bounded(&ext, &LrOptions::default()),
            Err(CoreError::SchemaNotEmpty)
        ));
    }
}
