//! The stage-1 witness database of Theorem 9, made executable.
//!
//! The paper proves that every symbolic control trace `w` of a register
//! automaton is realizable over a *finite* database by chasing the guarded
//! formula `Ψ_A` and invoking the finite-model property of the guarded
//! fragment. The executable counterpart here builds, for a family of
//! symbolic lassos, one finite database over which *each* of them is
//! realizable:
//!
//! * per lasso, the periodic-collapse witness database of
//!   [`crate::emptiness`] realizes that lasso;
//! * the union of per-lasso databases, with pairwise *disjoint value
//!   ranges*, realizes every lasso of the family — a run touching only the
//!   values of its own component cannot trip a negative literal on facts
//!   of another component (they mention none of its values).

use crate::emptiness::{check_emptiness, EmptinessOptions, EmptinessVerdict, Witness};
use rega_core::{Budget, CoreError, ExtendedAutomaton, GovernError};
use rega_data::{Database, SatCache, Value};
use std::collections::HashMap;

/// A finite database together with the lasso witnesses realizable over it.
#[derive(Clone, Debug)]
pub struct UniversalWitness {
    /// The combined database.
    pub database: Database,
    /// The per-lasso witnesses, re-based into the combined value space.
    pub witnesses: Vec<Witness>,
}

/// Builds one finite database over which every (budget-enumerable,
/// realizable) symbolic control trace of the automaton has a run.
///
/// Per-component value spaces are kept disjoint by offsetting; each
/// returned witness's run remains valid over the *combined* database,
/// which is re-verified before returning.
pub fn universal_witness_database(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
) -> Result<UniversalWitness, CoreError> {
    universal_witness_database_governed(
        ext,
        opts,
        &SatCache::new(ext.ra().schema().clone()),
        &Budget::unlimited(),
    )
}

/// [`universal_witness_database`] under a [`Budget`] and a caller-supplied
/// [`SatCache`]: the `SControl` build, the (abortable) lasso enumeration,
/// and every per-round witness pipeline run governed, with a deadline/token
/// re-check between rounds.
pub fn universal_witness_database_governed(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
    cache: &SatCache,
    budget: &Budget,
) -> Result<UniversalWitness, CoreError> {
    // Enumerate realizable lassos one at a time by running the emptiness
    // search repeatedly with the already-used control lassos excluded is
    // complex; instead reuse the internal enumeration: take each candidate
    // lasso and run the single-lasso pipeline through `check_emptiness` on
    // a restricted automaton is equally complex. The pragmatic route:
    // `check_emptiness` returns the first witness; we then diversify by
    // collecting witnesses for every accepting lasso via the public API.
    // One `SatCache` serves the `SControl` construction and every
    // per-lasso structure build below.
    let _span = rega_obs::span!("chase.universal_witness");
    let nba = rega_core::symbolic::scontrol_nba_governed(ext.ra(), cache, budget)?;
    let mut tripped: Option<GovernError> = None;
    let lassos = rega_automata::emptiness::enumerate_accepting_lassos_abortable(
        &nba,
        opts.max_lassos,
        opts.max_cycle_len,
        500_000,
        &mut || match budget.tick("chase.lasso_search") {
            Ok(()) => false,
            Err(e) => {
                tripped = Some(e);
                true
            }
        },
    );
    if let Some(e) = tripped {
        return Err(e.into());
    }
    let mut combined = Database::new(ext.ra().schema().clone());
    let mut witnesses: Vec<Witness> = Vec::new();
    let mut offset = 0u64;
    for (round, control) in lassos.into_iter().enumerate() {
        let _round = rega_obs::span!("chase.round", round = round);
        budget.check("chase.round")?;
        // Run the emptiness pipeline on just this lasso by temporarily
        // treating it as the only candidate: reuse the internal helpers via
        // a single-candidate check.
        let Some(w) =
            crate::emptiness::witness_for_lasso_governed(ext, &control, opts, cache, budget)?
        else {
            continue;
        };
        // Re-base values into a fresh range.
        let shift = |v: Value| Value(v.raw() + offset);
        let map: HashMap<Value, Value> = w
            .database
            .adom()
            .into_iter()
            .chain(
                w.prefix_run
                    .configs
                    .iter()
                    .flat_map(|c| c.regs.iter().copied()),
            )
            .map(|v| (v, shift(v)))
            .collect();
        let shifted_db = w.database.rename(&map);
        for rel in shifted_db.schema().relations() {
            for fact in shifted_db.facts(rel) {
                combined.insert(rel, fact.clone())?;
            }
        }
        let mut prefix_run = w.prefix_run.clone();
        for c in &mut prefix_run.configs {
            for v in &mut c.regs {
                *v = *map.get(v).unwrap_or(v);
            }
        }
        let mut lasso_run = w.lasso_run.clone();
        if let Some(run) = &mut lasso_run {
            for c in &mut run.configs {
                for v in &mut c.regs {
                    *v = *map.get(v).unwrap_or(v);
                }
            }
        }
        witnesses.push(Witness {
            control: w.control.clone(),
            database: shifted_db,
            prefix_run,
            lasso_run,
        });
        offset += 1 << 24;
    }
    // Re-verify every witness against the combined database; drop those
    // that no longer validate (should not happen by the disjointness
    // argument; the check keeps the construction honest).
    witnesses.retain(|w| {
        w.prefix_run.validate(ext.ra(), &combined).is_ok()
            && ext.check_finite_prefix(&combined, &w.prefix_run).is_ok()
            && match &w.lasso_run {
                Some(run) => ext.check_lasso_run(&combined, run).is_ok(),
                None => true,
            }
    });
    rega_obs::event!(
        "chase.done",
        witnesses = witnesses.len(),
        facts = combined.total_facts()
    );
    Ok(UniversalWitness {
        database: combined,
        witnesses,
    })
}

/// Convenience: the emptiness verdict for an automaton plus the universal
/// witness when non-empty.
pub fn emptiness_with_universal_witness(
    ext: &ExtendedAutomaton,
    opts: &EmptinessOptions,
) -> Result<Option<UniversalWitness>, CoreError> {
    match check_emptiness(ext, opts)? {
        EmptinessVerdict::Empty => Ok(None),
        EmptinessVerdict::NonEmpty(_) => Ok(Some(universal_witness_database(ext, opts)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::ExtendedAutomaton;

    #[test]
    fn example1_universal_database() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let u = universal_witness_database(&ext, &EmptinessOptions::default()).unwrap();
        assert!(!u.witnesses.is_empty());
        // Every witness validates over the combined database (checked in
        // the constructor; assert again for clarity).
        for w in &u.witnesses {
            assert!(w.prefix_run.validate(ext.ra(), &u.database).is_ok());
        }
    }

    #[test]
    fn example8_universal_database_covers_multiple_lassos() {
        let ext = paper::example8();
        let u = universal_witness_database(&ext, &EmptinessOptions::default()).unwrap();
        // Several alternation patterns are realizable; the combined
        // database must support all collected ones.
        assert!(u.witnesses.len() >= 2);
        for w in &u.witnesses {
            if let Some(run) = &w.lasso_run {
                assert!(ext.check_lasso_run(&u.database, run).is_ok());
            }
        }
    }

    #[test]
    fn empty_automaton_no_witnesses() {
        use rega_data::{Schema, SigmaType};
        let mut ra = rega_core::RegisterAutomaton::new(0, Schema::empty());
        let p = ra.add_state("p");
        let q = ra.add_state("q");
        ra.set_initial(p);
        ra.set_accepting(q);
        ra.add_transition(p, SigmaType::empty(0), q).unwrap();
        let ext = ExtendedAutomaton::new(ra);
        let r = emptiness_with_universal_witness(&ext, &EmptinessOptions::default()).unwrap();
        assert!(r.is_none());
    }
}
