//! The inequality graphs of the paper and the combinatorics on them:
//!
//! * `G_w` (Theorem 9): vertices are the active-domain classes of `∼_w`,
//!   edges are the `≠_w` pairs; the trace is realizable over a finite
//!   database iff the cliques of `G_w` are bounded.
//! * `G^w_h` (Definition 15): vertices are classes entirely left or right
//!   of position `h`, edges the `≠_w` pairs across; LR-boundedness asks for
//!   a uniform bound on its vertex covers. `G^w_h` is bipartite, so by
//!   König's theorem the minimum vertex cover equals the maximum matching.
//!
//! Algorithms: Bron–Kerbosch (with pivoting) for maximum clique, Kuhn's
//! augmenting paths for maximum bipartite matching, and greedy coloring
//! (the executable stand-in for the χ-boundedness argument of Theorem 9).

use crate::classes::ClassStructure;
use std::collections::{HashMap, HashSet};

/// An undirected graph on `n` vertices given by adjacency sets.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Adjacency sets.
    pub adj: Vec<HashSet<usize>>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![HashSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a != b {
            self.adj[a].insert(b);
            self.adj[b].insert(a);
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Maximum clique size, via Bron–Kerbosch with pivoting. Exponential in
    /// the worst case; the graphs here are small and sparse.
    pub fn max_clique(&self) -> usize {
        let mut best = 0usize;
        let p: HashSet<usize> = (0..self.len())
            .filter(|&v| !self.adj[v].is_empty())
            .collect();
        if p.is_empty() {
            return usize::from(!self.is_empty());
        }
        self.bk(&mut Vec::new(), p, HashSet::new(), &mut best);
        best.max(1)
    }

    fn bk(
        &self,
        r: &mut Vec<usize>,
        mut p: HashSet<usize>,
        mut x: HashSet<usize>,
        best: &mut usize,
    ) {
        if p.is_empty() && x.is_empty() {
            *best = (*best).max(r.len());
            return;
        }
        if r.len() + p.len() <= *best {
            return; // cannot beat the best
        }
        // Pivot: vertex of P ∪ X with most neighbors in P.
        let pivot = p
            .iter()
            .chain(x.iter())
            .copied()
            .max_by_key(|&u| self.adj[u].intersection(&p).count());
        let candidates: Vec<usize> = match pivot {
            Some(u) => p
                .iter()
                .copied()
                .filter(|v| !self.adj[u].contains(v))
                .collect(),
            None => p.iter().copied().collect(),
        };
        for v in candidates {
            r.push(v);
            let p2: HashSet<usize> = p.intersection(&self.adj[v]).copied().collect();
            let x2: HashSet<usize> = x.intersection(&self.adj[v]).copied().collect();
            self.bk(r, p2, x2, best);
            r.pop();
            p.remove(&v);
            x.insert(v);
        }
    }

    /// Greedy coloring; returns the color of each vertex (adjacent vertices
    /// get different colors). The number of colors is at most `Δ + 1`.
    pub fn greedy_coloring(&self) -> Vec<usize> {
        let mut color = vec![usize::MAX; self.len()];
        // Color in order of decreasing degree (helps quality slightly).
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.adj[v].len()));
        for v in order {
            let used: HashSet<usize> = self.adj[v]
                .iter()
                .map(|&u| color[u])
                .filter(|&c| c != usize::MAX)
                .collect();
            let mut c = 0;
            while used.contains(&c) {
                c += 1;
            }
            color[v] = c;
        }
        color
    }
}

/// A bipartite graph `L × R` given by edge lists from the left side.
#[derive(Clone, Debug)]
pub struct Bipartite {
    /// Edges from each left vertex to right-vertex indices.
    pub left_adj: Vec<Vec<usize>>,
    /// Number of right vertices.
    pub n_right: usize,
}

impl Bipartite {
    /// Maximum matching via Kuhn's augmenting-path algorithm. By König's
    /// theorem this equals the minimum vertex cover (Definition 15's
    /// parameter).
    pub fn max_matching(&self) -> usize {
        let mut match_r: Vec<Option<usize>> = vec![None; self.n_right];
        let mut result = 0;
        for l in 0..self.left_adj.len() {
            let mut visited = vec![false; self.n_right];
            if self.try_kuhn(l, &mut visited, &mut match_r) {
                result += 1;
            }
        }
        result
    }

    fn try_kuhn(&self, l: usize, visited: &mut [bool], match_r: &mut [Option<usize>]) -> bool {
        for &r in &self.left_adj[l] {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            match match_r[r] {
                None => {
                    match_r[r] = Some(l);
                    return true;
                }
                Some(prev) => {
                    if self.try_kuhn(prev, visited, match_r) {
                        match_r[r] = Some(l);
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Builds `G_w` (Theorem 9): the inequality graph on the active-domain
/// classes of the structure. Returns the graph plus the class ids of its
/// vertices.
pub fn inequality_graph(s: &ClassStructure) -> (Graph, Vec<usize>) {
    let verts = s.adom_classes();
    let index: HashMap<usize, usize> = verts.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut g = Graph::new(verts.len());
    for &(a, b) in &s.neq {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            g.add_edge(ia, ib);
        }
    }
    (g, verts)
}

/// Builds `G^w_h` (Definition 15): classes entirely at positions `<= h` on
/// the left, entirely `> h` on the right, edges the `≠_w` pairs. Classes
/// containing constants straddle every position and are excluded (as are
/// straddling classes in the paper).
///
/// `boundary` limits the right side: classes touching positions `>=
/// boundary` are considered possibly-extending-beyond-the-horizon and are
/// still included (their edges can only grow the matching, which is what
/// the boundedness check watches).
pub fn lr_graph(s: &ClassStructure, h: usize) -> Bipartite {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut side: HashMap<usize, (bool, usize)> = HashMap::new(); // class -> (is_left, idx)
    for (cid, info) in s.classes.iter().enumerate() {
        if !info.consts.is_empty() || info.members.is_empty() {
            continue; // straddles or empty
        }
        if info.max_pos() <= h {
            side.insert(cid, (true, left.len()));
            left.push(cid);
        } else if info.min_pos() > h {
            side.insert(cid, (false, right.len()));
            right.push(cid);
        }
    }
    let mut left_adj = vec![Vec::new(); left.len()];
    for &(a, b) in &s.neq {
        let (sa, sb) = match (side.get(&a), side.get(&b)) {
            (Some(&x), Some(&y)) => (x, y),
            _ => continue,
        };
        match (sa, sb) {
            ((true, la), (false, rb)) => left_adj[la].push(rb),
            ((false, ra), (true, lb)) => left_adj[lb].push(ra),
            _ => {}
        }
    }
    Bipartite {
        left_adj,
        n_right: right.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_of_triangle() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        assert_eq!(g.max_clique(), 3);
    }

    #[test]
    fn clique_of_edgeless_graph() {
        let g = Graph::new(5);
        assert_eq!(g.max_clique(), 1);
        let empty = Graph::new(0);
        assert_eq!(empty.max_clique(), 0);
    }

    #[test]
    fn clique_of_complete_graph() {
        let mut g = Graph::new(6);
        for a in 0..6 {
            for b in (a + 1)..6 {
                g.add_edge(a, b);
            }
        }
        assert_eq!(g.max_clique(), 6);
    }

    #[test]
    fn clique_of_bipartite_is_two() {
        let mut g = Graph::new(6);
        for a in 0..3 {
            for b in 3..6 {
                g.add_edge(a, b);
            }
        }
        assert_eq!(g.max_clique(), 2);
    }

    #[test]
    fn coloring_is_proper() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(3, 4);
        let colors = g.greedy_coloring();
        for v in 0..5 {
            for &u in &g.adj[v] {
                assert_ne!(colors[v], colors[u]);
            }
        }
        assert!(colors.iter().max().unwrap() >= &2); // triangle needs 3 colors
    }

    #[test]
    fn matching_simple() {
        // 2x2 complete bipartite: matching 2.
        let b = Bipartite {
            left_adj: vec![vec![0, 1], vec![0, 1]],
            n_right: 2,
        };
        assert_eq!(b.max_matching(), 2);
    }

    #[test]
    fn matching_with_conflict() {
        // Both left vertices only connect to right 0: matching 1.
        let b = Bipartite {
            left_adj: vec![vec![0], vec![0]],
            n_right: 1,
        };
        assert_eq!(b.max_matching(), 1);
    }

    #[test]
    fn matching_augmenting_path() {
        // l0-{r0}, l1-{r0,r1}: Kuhn must reroute l1 to r1. Matching 2.
        let b = Bipartite {
            left_adj: vec![vec![0], vec![0, 1]],
            n_right: 2,
        };
        assert_eq!(b.max_matching(), 2);
    }

    #[test]
    fn matching_empty() {
        let b = Bipartite {
            left_adj: vec![],
            n_right: 0,
        };
        assert_eq!(b.max_matching(), 0);
    }
}
