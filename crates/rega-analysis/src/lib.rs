#![warn(missing_docs)]

//! Decision procedures for (extended) register automata, after *Projection
//! Views of Register Automata* (Segoufin & Vianu, PODS 2020):
//!
//! * [`classes`] — the equivalence relation `∼_w` over (position, register)
//!   pairs of a symbolic control trace, its inequality relation `≠_w`, and
//!   the active-domain classes (the machinery behind Theorem 9);
//! * [`graph`] — the inequality graphs `G_w` (Theorem 9) and `G^w_h`
//!   (Definition 15) with maximum-clique and maximum-matching computations;
//! * [`emptiness`] — Corollary 10: emptiness of extended automata, with
//!   witness construction (a finite database plus a concrete run);
//! * [`lr`] — Theorem 18: deciding LR-boundedness;
//! * [`verify`] — Theorem 12: LTL-FO model checking;
//! * [`chase`] — the guarded chase building Theorem 9's stage-1 witness
//!   database directly from the automaton.
//!
//! ## Budgets and exactness
//!
//! The paper's decidability proofs go through MSO with bounding quantifiers;
//! executable counterparts work on ultimately periodic (lasso) traces. Each
//! procedure here is exact on the lassos it examines (constraint structures
//! are computed to a *stabilized* horizon and growth between horizons is
//! detected); the set of lassos examined is budgeted by explicit options.
//! All of the paper's examples are decided correctly within tiny budgets;
//! the experiment suite (EXPERIMENTS.md) probes the budget sensitivity.

pub mod chase;
pub mod classes;
pub mod emptiness;
pub mod graph;
pub mod lr;
pub mod verify;

pub use classes::{ClassOptions, ClassStructure};
pub use emptiness::{EmptinessOptions, EmptinessVerdict, Witness};
pub use lr::{LrOptions, LrVerdict};
pub use verify::{VerifyOptions, VerifyResult};
