//! LTL-FO model checking of extended register automata (Theorem 12).
//!
//! `𝒜 ⊨ ∀z̄ φ_f` iff no run of `𝒜` (under any valuation of `z̄`) satisfies
//! `¬φ_f`. The pipeline, following the paper:
//!
//! 1. *Global-variable elimination*: `|z̄|` extra registers are added,
//!    propagated unchanged by every transition; each run then carries a
//!    valuation of `z̄`.
//! 2. *Type refinement*: transition types are refined just enough to decide
//!    every atom the formula mentions (the paper completes fully; deciding
//!    only the needed atoms is equivalent for evaluation and exponentially
//!    cheaper).
//! 3. The negated formula is translated to a Büchi automaton (tableau
//!    construction) whose guards are evaluated under the transition types.
//! 4. The product of the automaton with the formula automaton is again an
//!    extended automaton; `𝒜 ⊨ φ` iff the product is empty (Corollary 10).

use crate::emptiness::{check_emptiness, EmptinessOptions, EmptinessVerdict, Witness};
use rega_core::transform::complete_extended_for_atoms;
use rega_core::{CoreError, ExtendedAutomaton, RegisterAutomaton, StateId};
use rega_data::{Literal, Term};
use rega_logic::translate::ltl_to_automaton;
use rega_logic::LtlFo;

/// Budgets for verification (the underlying emptiness search).
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyOptions {
    /// Budgets of the emptiness check on the product automaton.
    pub emptiness: EmptinessOptions,
}

/// The verdict of verification.
#[derive(Clone, Debug)]
pub enum VerifyResult {
    /// Every run satisfies the sentence.
    Holds,
    /// Some run violates it; the witness lives in the product automaton
    /// (its register trace projected to the first `k` registers is a run of
    /// the original automaton, and registers `k..k+|z̄|` value the globals).
    CounterExample(Box<Witness>),
}

impl VerifyResult {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, VerifyResult::Holds)
    }
}

/// Adds `nz` constant ("global") registers to an extended automaton: each
/// transition additionally propagates registers `k..k+nz` unchanged.
pub fn add_global_registers(
    ext: &ExtendedAutomaton,
    nz: u16,
) -> Result<ExtendedAutomaton, CoreError> {
    let ra = ext.ra();
    let k = ra.k();
    let mut out = RegisterAutomaton::new(k + nz, ra.schema().clone());
    for s in ra.states() {
        let s2 = out.add_state(ra.state_name(s));
        debug_assert_eq!(s, s2);
        if ra.is_initial(s) {
            out.set_initial(s);
        }
        if ra.is_accepting(s) {
            out.set_accepting(s);
        }
    }
    for t in ra.transition_ids() {
        let tr = ra.transition(t);
        let mut ty = tr.ty.with_k(k + nz);
        for i in 0..nz {
            ty.add(Literal::eq(Term::x(k + i), Term::y(k + i)));
        }
        out.add_transition(tr.from, ty, tr.to)?;
    }
    let mut out = ExtendedAutomaton::new(out);
    for c in ext.constraints() {
        out.add_lifted_constraint(c, |s| s)?;
    }
    Ok(out)
}

/// Model checks an LTL-FO sentence against an extended automaton
/// (Theorem 12). Returns [`VerifyResult::Holds`] or a counterexample run.
pub fn verify(
    ext: &ExtendedAutomaton,
    phi: &LtlFo,
    opts: &VerifyOptions,
) -> Result<VerifyResult, CoreError> {
    let k = ext.ra().k();
    phi.validate(ext.ra().schema(), k)?;
    let nz = phi.num_globals();

    // 1. Eliminate globals.
    let (ext, phi) = if nz > 0 {
        (add_global_registers(ext, nz)?, phi.eliminate_globals(k))
    } else {
        (ext.clone(), phi.clone())
    };

    // 2. Refine the types just enough to decide every atom the formula
    // mentions.
    let mut atoms = Vec::new();
    for q in &phi.props {
        atoms.extend(q.atoms().ok_or_else(|| {
            CoreError::Data(rega_data::DataError::Undetermined(
                "global variable not eliminated".into(),
            ))
        })?);
    }
    atoms.sort();
    atoms.dedup();
    let ext = complete_extended_for_atoms(&ext, &atoms)?;

    // 3. Translate ¬φ.
    let neg = phi.negated();
    let auto = ltl_to_automaton(&neg.formula);

    // Truth of each proposition under each transition's (refined) type.
    let schema = ext.ra().schema().clone();
    let mut prop_truth: Vec<Vec<bool>> = Vec::with_capacity(ext.ra().num_transitions());
    for t in ext.ra().transition_ids() {
        let ty = &ext.ra().transition(t).ty;
        let mut row = Vec::with_capacity(neg.props.len());
        for q in &neg.props {
            row.push(q.eval_under_type(ty, &schema)?);
        }
        prop_truth.push(row);
    }
    let guard_ok = |atom: usize, t: rega_core::TransId| -> bool {
        let g = &auto.guards[atom];
        g.pos.iter().all(|&p| prop_truth[t.idx()][p as usize])
            && g.neg.iter().all(|&p| !prop_truth[t.idx()][p as usize])
    };

    // 4. Product automaton, built lazily. States: (q, atom, counter) over
    // 1 + m acceptance sets (set 0 = F of the automaton, sets 1..=m from
    // the formula automaton).
    let m = auto.acc.len();
    let n_sets = 1 + m;
    let ra = ext.ra();
    let mut product = RegisterAutomaton::new(ra.k(), schema.clone());
    let mut index: std::collections::HashMap<(StateId, usize, usize), StateId> = Default::default();
    let mut states: Vec<(StateId, usize, usize)> = Vec::new();
    fn intern_state(
        ra: &RegisterAutomaton,
        index: &mut std::collections::HashMap<(StateId, usize, usize), StateId>,
        states: &mut Vec<(StateId, usize, usize)>,
        product: &mut RegisterAutomaton,
        q: StateId,
        a: usize,
        c: usize,
    ) -> StateId {
        *index.entry((q, a, c)).or_insert_with(|| {
            let id = product.add_state(&format!("{}|a{}|c{}", ra.state_name(q), a, c));
            states.push((q, a, c));
            id
        })
    }
    for q in ra.states().filter(|&q| ra.is_initial(q)) {
        for &a0 in &auto.inits {
            let id = intern_state(ra, &mut index, &mut states, &mut product, q, a0, 0);
            product.set_initial(id);
        }
    }
    let in_set = |q: StateId, a: usize, set: usize| -> bool {
        if set == 0 {
            ra.is_accepting(q)
        } else {
            auto.acc[set - 1][a]
        }
    };
    let mut done = 0usize;
    while done < states.len() {
        let (q, a, c) = states[done];
        let sid = index[&(q, a, c)];
        done += 1;
        if c == 0 && in_set(q, a, 0) {
            product.set_accepting(sid);
        }
        let c2 = if in_set(q, a, c) { (c + 1) % n_sets } else { c };
        for &t in ra.outgoing(q) {
            if !guard_ok(a, t) {
                continue;
            }
            let tr = ra.transition(t);
            for &a2 in &auto.succ[a] {
                let tid = intern_state(ra, &mut index, &mut states, &mut product, tr.to, a2, c2);
                product.add_transition(sid, tr.ty.clone(), tid)?;
            }
        }
    }

    // Lift the global constraints through the projection to q.
    let state_of: Vec<StateId> = states.iter().map(|&(q, _, _)| q).collect();
    let mut product_ext = ExtendedAutomaton::new(product);
    for con in ext.constraints() {
        product_ext.add_lifted_constraint(con, |s| state_of[s.idx()])?;
    }

    // 5. Emptiness of the product.
    match check_emptiness(&product_ext, &opts.emptiness)? {
        EmptinessVerdict::Empty => Ok(VerifyResult::Holds),
        EmptinessVerdict::NonEmpty(w) => Ok(VerifyResult::CounterExample(w)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_data::{Qf, QfTerm, SigmaType};

    /// Example 1's automaton: register 2 is constant along every run.
    #[test]
    fn register2_globally_constant_holds() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let phi = LtlFo::new(
            "G stable2",
            [("stable2", Qf::Eq(QfTerm::x(1), QfTerm::y(1)))],
        )
        .unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        assert!(v.holds());
    }

    /// Register 1 is *not* globally constant in Example 1.
    #[test]
    fn register1_globally_constant_fails() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let phi = LtlFo::new(
            "G stable1",
            [("stable1", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))],
        )
        .unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        match v {
            VerifyResult::CounterExample(w) => {
                // The counterexample's prefix run changes register 1.
                let r = &w.prefix_run;
                assert!(r.configs.windows(2).any(|p| p[0].regs[0] != p[1].regs[0]));
            }
            VerifyResult::Holds => panic!("G (x1 = y1) must fail on Example 1"),
        }
    }

    /// Register 2 propagates even when the two registers disagree.
    #[test]
    fn registers_agree_at_q1() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let phi = LtlFo::new(
            "G (disagree -> keep2)",
            [
                ("disagree", Qf::neq(QfTerm::x(0), QfTerm::x(1))),
                ("keep2", Qf::Eq(QfTerm::x(1), QfTerm::y(1))),
            ],
        )
        .unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        assert!(v.holds());
    }

    /// A property with a global variable: in Example 7 (all values
    /// distinct), once a value occurs it never recurs:
    /// ∀z G (x1 = z -> X G x1 ≠ z).
    #[test]
    fn example7_no_value_recurs() {
        let ext = paper::example7();
        let phi = LtlFo::new(
            "G (hit -> X (G miss))",
            [
                ("hit", Qf::Eq(QfTerm::x(0), QfTerm::z(0))),
                ("miss", Qf::neq(QfTerm::x(0), QfTerm::z(0))),
            ],
        )
        .unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        assert!(v.holds());
    }

    /// The same property fails without the all-distinct constraint.
    #[test]
    fn free_automaton_values_can_recur() {
        let mut ra = RegisterAutomaton::new(1, rega_data::Schema::empty());
        let q = ra.add_state("q");
        ra.set_initial(q);
        ra.set_accepting(q);
        ra.add_transition(q, SigmaType::empty(1), q).unwrap();
        let ext = ExtendedAutomaton::new(ra);
        let phi = LtlFo::new(
            "G (hit -> X (G miss))",
            [
                ("hit", Qf::Eq(QfTerm::x(0), QfTerm::z(0))),
                ("miss", Qf::neq(QfTerm::x(0), QfTerm::z(0))),
            ],
        )
        .unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        assert!(!v.holds());
    }

    /// Trivially true and trivially false sentences.
    #[test]
    fn trivial_sentences() {
        let (ra, _) = paper::example1();
        let ext = ExtendedAutomaton::new(ra);
        let tt = LtlFo::new("G taut", [("taut", Qf::True)]).unwrap();
        assert!(verify(&ext, &tt, &VerifyOptions::default())
            .unwrap()
            .holds());
        let ff = LtlFo::new("F bad", [("bad", Qf::False)]).unwrap();
        assert!(!verify(&ext, &ff, &VerifyOptions::default())
            .unwrap()
            .holds());
    }

    /// Database propositions: Example 8's register is always in P.
    #[test]
    fn example8_register_always_in_p() {
        let ext = paper::example8();
        let p_rel = ext.ra().schema().relation("P").unwrap();
        let phi = LtlFo::new("G inP", [("inP", Qf::Rel(p_rel, vec![QfTerm::x(0)]))]).unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        assert!(v.holds());
    }

    /// Along infinite runs every position fires a transition requiring
    /// `P(x1)`, so the *next* value is also always in P.
    #[test]
    fn example8_next_register_always_in_p() {
        let ext = paper::example8();
        let p_rel = ext.ra().schema().relation("P").unwrap();
        let phi = LtlFo::new("G inP", [("inP", Qf::Rel(p_rel, vec![QfTerm::y(0)]))]).unwrap();
        let v = verify(&ext, &phi, &VerifyOptions::default()).unwrap();
        assert!(v.holds());
    }
}
