//! End-to-end tests of the `rega` binary against the bundled spec files.

use std::process::Command;

fn rega() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rega"))
}

fn repo_spec(name: &str) -> String {
    format!("{}/../../specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn empty_on_example1_reports_nonempty() {
    let out = rega()
        .args(["empty", &repo_spec("example1.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("non-empty"));
    assert!(stdout.contains("ultimately periodic run"));
}

#[test]
fn lr_on_all_distinct_reports_unbounded() {
    let out = rega()
        .args(["lr", &repo_spec("all_distinct.rega")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("not LR-bounded"));
}

#[test]
fn lr_on_example5_reports_bounded() {
    let out = rega()
        .args(["lr", &repo_spec("example5.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("LR-bounded"));
}

#[test]
fn verify_both_verdicts() {
    let holds = rega()
        .args([
            "verify",
            &repo_spec("example1.rega"),
            "G stable2",
            "stable2=x2 = y2",
        ])
        .output()
        .expect("binary runs");
    assert!(holds.status.success());
    assert!(String::from_utf8_lossy(&holds.stdout).contains("holds"));

    let fails = rega()
        .args([
            "verify",
            &repo_spec("example1.rega"),
            "G stable1",
            "stable1=x1 = y1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(fails.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fails.stdout).contains("counterexample"));
}

#[test]
fn project_emits_reparsable_spec() {
    let out = rega()
        .args(["project", &repo_spec("example1.rega"), "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let spec = String::from_utf8_lossy(&out.stdout);
    assert!(spec.contains("registers 1"));
    // The emitted view's transitions parse back (constraints are DFAs and
    // are emitted as comments).
    rega_core::spec::parse_spec(&spec).expect("round-trips");
}

#[test]
fn dot_output_shape() {
    let out = rega()
        .args(["dot", &repo_spec("example5.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("legend"));
}

#[test]
fn echo_round_trips() {
    let out = rega()
        .args(["echo", &repo_spec("example1.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let spec = String::from_utf8_lossy(&out.stdout);
    let reparsed = rega_core::spec::parse_spec(&spec).expect("round-trips");
    assert_eq!(reparsed.ra().num_states(), 2);
    assert_eq!(reparsed.ra().num_transitions(), 3);
}

#[test]
fn empty_proposition_rejected() {
    let out = rega()
        .args(["verify", &repo_spec("example1.rega"), "G p", "p="])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("empty formula"));
}

#[test]
fn project_beyond_k_errors_cleanly() {
    let out = rega()
        .args(["project", &repo_spec("example5.rega"), "5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported projection"));
}

#[test]
fn bad_usage_and_bad_file() {
    let out = rega().args(["frobnicate"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = rega()
        .args(["empty", "/nonexistent.rega"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
