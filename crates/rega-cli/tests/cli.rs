//! End-to-end tests of the `rega` binary against the bundled spec files.

use std::process::Command;

fn rega() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rega"))
}

fn repo_spec(name: &str) -> String {
    format!("{}/../../specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn empty_on_example1_reports_nonempty() {
    let out = rega()
        .args(["empty", &repo_spec("example1.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("non-empty"));
    assert!(stdout.contains("ultimately periodic run"));
}

#[test]
fn lr_on_all_distinct_reports_unbounded() {
    let out = rega()
        .args(["lr", &repo_spec("all_distinct.rega")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("not LR-bounded"));
}

#[test]
fn lr_on_example5_reports_bounded() {
    let out = rega()
        .args(["lr", &repo_spec("example5.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("LR-bounded"));
}

#[test]
fn verify_both_verdicts() {
    let holds = rega()
        .args([
            "verify",
            &repo_spec("example1.rega"),
            "G stable2",
            "stable2=x2 = y2",
        ])
        .output()
        .expect("binary runs");
    assert!(holds.status.success());
    assert!(String::from_utf8_lossy(&holds.stdout).contains("holds"));

    let fails = rega()
        .args([
            "verify",
            &repo_spec("example1.rega"),
            "G stable1",
            "stable1=x1 = y1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(fails.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fails.stdout).contains("counterexample"));
}

#[test]
fn project_emits_reparsable_spec() {
    let out = rega()
        .args(["project", &repo_spec("example1.rega"), "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let spec = String::from_utf8_lossy(&out.stdout);
    assert!(spec.contains("registers 1"));
    // The emitted view's transitions parse back (constraints are DFAs and
    // are emitted as comments).
    rega_core::spec::parse_spec(&spec).expect("round-trips");
}

#[test]
fn dot_output_shape() {
    let out = rega()
        .args(["dot", &repo_spec("example5.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("legend"));
}

#[test]
fn echo_round_trips() {
    let out = rega()
        .args(["echo", &repo_spec("example1.rega")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let spec = String::from_utf8_lossy(&out.stdout);
    let reparsed = rega_core::spec::parse_spec(&spec).expect("round-trips");
    assert_eq!(reparsed.ra().num_states(), 2);
    assert_eq!(reparsed.ra().num_transitions(), 3);
}

#[test]
fn empty_proposition_rejected() {
    let out = rega()
        .args(["verify", &repo_spec("example1.rega"), "G p", "p="])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("empty formula"));
}

#[test]
fn project_beyond_k_errors_cleanly() {
    let out = rega()
        .args(["project", &repo_spec("example5.rega"), "5"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported projection"));
}

/// A scratch path under the target directory, unique per test.
fn scratch(name: &str) -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(format!("{name}_{}", std::process::id()));
    p
}

#[test]
fn trace_json_then_trace_report_round_trip() {
    let trace = scratch("trace_roundtrip.jsonl");
    let out = rega()
        .args([
            "empty",
            &repo_spec("example1.rega"),
            "--trace-json",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // Every line is a JSON object with the pinned `kind` discriminator.
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.is_empty());
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
    }

    let report = rega()
        .args(["trace-report", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        report.status.success(),
        "trace-report must parse its own output"
    );
    let rendered = String::from_utf8_lossy(&report.stdout);
    assert!(rendered.contains("wall-time tree"));
    assert!(rendered.contains("emptiness.check"));
    assert!(rendered.contains("emptiness.on_the_fly.search"));
    assert!(rendered.contains("satcache hit ratio"));
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn trace_report_rejects_garbage() {
    let path = scratch("trace_garbage.jsonl");
    std::fs::write(&path, "not json\n").unwrap();
    let out = rega()
        .args(["trace-report", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn monitor_metrics_interval_emits_jsonl_snapshots() {
    let events = scratch("monitor_events.jsonl");
    // Valid example1 runs: q1 → q2 → q2 with both registers pinned to one
    // per-session value satisfies every transition type on the way.
    let mut lines = String::new();
    for s in 0..8 {
        let v = s + 1;
        for state in ["q1", "q2", "q2"] {
            lines.push_str(&format!(
                "{{\"session\":\"s{s}\",\"state\":\"{state}\",\"regs\":[{v},{v}]}}\n"
            ));
        }
        lines.push_str(&format!("{{\"session\":\"s{s}\",\"end\":true}}\n"));
    }
    std::fs::write(&events, lines).unwrap();

    let out = rega()
        .args([
            "monitor",
            &repo_spec("example1.rega"),
            "--events",
            events.to_str().unwrap(),
            "--metrics-interval-ms",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stderr carries at least one JSONL metrics snapshot (the final one is
    // always emitted on shutdown), each a parseable snapshot object.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let mut snapshots = 0;
    for line in stderr.lines().filter(|l| l.starts_with('{')) {
        let v: serde_json::Value = serde_json::from_str(line).expect("snapshot is JSON");
        assert!(v.get("events").is_some());
        assert!(v.get("queues").is_some());
        snapshots += 1;
    }
    assert!(
        snapshots >= 1,
        "expected at least one snapshot, stderr: {stderr}"
    );

    // The final stdout summary is unaffected.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary: serde_json::Value = serde_json::from_str(&stdout).expect("summary is JSON");
    assert_eq!(summary.get("sessions").and_then(|v| v.as_u64()), Some(8));
    let _ = std::fs::remove_file(&events);
}

#[test]
fn bad_usage_and_bad_file() {
    let out = rega().args(["frobnicate"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = rega()
        .args(["empty", "/nonexistent.rega"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
