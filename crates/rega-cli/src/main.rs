//! `rega` — the command-line interface.
//!
//! ```text
//! rega empty <spec>                 decide emptiness (Corollary 10)
//! rega verify <spec> <formula> p=<qf> [q=<qf> …]
//!                                   LTL-FO model checking (Theorem 12)
//! rega project <spec> <m>           projection view (Prop 20 / Thm 13)
//! rega lr <spec>                    LR-boundedness (Theorem 18)
//! rega dot <spec>                   Graphviz export
//! rega echo <spec>                  parse and re-render the spec
//! rega monitor <spec> --events <file.jsonl> [--shards N] [--workers N]
//!                     [--view M] [--seed N] [--submit-timeout-ms N]
//!                     [--quarantine-cap N] [--metrics-interval-ms N]
//!                                   stream multi-session monitoring
//! rega serve [--listen ADDR] [--max-tenants N] [--max-conns N]
//!            [--max-specs N] [--max-sessions N] [--quarantine-cap N]
//!            [--shards N] [--workers N] [--queue-capacity N]
//!            [--submit-timeout-ms N] [--metrics-interval-ms N]
//!                                   multi-tenant TCP monitoring service
//! rega trace-report <trace.jsonl>   per-phase wall-time tree of a trace
//! ```
//!
//! Every command additionally accepts the global flags:
//!
//! * `--trace-json <path>` — record a structured JSONL trace (spans +
//!   events from the construction pipeline) to `path` for later
//!   inspection with `rega trace-report`;
//! * `--timeout-ms <N>` / `--max-nodes <N>` — bound every exponential
//!   construction behind the command (completion, `SControl`, emptiness,
//!   projection, spec compilation) with a wall-clock deadline and/or an
//!   expansion-count ceiling. A tripped budget prints one structured JSON
//!   error line on stderr and exits with code 3.
//!
//! Exit codes: `0` success / positive verdict, `1` negative verdict (or
//! monitoring errors), `2` usage or input errors, `3` resource budget
//! tripped, `4` internal panic, `130` interrupted by ctrl-c. A
//! SIGTERM/SIGINT against `rega serve` is *not* an interruption: the
//! server drains every tenant engine, prints the final report, and exits
//! `0` — the clean-shutdown path a supervisor expects.
//!
//! With `--seed`, `monitor` runs the deterministic simulation scheduler
//! (single-threaded, seeded interleavings, simulated clock) instead of the
//! worker pool — the same events and seed always produce the same summary.
//! With `--metrics-interval-ms`, `monitor` emits one JSONL metrics
//! snapshot per interval on stderr while the run is in flight.
//!
//! Specs use the format of `rega_core::spec`. LTL-FO propositions are
//! quantifier-free formulas in the same literal syntax, e.g.
//! `stable=x1 = y1` or `inP=P(x1)`; the skeleton references them by name:
//! `"G stable"`.

use rega_analysis::emptiness::{check_emptiness_governed, EmptinessOptions, EmptinessVerdict};
use rega_analysis::lr::{is_lr_bounded, LrOptions};
use rega_analysis::verify::{verify, VerifyOptions, VerifyResult};
use rega_core::spec::{parse_spec, to_spec};
use rega_core::{Budget, BudgetSpec, CoreError, ExtendedAutomaton, GovernError};
use rega_data::SatCache;
use rega_logic::LtlFo;
use std::process::ExitCode;

/// Signal wiring lives in `rega_serve::signal` now — one handler covering
/// both SIGINT (a terminal's ctrl-c) and SIGTERM (a supervisor's stop),
/// shared between the batch commands here and the long-running `rega
/// serve`. The handler flips both the process-wide "interrupted" marker
/// (so exits report 130, not 3) and the budget's leaked cancellation flag
/// (so governed loops unwind with [`GovernError::Cancelled`]).
use rega_serve::signal as sigint;

/// Prints the structured budget-trip error line and picks the exit code:
/// 130 when the trip is a ctrl-c cancellation, 3 for every genuine limit.
fn govern_trip(g: &GovernError) -> ExitCode {
    let json = serde_json::json!({
        "error": "resource-budget",
        "kind": g.kind(),
        "phase": g.phase(),
        "nodes": g.nodes(),
        "elapsed_ms": g.elapsed_ms(),
        "message": g.to_string(),
    });
    eprintln!(
        "{}",
        serde_json::to_string(&json).unwrap_or_else(|_| g.to_string())
    );
    if matches!(g, GovernError::Cancelled { .. }) && sigint::triggered() {
        ExitCode::from(130)
    } else {
        ExitCode::from(3)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rega empty <spec-file>\n  rega verify <spec-file> <ltl-skeleton> name=<qf> …\n  \
         rega project <spec-file> <m>\n  rega lr <spec-file>\n  rega dot <spec-file>\n  \
         rega echo <spec-file>\n  \
         rega monitor <spec-file> --events <file.jsonl|-> [--shards N] [--workers N] [--view M]\n  \
         {:12}[--seed N] [--submit-timeout-ms N] [--quarantine-cap N] [--metrics-interval-ms N]\n  \
         rega serve [--listen ADDR] [--max-tenants N] [--max-conns N] [--max-specs N]\n  \
         {:10}[--max-sessions N] [--quarantine-cap N] [--shards N] [--workers N]\n  \
         {:10}[--queue-capacity N] [--submit-timeout-ms N] [--metrics-interval-ms N]\n  \
         rega trace-report <trace.jsonl>\n\
         global flags:\n  --trace-json <path>   record a structured JSONL trace of the run\n  \
         --timeout-ms <N>      wall-clock deadline for the symbolic constructions\n  \
         --max-nodes <N>       expansion-count ceiling for the symbolic constructions\n\
         exit codes: 0 ok, 1 negative verdict, 2 usage/input error, 3 budget tripped,\n  \
         {:10}4 internal panic, 130 interrupted (`rega serve` drains and exits 0 on\n  \
         {:10}SIGTERM/SIGINT)",
        "", "", "", "", ""
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ExtendedAutomaton, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_spec(&text).map_err(|e| e.to_string())
}

/// Parses a proposition definition `name=<qf>` where `<qf>` is a
/// comma-separated conjunction of literals in the spec syntax, re-using the
/// spec literal parser through a scratch automaton.
fn parse_prop(def: &str, ext: &ExtendedAutomaton) -> Result<(String, rega_data::Qf), String> {
    let (name, body) = def
        .split_once('=')
        .ok_or_else(|| format!("proposition `{def}` must have the form name=<formula>"))?;
    if body.trim().is_empty() {
        return Err(format!(
            "proposition `{}` has an empty formula (a bare name would be trivially true)",
            name.trim()
        ));
    }
    // Reuse the transition parser: wrap the body in a one-transition spec.
    let schema = ext.ra().schema();
    let mut scratch = format!("registers {}\n", ext.ra().k());
    if !schema.is_empty() {
        let mut entries: Vec<String> = schema
            .relations()
            .map(|r| format!("{}/{}", schema.relation_name(r), schema.arity(r)))
            .collect();
        entries.extend(
            schema
                .constants()
                .map(|c| format!("const {}", schema.constant_name(c))),
        );
        scratch.push_str(&format!("schema {{ {} }}\n", entries.join(", ")));
    }
    scratch.push_str("state s init accept\n");
    scratch.push_str(&format!("trans s -> s : {}\n", body.trim()));
    let parsed =
        parse_spec(&scratch).map_err(|e| format!("in proposition `{name}`: {}", e.message))?;
    let ty = parsed.ra().transition(rega_core::TransId(0)).ty.clone();
    let parts: Vec<rega_data::Qf> = ty
        .literals()
        .map(|l| match l {
            rega_data::Literal::Eq(s, t) => rega_data::Qf::Eq(term_to_qf(*s), term_to_qf(*t)),
            rega_data::Literal::Neq(s, t) => rega_data::Qf::neq(term_to_qf(*s), term_to_qf(*t)),
            rega_data::Literal::Rel {
                rel,
                args,
                positive,
            } => {
                let atom = rega_data::Qf::Rel(*rel, args.iter().map(|a| term_to_qf(*a)).collect());
                if *positive {
                    atom
                } else {
                    rega_data::Qf::Not(Box::new(atom))
                }
            }
        })
        .collect();
    Ok((name.trim().to_string(), rega_data::Qf::And(parts)))
}

fn term_to_qf(t: rega_data::Term) -> rega_data::QfTerm {
    match t {
        rega_data::Term::X(i) => rega_data::QfTerm::X(i),
        rega_data::Term::Y(i) => rega_data::QfTerm::Y(i),
        rega_data::Term::Const(c) => rega_data::QfTerm::Const(c),
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Global flag: `--trace-json <path>` installs a JSONL trace sink for
    // the whole invocation; the guard flushes on exit.
    let mut _trace_guard = None;
    if let Some(pos) = args.iter().position(|a| a == "--trace-json") {
        let path = args
            .get(pos + 1)
            .cloned()
            .ok_or_else(|| "--trace-json needs a path".to_string())?;
        args.drain(pos..pos + 2);
        _trace_guard = Some(
            rega_obs::install_jsonl(std::path::Path::new(&path))
                .map_err(|e| format!("cannot open trace file {path}: {e}"))?,
        );
    }
    // Global flags: `--timeout-ms <N>` / `--max-nodes <N>` bound every
    // governed construction behind the command. The budget is started even
    // without limits so its cancellation token gives ctrl-c a cooperative
    // exit path through the symbolic constructions.
    let mut bspec = BudgetSpec::none();
    if let Some(pos) = args.iter().position(|a| a == "--timeout-ms") {
        let ms: u64 = args
            .get(pos + 1)
            .ok_or_else(|| "--timeout-ms needs a value".to_string())?
            .parse()
            .map_err(|_| "--timeout-ms must be a number".to_string())?;
        args.drain(pos..pos + 2);
        bspec.deadline_ms = Some(ms);
    }
    if let Some(pos) = args.iter().position(|a| a == "--max-nodes") {
        let n: u64 = args
            .get(pos + 1)
            .ok_or_else(|| "--max-nodes needs a value".to_string())?
            .parse()
            .map_err(|_| "--max-nodes must be a number".to_string())?;
        args.drain(pos..pos + 2);
        bspec.max_nodes = Some(n);
    }
    let budget = Budget::start(&bspec);
    sigint::install(budget.cancel_token().leaked_flag());
    let Some(cmd) = args.first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "empty" => {
            let [_, path] = &args[..] else {
                return Ok(usage());
            };
            let ext = load(path)?;
            let cache = SatCache::new(ext.ra().schema().clone());
            let verdict =
                match check_emptiness_governed(&ext, &EmptinessOptions::default(), &cache, &budget)
                {
                    Ok(v) => v,
                    Err(CoreError::Govern(g)) => return Ok(govern_trip(&g)),
                    Err(e) => return Err(e.to_string()),
                };
            match verdict {
                EmptinessVerdict::NonEmpty(w) => {
                    println!("non-empty");
                    println!("witness control trace: {}", w.control);
                    if w.database.total_facts() > 0 {
                        println!("witness database:\n{}", w.database);
                    }
                    if let Some(run) = &w.lasso_run {
                        println!("ultimately periodic run: {run}");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                EmptinessVerdict::Empty => {
                    println!("empty (within the default search budgets)");
                    Ok(ExitCode::from(1))
                }
            }
        }
        "verify" => {
            if args.len() < 3 {
                return Ok(usage());
            }
            let ext = load(&args[1])?;
            let skeleton = &args[2];
            let mut props = Vec::new();
            for def in &args[3..] {
                props.push(parse_prop(def, &ext)?);
            }
            let phi = LtlFo::new(skeleton, props.iter().map(|(n, q)| (n.as_str(), q.clone())))
                .map_err(|e| e.to_string())?;
            match verify(&ext, &phi, &VerifyOptions::default()).map_err(|e| e.to_string())? {
                VerifyResult::Holds => {
                    println!("holds");
                    Ok(ExitCode::SUCCESS)
                }
                VerifyResult::CounterExample(w) => {
                    println!("fails; counterexample prefix:");
                    for (i, c) in w.prefix_run.configs.iter().take(8).enumerate() {
                        let vals: Vec<String> = c.regs.iter().map(|v| v.to_string()).collect();
                        println!("  position {i}: [{}]", vals.join(", "));
                    }
                    Ok(ExitCode::from(1))
                }
            }
        }
        "project" => {
            let [_, path, m] = &args[..] else {
                return Ok(usage());
            };
            let ext = load(path)?;
            let m: u16 = m.parse().map_err(|_| "m must be a number".to_string())?;
            let cache = SatCache::new(ext.ra().schema().clone());
            let proj = match rega_views::project_extended_governed(&ext, m, &cache, &budget) {
                Ok(p) => p,
                Err(CoreError::Govern(g)) => return Ok(govern_trip(&g)),
                Err(e) => return Err(e.to_string()),
            };
            print!("{}", to_spec(&proj.view).map_err(|e| e.to_string())?);
            Ok(ExitCode::SUCCESS)
        }
        "lr" => {
            let [_, path] = &args[..] else {
                return Ok(usage());
            };
            let ext = load(path)?;
            let v = is_lr_bounded(&ext, &LrOptions::default()).map_err(|e| e.to_string())?;
            if v.bounded {
                println!("LR-bounded (vertex-cover bound {})", v.bound);
                Ok(ExitCode::SUCCESS)
            } else {
                println!("not LR-bounded");
                if let Some(w) = v.witness {
                    println!("witness trace: {w}");
                }
                Ok(ExitCode::from(1))
            }
        }
        "dot" => {
            let [_, path] = &args[..] else {
                return Ok(usage());
            };
            let ext = load(path)?;
            print!("{}", rega_core::dot::extended_to_dot(&ext));
            Ok(ExitCode::SUCCESS)
        }
        "echo" => {
            let [_, path] = &args[..] else {
                return Ok(usage());
            };
            let ext = load(path)?;
            print!("{}", to_spec(&ext).map_err(|e| e.to_string())?);
            Ok(ExitCode::SUCCESS)
        }
        "monitor" => {
            if args.len() < 2 {
                return Ok(usage());
            }
            monitor(&args[1], &args[2..], &budget)
        }
        "serve" => serve(&args[1..], &bspec),
        "trace-report" => {
            let [_, path] = &args[..] else {
                return Ok(usage());
            };
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let summary = rega_obs::report::summarize(&text)?;
            print!("{}", rega_obs::report::render(&summary));
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

/// `rega serve`: the long-running multi-tenant monitoring service (see
/// the `rega-serve` crate). Listens for JSONL / binary-framed commands
/// over TCP, admits tenants against quotas, and on SIGTERM or SIGINT
/// drains every tenant engine and prints the final report — a
/// signal-initiated drain is a *clean* shutdown and exits 0.
fn serve(flags: &[String], server_budget: &BudgetSpec) -> Result<ExitCode, String> {
    use rega_serve::{Server, ServerConfig};

    let mut config = ServerConfig {
        server_budget: server_budget.clone(),
        ..ServerConfig::default()
    };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let parse_num = |name: &str, v: &str| -> Result<usize, String> {
            v.parse().map_err(|_| format!("{name} must be a number"))
        };
        match flag.as_str() {
            "--listen" => config.listen = value("--listen")?.clone(),
            "--max-tenants" => {
                config.max_tenants = parse_num("--max-tenants", value("--max-tenants")?)?;
            }
            "--max-conns" => {
                config.max_conns = parse_num("--max-conns", value("--max-conns")?)?;
            }
            "--max-specs" => {
                config.quotas.max_specs = parse_num("--max-specs", value("--max-specs")?)?;
            }
            "--max-sessions" => {
                config.quotas.max_sessions = parse_num("--max-sessions", value("--max-sessions")?)?;
            }
            "--quarantine-cap" => {
                config.quotas.quarantine_cap =
                    parse_num("--quarantine-cap", value("--quarantine-cap")?)? as u64;
            }
            "--shards" => config.engine.shards = parse_num("--shards", value("--shards")?)?,
            "--workers" => config.engine.workers = parse_num("--workers", value("--workers")?)?,
            "--queue-capacity" => {
                config.engine.queue_capacity =
                    parse_num("--queue-capacity", value("--queue-capacity")?)?;
            }
            "--submit-timeout-ms" => {
                let ms = parse_num("--submit-timeout-ms", value("--submit-timeout-ms")?)?;
                config.engine.submit_timeout = Some(std::time::Duration::from_millis(ms as u64));
            }
            "--metrics-interval-ms" => {
                let ms = parse_num("--metrics-interval-ms", value("--metrics-interval-ms")?)?;
                if ms == 0 {
                    return Err("--metrics-interval-ms must be positive".to_string());
                }
                config.metrics_interval = Some(std::time::Duration::from_millis(ms as u64));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let server = Server::bind(config).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("rega serve: listening on {addr}");
    let shutdown = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    // Blocks until SIGTERM/SIGINT (the handler installed in `run` flips
    // the process-wide marker the accept loop polls), then drains.
    let report = server.run(shutdown);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
    );
    Ok(ExitCode::SUCCESS)
}

/// `rega monitor`: stream a JSONL event file (or stdin with `-`) through
/// the sharded engine and print a JSON report.
///
/// Ctrl-c does not kill the run: the event loop notices the signal between
/// lines, stops reading, drains every shard through `Engine::finish`, and
/// prints the summary (marked `"interrupted": true`) before exiting 130 —
/// so a partial run still yields its verdicts, metrics, and (with
/// `--trace-json`) a flushed trace file.
fn monitor(spec_path: &str, flags: &[String], budget: &Budget) -> Result<ExitCode, String> {
    use rega_stream::{CompiledSpec, Engine, EngineConfig, SessionStatus};
    use std::io::BufRead;

    let mut config = EngineConfig::default();
    let mut events_path: Option<String> = None;
    let mut view_m: Option<u16> = None;
    let mut seed: Option<u64> = None;
    let mut metrics_interval: Option<std::time::Duration> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--events" => events_path = Some(value("--events")?.clone()),
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a number".to_string())?;
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a number".to_string())?;
            }
            "--view" => {
                view_m = Some(
                    value("--view")?
                        .parse()
                        .map_err(|_| "--view must be a register count".to_string())?,
                );
            }
            "--seed" => {
                seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed must be a number".to_string())?,
                );
            }
            "--submit-timeout-ms" => {
                let ms: u64 = value("--submit-timeout-ms")?
                    .parse()
                    .map_err(|_| "--submit-timeout-ms must be a number".to_string())?;
                config.submit_timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--quarantine-cap" => {
                config.quarantine_cap = value("--quarantine-cap")?
                    .parse()
                    .map_err(|_| "--quarantine-cap must be a number".to_string())?;
            }
            "--metrics-interval-ms" => {
                let ms: u64 = value("--metrics-interval-ms")?
                    .parse()
                    .map_err(|_| "--metrics-interval-ms must be a number".to_string())?;
                if ms == 0 {
                    return Err("--metrics-interval-ms must be positive".to_string());
                }
                metrics_interval = Some(std::time::Duration::from_millis(ms));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let Some(events_path) = events_path else {
        return Ok(usage());
    };

    let ext = load(spec_path)?;
    let db = rega_data::Database::new(ext.ra().schema().clone());
    let spec = match CompiledSpec::compile_governed(ext, db, view_m, budget) {
        Ok(s) => s,
        Err(CoreError::Govern(g)) => return Ok(govern_trip(&g)),
        Err(e) => return Err(e.to_string()),
    };
    let registers = spec.registers();
    let spec = std::sync::Arc::new(spec);
    let mut engine = match seed {
        // A seed selects the deterministic simulation scheduler.
        Some(seed) => Engine::start_sim(spec, config, seed),
        None => Engine::start(spec, config),
    };

    // Periodic metrics snapshots: one JSONL line per interval on stderr,
    // leaving stdout to the final summary. The thread stops (and emits one
    // last line) when the run finishes.
    let metrics_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let metrics_thread = metrics_interval.map(|interval| {
        let metrics = std::sync::Arc::clone(engine.metrics());
        let stop = std::sync::Arc::clone(&metrics_stop);
        std::thread::spawn(move || {
            let emit = |metrics: &rega_stream::EngineMetrics| {
                if let Ok(line) = serde_json::to_string(&metrics.snapshot()) {
                    eprintln!("{line}");
                }
            };
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                emit(&metrics);
                // Sleep in small slices so shutdown is not delayed by up
                // to a whole interval.
                let mut remaining = interval;
                let slice = std::time::Duration::from_millis(10);
                while !stop.load(std::sync::atomic::Ordering::Relaxed)
                    && remaining > std::time::Duration::ZERO
                {
                    let step = remaining.min(slice);
                    std::thread::sleep(step);
                    remaining = remaining.saturating_sub(step);
                }
            }
            emit(&metrics);
        })
    });

    // Lines arrive through a dedicated reader thread so the event loop can
    // notice a ctrl-c between lines even while the read itself blocks
    // (stdin in particular — `signal(2)` handlers restart blocked reads).
    let file = if events_path == "-" {
        None
    } else {
        Some(
            std::fs::File::open(&events_path)
                .map_err(|e| format!("cannot open {events_path}: {e}"))?,
        )
    };
    // Each line travels with the byte offset it started at, so parse
    // errors can report an exact stream position (`line N (byte M): …`) —
    // an operator can `dd skip=M` straight to the malformed record.
    let (tx, rx) = std::sync::mpsc::channel::<Result<(String, u64), String>>();
    let _reader = std::thread::spawn(move || {
        let forward = |reader: &mut dyn BufRead| {
            let mut buf = String::new();
            let mut offset: u64 = 0;
            loop {
                buf.clear();
                match reader.read_line(&mut buf) {
                    Ok(0) => return,
                    Ok(n) => {
                        let line = buf.trim_end_matches(['\n', '\r']).to_string();
                        if tx.send(Ok((line, offset))).is_err() {
                            return;
                        }
                        offset += n as u64;
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e.to_string()));
                        return;
                    }
                }
            }
        };
        match file {
            Some(f) => forward(&mut std::io::BufReader::new(f)),
            None => forward(&mut std::io::stdin().lock()),
        }
    });

    let cancel = budget.cancel_token();
    let mut parse_errors: u64 = 0;
    let mut submit_errors: u64 = 0;
    let mut interrupted = false;
    let mut no: usize = 0;
    'stream: loop {
        if sigint::triggered() || cancel.is_cancelled() {
            interrupted = true;
            break 'stream;
        }
        let (line, offset) = match rx.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(Ok(line)) => line,
            Ok(Err(e)) => return Err(format!("read error in {events_path}: {e}")),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break 'stream,
        };
        no += 1;
        if line.trim().is_empty() {
            continue;
        }
        // Arity is validated at the edge: a step event with the wrong
        // tuple width never reaches a shard queue. Parse errors carry the
        // line number and byte offset of the offending record.
        match rega_stream::parse_event_located(&line, registers, no as u64, offset) {
            Ok(event) => {
                if let Err(e) = engine.submit(event) {
                    submit_errors += 1;
                    eprintln!("line {no}: submit failed: {e}");
                    if e == rega_stream::SubmitError::WorkersDead {
                        break 'stream;
                    }
                }
            }
            Err(e) => {
                parse_errors += 1;
                eprintln!("{e}");
            }
        }
    }
    drop(rx); // unblocks the reader thread at its next send
    let report = engine.finish();
    metrics_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = metrics_thread {
        let _ = handle.join();
    }

    let mut violations = Vec::new();
    for outcome in report.violations() {
        if let SessionStatus::Violated(kind) = &outcome.status {
            violations.push(serde_json::json!({
                "session": outcome.session.as_str(),
                "reason": kind.to_string(),
                "events": outcome.events,
            }));
        }
    }
    let violated = violations.len();
    let metrics = &report.metrics;
    let summary = serde_json::json!({
        "sessions": report.outcomes.len(),
        "violations": serde_json::Value::Array(violations),
        "interrupted": interrupted,
        "parse_errors": parse_errors,
        "submit_errors": submit_errors,
        "quarantined": metrics
            .events_quarantined.get(),
        "worker_panics": metrics
            .worker_panics.get(),
        "metrics": metrics.snapshot(),
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
    );
    if interrupted {
        Ok(ExitCode::from(130))
    } else if violated > 0 || parse_errors > 0 || submit_errors > 0 {
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    // Panics escape as one structured JSON line on stderr plus exit code
    // 4, so supervisors scripting the CLI can tell an internal bug from a
    // negative verdict (1), bad input (2), or a tripped budget (3).
    std::panic::set_hook(Box::new(|info| {
        let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        let location = info
            .location()
            .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
            .unwrap_or_else(|| "unknown".to_string());
        let json = serde_json::json!({
            "error": "panic",
            "message": message.clone(),
            "location": location.clone(),
        });
        eprintln!(
            "{}",
            serde_json::to_string(&json)
                .unwrap_or_else(|_| format!("panic at {location}: {message}"))
        );
    }));
    match std::panic::catch_unwind(run) {
        Ok(Ok(code)) => code,
        Ok(Err(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(_) => ExitCode::from(4),
    }
}
