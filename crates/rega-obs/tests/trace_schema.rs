//! Golden-file test pinning the JSONL trace schema: the exact field set
//! (and key order — serialization sorts keys) per event kind. Mirrors the
//! metrics-snapshot golden test in rega-stream so downstream parsers of
//! `--trace-json` output don't silently break.
//!
//! If the schema changes *deliberately*, regenerate with
//! `REGA_BLESS=1 cargo test -p rega-obs --test trace_schema` and update
//! the consumers (`rega trace-report`, external dashboards) in the same
//! change.

#![cfg(feature = "trace")]

use rega_obs::{event, install, span, JsonlSink, ManualClock, MemorySink, TraceSink};
use std::sync::Arc;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/testdata/trace_schema.golden.jsonl"
);

/// A fixed instrumented run on a [`ManualClock`]: one nested span pair
/// with fields, a field-free span, and two events (one outside any span).
fn fixed_trace(sink: Arc<dyn TraceSink>) {
    let clock = Arc::new(ManualClock::new());
    let guard = install(sink, clock.clone());
    {
        let _check = span!("emptiness.check", spec = "example1", max_lassos = 64u64);
        clock.advance(100);
        {
            let _nba = span!("emptiness.nba_build");
            clock.advance(900);
            event!(
                "nba.built",
                states = 4u64,
                transitions = 9u64,
                pruned = false
            );
        }
        clock.advance(50);
        event!(
            "satcache.stats",
            hits = 42u64,
            misses = 7u64,
            distinct = 7u64
        );
        clock.advance(25);
    }
    drop(guard);
}

fn check_against_golden(got: &str) {
    if std::env::var_os("REGA_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, format!("{}\n", got.trim_end())).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with REGA_BLESS=1 to create it");
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "JSONL trace schema drifted from the golden file; if deliberate, \
         re-bless with REGA_BLESS=1 and update trace consumers"
    );
}

#[test]
fn jsonl_schema_matches_golden_file() {
    let mem = MemorySink::new();
    fixed_trace(Arc::new(mem.clone()));
    let got: Vec<String> = mem
        .events()
        .iter()
        .map(|e| serde_json::to_string(&e.to_json()).unwrap())
        .collect();
    check_against_golden(&got.join("\n"));
}

/// The file-backed sink must write byte-identical lines to what the
/// in-memory events serialize to — one JSON object per line, flushed when
/// the guard drops.
#[test]
fn jsonl_sink_writes_the_same_lines() {
    let path = std::env::temp_dir().join(format!(
        "rega_obs_trace_schema_{}.jsonl",
        std::process::id()
    ));
    fixed_trace(Arc::new(JsonlSink::create(&path).unwrap()));
    let got = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    check_against_golden(&got);
    // Every line is standalone valid JSON with a "kind" discriminator.
    for line in got.lines() {
        let value: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(value.get("kind").and_then(|k| k.as_str()).is_some());
    }
}
