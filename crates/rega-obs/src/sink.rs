//! Trace sinks: where [`TraceEvent`]s go once a sink is installed.

use crate::trace::TraceEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A consumer of trace records. Implementations must be cheap and
/// non-blocking where possible — `record` runs inline on instrumented
/// threads.
pub trait TraceSink: Send + Sync {
    /// Consumes one record.
    fn record(&self, event: &TraceEvent);
    /// Flushes buffered output (called when the install guard drops).
    fn flush(&self) {}
}

/// Writes one JSON object per line to a file, buffered.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            // A generous buffer keeps write syscalls off instrumented hot
            // paths (~1.7k records between flushes); the install guard
            // flushes the tail on drop.
            writer: Mutex::new(BufWriter::with_capacity(256 * 1024, file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        thread_local! {
            static LINE: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
        }
        LINE.with(|buf| {
            let mut line = buf.borrow_mut();
            line.clear();
            // Serialize outside the lock (and without the `Value` tree the
            // golden test pins this against) — `record` runs inline on
            // instrumented hot paths.
            event.write_jsonl(&mut line);
            line.push('\n');
            let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            // A full disk mid-trace must not panic the instrumented
            // thread; the trace just ends early.
            let _ = writer.write_all(line.as_bytes());
        });
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.flush();
    }
}

/// Collects records in memory; cloning shares the same buffer, so tests
/// keep one handle and install the other.
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}
