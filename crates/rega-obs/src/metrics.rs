//! Lock-free metric handles and the named registry that owns them.
//!
//! A [`Counter`], [`Gauge`], or [`Histogram`] is a cheap cloneable handle
//! (an `Arc` around relaxed atomics): producers keep clones on their hot
//! paths, the [`Registry`] keeps one more for snapshotting, and nothing
//! ever takes a lock after registration. Metrics never synchronize data —
//! they only count — so every access uses `Ordering::Relaxed`.

use serde_json::{json, Value as Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter (plus `set` for mirroring an
/// external running total, e.g. a cache's own hit count).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (absolute store — used when an external source
    /// owns the running total, so replays cannot double-count).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    peak: AtomicU64,
}

/// An up/down gauge with a high-water mark. Decrements saturate at zero
/// rather than wrapping, so replayed teardown events can never poison the
/// reading.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments and updates the peak.
    pub fn inc(&self) {
        let now = self.0.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Decrements, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    /// Overwrites the value and updates the peak.
    pub fn set(&self, n: u64) {
        self.0.value.store(n, Ordering::Relaxed);
        self.0.peak.fetch_max(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The highest value ever observed.
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two latency buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket is unbounded (≥ ~33 ms).
const BUCKETS: usize = 26;

#[derive(Debug, Default)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    /// Largest sample ever recorded, so quantile upper bounds can be
    /// clamped to reality instead of reporting the unbounded bucket's
    /// fictitious ceiling.
    max_ns: AtomicU64,
}

/// A coarse base-2 histogram of durations.
///
/// Quantiles report the upper bound of the bucket containing the rank,
/// clamped to the largest recorded sample — the unbounded final bucket can
/// therefore never inject a fictitious `2^63` ns (~292 years) into a p99
/// summary. Samples that did land in the unbounded bucket are flagged via
/// [`Histogram::saturated`] and the snapshot's `saturated` field instead.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration (saturating at `u64::MAX` nanoseconds).
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one duration given directly in nanoseconds (the form
    /// injectable clocks produce).
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether any sample landed in the unbounded final bucket (≥ 2^25
    /// ns): quantiles falling there are bucket-resolution-free and only
    /// bounded by the recorded maximum.
    pub fn saturated(&self) -> bool {
        self.0.buckets[BUCKETS - 1].load(Ordering::Relaxed) > 0
    }

    /// The largest recorded sample in nanoseconds (0 with no samples).
    pub fn max_ns(&self) -> u64 {
        self.0.max_ns.load(Ordering::Relaxed)
    }

    /// An approximate quantile in nanoseconds: the upper bound of the
    /// bucket containing the rank, clamped to the largest recorded sample.
    /// Returns 0 with no samples.
    pub fn approx_quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let max_ns = self.max_ns();
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return (1u64 << (i + 1).min(63)).min(max_ns);
            }
        }
        max_ns
    }

    /// The JSON snapshot: count, clamped p50/p99, non-empty buckets, and
    /// the saturation flag.
    pub fn snapshot(&self) -> Json {
        let buckets: Vec<Json> = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
            .map(|(i, b)| {
                json!({
                    "le_ns": 1u64 << (i + 1).min(63),
                    "count": b.load(Ordering::Relaxed),
                })
            })
            .collect();
        json!({
            "count": self.count(),
            "p50_ns_le": self.approx_quantile_ns(0.5),
            "p99_ns_le": self.approx_quantile_ns(0.99),
            "saturated": self.saturated(),
            "buckets": Json::Array(buckets),
        })
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metric handles.
///
/// `counter`/`gauge`/`histogram` get-or-create: the first caller under a
/// name creates the metric, later callers receive clones of the same
/// handle, so independent subsystems naming the same metric aggregate into
/// it. Registering a name twice at *different* kinds is a programming
/// error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is already registered as {other:?}, not a counter"),
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is already registered as {other:?}, not a gauge"),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is already registered as {other:?}, not a histogram"),
        }
    }

    /// A JSON snapshot of every registered metric, keyed by name. Counters
    /// serialize as numbers, gauges as `{value, peak}`, histograms as
    /// their bucket snapshot.
    pub fn snapshot(&self) -> Json {
        let metrics = self.metrics.lock().unwrap();
        let mut out = BTreeMap::new();
        for (name, metric) in metrics.iter() {
            let v = match metric {
                Metric::Counter(c) => Json::from(c.get()),
                Metric::Gauge(g) => json!({"value": g.get(), "peak": g.peak()}),
                Metric::Histogram(h) => h.snapshot(),
            };
            out.insert(name.clone(), v);
        }
        Json::Object(out)
    }
}

/// Sanitizes one metric-name segment: ASCII letters, digits, `_` and `-`
/// pass through; everything else (most importantly `.`, the namespace
/// separator) maps to `_`. Externally supplied identifiers — tenant names
/// arriving over the network, file-derived labels — go through this before
/// they become part of a metric name, so an adversarial name like
/// `x.faults.quarantined` cannot forge entries in another subsystem's
/// namespace. An empty segment becomes `_` so joined names never collapse.
pub fn sanitize_segment(segment: &str) -> String {
    if segment.is_empty() {
        return "_".to_string();
    }
    segment
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '-' => c,
            _ => '_',
        })
        .collect()
}

/// A prefix view onto a shared [`Registry`]: every metric created through
/// it is registered under `<prefix>.<name>`, with each prefix segment
/// passed through [`sanitize_segment`]. This is how per-tenant metrics
/// stay in one registry (one snapshot covers everything) without tenants
/// being able to collide with — or forge — each other's names.
#[derive(Clone, Debug)]
pub struct ScopedRegistry {
    registry: Arc<Registry>,
    prefix: String,
}

impl ScopedRegistry {
    /// A scope under `registry` made of the sanitized `segments` joined
    /// with `.` (e.g. `["serve", "tenant", "acme-corp"]` →
    /// `serve.tenant.acme-corp`).
    pub fn new(registry: Arc<Registry>, segments: &[&str]) -> Self {
        let prefix = segments
            .iter()
            .map(|s| sanitize_segment(s))
            .collect::<Vec<_>>()
            .join(".");
        ScopedRegistry { registry, prefix }
    }

    /// The sanitized, joined prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The underlying shared registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn scoped_name(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// The counter `<prefix>.<name>` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.scoped_name(name))
    }

    /// The gauge `<prefix>.<name>` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&self.scoped_name(name))
    }

    /// The histogram `<prefix>.<name>` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&self.scoped_name(name))
    }
}

/// The process-wide registry. Library code that is not handed an explicit
/// registry (e.g. the σ-type cache aggregates) registers here.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!((g.get(), g.peak()), (1, 2));
        g.dec();
        g.dec(); // saturates, never wraps
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!((g.get(), g.peak()), (7, 7));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket [64, 128)
        }
        h.record(Duration::from_micros(100)); // far tail
        assert_eq!(h.count(), 100);
        assert_eq!(h.approx_quantile_ns(0.5), 128);
        assert!(h.approx_quantile_ns(1.0) >= 100_000);
        assert!(!h.saturated());
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^i lands in bucket i (upper bound 2^(i+1)); 2^i - 1 lands one
        // bucket below. Checked through the snapshot's `le_ns` labels.
        for i in [1usize, 4, 10, 20] {
            let h = Histogram::new();
            h.record_ns(1 << i);
            let snap = h.snapshot();
            assert_eq!(
                snap["buckets"][0]["le_ns"].as_u64(),
                Some(1 << (i + 1)),
                "2^{i} must land in bucket [{}, {})",
                1u64 << i,
                1u64 << (i + 1)
            );
            let h = Histogram::new();
            h.record_ns((1 << i) - 1);
            let snap = h.snapshot();
            assert_eq!(snap["buckets"][0]["le_ns"].as_u64(), Some(1 << i));
        }
        // 0 ns is clamped into the first bucket, huge durations into the
        // last, both without panicking (saturating record).
        let h = Histogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        h.record(Duration::MAX);
        assert_eq!(h.count(), 3);
        let snap = h.snapshot();
        assert_eq!(snap["buckets"][0]["le_ns"].as_u64(), Some(2));
        assert_eq!(
            snap["buckets"][1]["le_ns"].as_u64(),
            Some(1u64 << BUCKETS.min(63)),
            "oversized samples collapse into the unbounded last bucket"
        );
        assert_eq!(snap["buckets"][1]["count"].as_u64(), Some(2));
    }

    /// The overflow fix: a quantile falling in the unbounded final bucket
    /// used to report `1 << 63` ns (~292 years); it now clamps to the
    /// largest recorded sample and raises the `saturated` flag.
    #[test]
    fn quantiles_clamp_to_max_recorded_sample() {
        let h = Histogram::new();
        h.record_ns(50_000_000); // 50 ms, in the unbounded bucket
        assert_eq!(h.approx_quantile_ns(0.5), 50_000_000);
        assert_eq!(h.approx_quantile_ns(0.99), 50_000_000);
        assert!(h.saturated());
        assert_eq!(h.snapshot()["saturated"].as_bool(), Some(true));
        assert_eq!(h.snapshot()["p99_ns_le"].as_u64(), Some(50_000_000));

        // Also inside bounded buckets: p99 of identical 100 ns samples is
        // the recorded 100 ns, not the 128 ns bucket ceiling... except the
        // clamp only tightens the *upper bound*, so it reports
        // min(bucket ceiling, max sample) = 100.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record_ns(100);
        }
        assert_eq!(h.approx_quantile_ns(0.99), 100);
        assert!(!h.saturated());
        assert_eq!(h.snapshot()["saturated"].as_bool(), Some(false));
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(3);
        b.add(4);
        assert_eq!(r.counter("x.hits").get(), 7);

        let g = r.gauge("x.depth");
        g.set(5);
        r.histogram("x.lat").record_ns(100);

        let snap = r.snapshot();
        assert_eq!(snap["x.hits"].as_u64(), Some(7));
        assert_eq!(snap["x.depth"]["peak"].as_u64(), Some(5));
        assert_eq!(snap["x.lat"]["count"].as_u64(), Some(1));
        // Snapshot round-trips through the serializer.
        let text = serde_json::to_string(&snap).unwrap();
        assert!(serde_json::from_str(&text).is_ok());
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }

    #[test]
    fn scoped_registry_prefixes_and_sanitizes() {
        let r = Arc::new(Registry::new());
        let tenant = ScopedRegistry::new(Arc::clone(&r), &["serve", "tenant", "acme-corp"]);
        assert_eq!(tenant.prefix(), "serve.tenant.acme-corp");
        tenant.counter("events.ok").add(3);
        tenant.gauge("sessions").set(2);
        let snap = r.snapshot();
        assert_eq!(snap["serve.tenant.acme-corp.events.ok"].as_u64(), Some(3));
        assert_eq!(
            snap["serve.tenant.acme-corp.sessions"]["value"].as_u64(),
            Some(2)
        );

        // A hostile tenant name cannot dot its way into another namespace.
        let evil = ScopedRegistry::new(Arc::clone(&r), &["serve", "tenant", "x.faults"]);
        assert_eq!(evil.prefix(), "serve.tenant.x_faults");
        evil.counter("quarantined").inc();
        let snap = r.snapshot();
        assert_eq!(snap["serve.tenant.x_faults.quarantined"].as_u64(), Some(1));
        assert!(snap
            .as_object()
            .unwrap()
            .get("serve.tenant.x.faults.quarantined")
            .is_none());

        assert_eq!(sanitize_segment(""), "_");
        assert_eq!(sanitize_segment("ok_name-7"), "ok_name-7");
        assert_eq!(sanitize_segment("a b/c\u{e9}"), "a_b_c_");
    }

    #[test]
    fn handles_are_shareable_across_threads() {
        let c = Counter::new();
        let g = Gauge::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (c, g) = (c.clone(), g.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                    g.inc();
                    g.dec();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(g.get(), 0);
        assert!(g.peak() >= 1);
    }
}
