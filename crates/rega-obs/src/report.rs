//! Offline trace analysis: parse a JSONL trace back into a per-span
//! wall-time tree plus the latest structured values — the engine behind
//! `rega trace-report`.

use serde_json::Value as Json;
use std::collections::BTreeMap;

/// Aggregated spans sharing one name path: `count` completions, `total_ns`
/// summed wall time, children keyed by name.
#[derive(Debug, Default)]
pub struct SpanNode {
    /// Completed spans at this path.
    pub count: u64,
    /// Summed wall time of those spans.
    pub total_ns: u64,
    /// Child spans by name, in name order.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    fn descend(&mut self, path: &[String]) -> &mut SpanNode {
        let mut node = self;
        for name in path {
            node = node.children.entry(name.clone()).or_default();
        }
        node
    }
}

/// Everything `trace-report` extracts from a trace file.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Aggregated wall-time tree (the root holds only children).
    pub tree: SpanNode,
    /// Records by kind.
    pub span_starts: u64,
    /// `span_end` records seen.
    pub span_ends: u64,
    /// `event` records seen.
    pub events: u64,
    /// Latest value per `event-name.field`, in key order.
    pub latest: BTreeMap<String, Json>,
    /// Spans started but never ended (a stuck or aborted run).
    pub unclosed: Vec<String>,
    /// `(hits, misses)` from the last `satcache.stats` event.
    pub satcache: Option<(u64, u64)>,
}

impl TraceSummary {
    /// SatCache hit ratio in `[0, 1]`, when the trace reported stats and
    /// at least one lookup happened.
    pub fn satcache_hit_ratio(&self) -> Option<f64> {
        let (hits, misses) = self.satcache?;
        let total = hits + misses;
        if total == 0 {
            return None;
        }
        Some(hits as f64 / total as f64)
    }
}

/// Parses a JSONL trace. Returns `Err` on the first malformed line — a
/// trace that does not parse should fail loudly, not report nonsense.
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    // span id -> (name, path from the root *including* the span itself).
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: Json = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON: {e:?}", lineno + 1))?;
        let kind = record
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
        let name = record
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"name\"", lineno + 1))?
            .to_string();
        match kind {
            "span_start" => {
                summary.span_starts += 1;
                let span = record
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: span_start without span id", lineno + 1))?;
                let mut path = record
                    .get("parent")
                    .and_then(Json::as_u64)
                    .and_then(|p| open.get(&p).cloned())
                    .unwrap_or_default();
                path.push(name);
                open.insert(span, path);
            }
            "span_end" => {
                summary.span_ends += 1;
                let span = record
                    .get("span")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: span_end without span id", lineno + 1))?;
                let dur_ns = record.get("dur_ns").and_then(Json::as_u64).unwrap_or(0);
                let path = open
                    .remove(&span)
                    .unwrap_or_else(|| vec![format!("<unknown:{name}>")]);
                let node = summary.tree.descend(&path);
                node.count += 1;
                node.total_ns += dur_ns;
            }
            "event" => {
                summary.events += 1;
                if let Some(fields) = record.get("fields").and_then(Json::as_object) {
                    for (key, value) in fields {
                        summary
                            .latest
                            .insert(format!("{name}.{key}"), value.clone());
                    }
                    if name == "satcache.stats" {
                        if let (Some(hits), Some(misses)) = (
                            fields.get("hits").and_then(Json::as_u64),
                            fields.get("misses").and_then(Json::as_u64),
                        ) {
                            summary.satcache = Some((hits, misses));
                        }
                    }
                }
            }
            other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
        }
    }
    let mut unclosed: Vec<String> = open.into_values().map(|path| path.join(" > ")).collect();
    unclosed.sort();
    unclosed.dedup();
    summary.unclosed = unclosed;
    Ok(summary)
}

/// Human-readable duration: picks ns / µs / ms / s by magnitude.
pub fn format_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn render_node(out: &mut String, name: &str, node: &SpanNode, depth: usize) {
    out.push_str(&format!(
        "{:indent$}{:<width$} {:>6}x {:>12}\n",
        "",
        name,
        node.count,
        format_ns(node.total_ns),
        indent = 2 * depth,
        width = 44usize.saturating_sub(2 * depth),
    ));
    for (child_name, child) in &node.children {
        render_node(out, child_name, child, depth + 1);
    }
}

/// Renders the summary as the multi-line text report printed by
/// `rega trace-report`.
pub fn render(summary: &TraceSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace report: {} records ({} span starts, {} span ends, {} events)\n",
        summary.span_starts + summary.span_ends + summary.events,
        summary.span_starts,
        summary.span_ends,
        summary.events,
    ));
    out.push_str("\nwall-time tree (count, total wall time):\n");
    if summary.tree.children.is_empty() {
        out.push_str("  (no completed spans)\n");
    }
    for (name, node) in &summary.tree.children {
        render_node(&mut out, name, node, 1);
    }
    if !summary.unclosed.is_empty() {
        out.push_str("\nunclosed spans (started, never ended):\n");
        for path in &summary.unclosed {
            out.push_str(&format!("  {path}\n"));
        }
    }
    if !summary.latest.is_empty() {
        out.push_str("\nlatest values:\n");
        for (key, value) in &summary.latest {
            let rendered = serde_json::to_string(value).unwrap_or_else(|_| "<?>".to_string());
            out.push_str(&format!("  {key} = {rendered}\n"));
        }
    }
    if let Some((hits, misses)) = summary.satcache {
        match summary.satcache_hit_ratio() {
            Some(ratio) => out.push_str(&format!(
                "\nsatcache hit ratio: {:.1}% ({hits} hits / {misses} misses)\n",
                100.0 * ratio
            )),
            None => out.push_str("\nsatcache hit ratio: n/a (no lookups)\n"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
{"kind":"span_start","name":"emptiness.check","parent":null,"span":0,"thread":0,"ts_ns":0}
{"kind":"span_start","name":"emptiness.nba_build","parent":0,"span":1,"thread":0,"ts_ns":10}
{"dur_ns":90,"kind":"span_end","name":"emptiness.nba_build","span":1,"thread":0,"ts_ns":100}
{"kind":"span_start","name":"emptiness.lasso_search","parent":0,"span":2,"thread":0,"ts_ns":100}
{"fields":{"candidates":3},"kind":"event","name":"emptiness.lassos","span":2,"thread":0,"ts_ns":150}
{"dur_ns":100,"kind":"span_end","name":"emptiness.lasso_search","span":2,"thread":0,"ts_ns":200}
{"fields":{"distinct":7,"hits":42,"misses":7},"kind":"event","name":"satcache.stats","span":0,"thread":0,"ts_ns":210}
{"dur_ns":220,"kind":"span_end","name":"emptiness.check","span":0,"thread":0,"ts_ns":220}
"#;

    #[test]
    fn summarize_builds_the_phase_tree() {
        let summary = summarize(SAMPLE).unwrap();
        assert_eq!(summary.span_starts, 3);
        assert_eq!(summary.span_ends, 3);
        assert_eq!(summary.events, 2);
        let check = &summary.tree.children["emptiness.check"];
        assert_eq!(check.count, 1);
        assert_eq!(check.total_ns, 220);
        assert_eq!(check.children["emptiness.nba_build"].total_ns, 90);
        assert_eq!(check.children["emptiness.lasso_search"].total_ns, 100);
        assert!(summary.unclosed.is_empty());
        assert_eq!(
            summary.latest["emptiness.lassos.candidates"].as_u64(),
            Some(3)
        );
    }

    #[test]
    fn satcache_ratio_comes_from_the_last_stats_event() {
        let summary = summarize(SAMPLE).unwrap();
        assert_eq!(summary.satcache, Some((42, 7)));
        let ratio = summary.satcache_hit_ratio().unwrap();
        assert!((ratio - 42.0 / 49.0).abs() < 1e-12);
        let rendered = render(&summary);
        assert!(rendered.contains("satcache hit ratio: 85.7%"));
        assert!(rendered.contains("emptiness.nba_build"));
    }

    #[test]
    fn unclosed_spans_are_reported_not_lost() {
        let text = r#"{"kind":"span_start","name":"stuck.phase","parent":null,"span":0,"thread":0,"ts_ns":0}"#;
        let summary = summarize(text).unwrap();
        assert_eq!(summary.unclosed, vec!["stuck.phase".to_string()]);
        assert!(render(&summary).contains("unclosed spans"));
    }

    #[test]
    fn malformed_lines_fail_loudly() {
        assert!(summarize("not json").is_err());
        assert!(summarize(r#"{"kind":"mystery","name":"x"}"#).is_err());
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(25_000), "25.0 µs");
        assert_eq!(format_ns(12_500_000), "12.5 ms");
        assert_eq!(format_ns(10_000_000_000), "10.00 s");
    }
}
