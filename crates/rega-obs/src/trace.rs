//! The span/event tracing core: a thread-local span stack, injectable
//! timestamps, and a process-global sink slot.
//!
//! Nothing is recorded until a sink is [`install`]ed; with no sink the
//! entire cost of an instrumented region is one relaxed atomic load (the
//! [`is_active`] check), and with the `trace` feature disabled the
//! [`span!`](crate::span) / [`event!`](crate::event) macros compile to
//! nothing at all. Spans nest per thread — a [`SpanGuard`] pushes its id
//! onto the calling thread's stack and pops it on drop, so a span may
//! never be sent across threads (each worker opens its own).

use crate::sink::{MemorySink, TraceSink};
use serde_json::{json, Value as Json};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// A monotonic nanosecond time source for trace timestamps. Distinct from
/// the engine's own clock trait so the tracer stays dependency-free;
/// deterministic tests inject a [`ManualClock`].
pub trait ObsClock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The real wall clock, anchored at construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsClock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A manually advanced clock: deterministic traces for golden-file tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl ObsClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }
}

/// A structured field value attached to an event or span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::U64(n) => Json::from(*n),
            FieldValue::I64(n) => Json::from(*n),
            FieldValue::F64(n) => Json::from(*n),
            FieldValue::Bool(b) => Json::from(*b),
            FieldValue::Str(s) => Json::from(s.as_str()),
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $cast)
            }
        })*
    };
}
field_from!(u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span was entered.
    SpanStart,
    /// A span was exited (carries the duration).
    SpanEnd,
    /// A point-in-time structured event inside (or outside) a span.
    Event,
}

/// One record of the trace stream. The JSONL field set per kind is pinned
/// by a golden-file test — downstream parsers depend on it:
///
/// * `span_start`: `fields, kind, name, parent, span, thread, ts_ns`
/// * `span_end`: `dur_ns, kind, name, span, thread, ts_ns`
/// * `event`: `fields, kind, name, span, thread, ts_ns`
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: TraceEventKind,
    /// Timestamp (tracer-clock nanoseconds).
    pub ts_ns: u64,
    /// Dense per-install thread number (0 = first thread that traced).
    pub thread: u64,
    /// The span this record belongs to (`None` for events outside spans).
    pub span: Option<u64>,
    /// The enclosing span at span start (`None` at the root).
    pub parent: Option<u64>,
    /// Span or event name.
    pub name: &'static str,
    /// Wall time of the span, on `span_end` records.
    pub dur_ns: Option<u64>,
    /// Structured fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// The JSONL form (one line per record; keys serialize sorted).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map(Json::from).unwrap_or(Json::Null);
        let fields_json = || {
            let mut fields = std::collections::BTreeMap::new();
            for (k, v) in &self.fields {
                fields.insert(k.to_string(), v.to_json());
            }
            Json::Object(fields)
        };
        match self.kind {
            TraceEventKind::SpanStart => json!({
                "kind": "span_start",
                "ts_ns": self.ts_ns,
                "thread": self.thread,
                "span": opt(self.span),
                "parent": opt(self.parent),
                "name": self.name,
                "fields": fields_json(),
            }),
            TraceEventKind::SpanEnd => json!({
                "kind": "span_end",
                "ts_ns": self.ts_ns,
                "thread": self.thread,
                "span": opt(self.span),
                "name": self.name,
                "dur_ns": opt(self.dur_ns),
            }),
            TraceEventKind::Event => json!({
                "kind": "event",
                "ts_ns": self.ts_ns,
                "thread": self.thread,
                "span": opt(self.span),
                "name": self.name,
                "fields": fields_json(),
            }),
        }
    }

    /// Serializes the compact JSONL line directly into `out`, byte-identical
    /// to `serde_json::to_string(&self.to_json())` (the schema golden test
    /// pins both paths against each other). The JSONL sink uses this on the
    /// hot path to skip the intermediate `Value` tree and its allocations.
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        let opt = |out: &mut String, v: Option<u64>| match v {
            Some(n) => {
                let _ = write!(out, "{n}");
            }
            None => out.push_str("null"),
        };
        out.push('{');
        match self.kind {
            TraceEventKind::SpanStart => {
                out.push_str("\"fields\":");
                self.write_fields(out);
                out.push_str(",\"kind\":\"span_start\",\"name\":");
                escape_json_into(out, self.name);
                out.push_str(",\"parent\":");
                opt(out, self.parent);
                out.push_str(",\"span\":");
                opt(out, self.span);
            }
            TraceEventKind::SpanEnd => {
                out.push_str("\"dur_ns\":");
                opt(out, self.dur_ns);
                out.push_str(",\"kind\":\"span_end\",\"name\":");
                escape_json_into(out, self.name);
                out.push_str(",\"span\":");
                opt(out, self.span);
            }
            TraceEventKind::Event => {
                out.push_str("\"fields\":");
                self.write_fields(out);
                out.push_str(",\"kind\":\"event\",\"name\":");
                escape_json_into(out, self.name);
                out.push_str(",\"span\":");
                opt(out, self.span);
            }
        }
        let _ = write!(
            out,
            ",\"thread\":{},\"ts_ns\":{}}}",
            self.thread, self.ts_ns
        );
    }

    /// Writes the sorted `fields` object (sorted keys; on duplicates the
    /// last value wins — matching the `BTreeMap` the `Value` path builds).
    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        if self.fields.is_empty() {
            out.push_str("{}");
            return;
        }
        let mut idx: Vec<usize> = (0..self.fields.len()).collect();
        idx.sort_by_key(|&i| self.fields[i].0);
        out.push('{');
        let mut first = true;
        for (n, &i) in idx.iter().enumerate() {
            if idx
                .get(n + 1)
                .is_some_and(|&j| self.fields[j].0 == self.fields[i].0)
            {
                continue; // a later duplicate shadows this one
            }
            if !first {
                out.push(',');
            }
            first = false;
            let (key, value) = &self.fields[i];
            escape_json_into(out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => {
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(v) => escape_json_into(out, v),
            }
        }
        out.push('}');
    }
}

/// JSON string escaping, matching the workspace `serde_json` serializer
/// rule for rule so [`TraceEvent::write_jsonl`] stays byte-identical to
/// the `Value` path.
fn escape_json_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct TracerState {
    sink: Arc<dyn TraceSink>,
    clock: Arc<dyn ObsClock>,
}

/// One relaxed load on every instrumented fast path.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static TRACER: RwLock<Option<TracerState>> = RwLock::new(None);
/// Serializes installations so concurrent tests cannot corrupt each
/// other's traces.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());
static NEXT_SPAN: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
/// Bumped per install; thread numbers are re-assigned per epoch so every
/// installation sees a dense 0-based numbering.
static EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_NUM: Cell<(u64, u64)> = const { Cell::new((u64::MAX, 0)) };
}

/// Whether a sink is installed. The macros check this before evaluating
/// their field expressions.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn thread_num() -> u64 {
    let epoch = EPOCH.load(Ordering::Relaxed);
    THREAD_NUM.with(|cell| {
        let (cached_epoch, cached) = cell.get();
        if cached_epoch == epoch {
            return cached;
        }
        let fresh = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        cell.set((epoch, fresh));
        fresh
    })
}

fn record(event: TraceEvent) {
    if let Some(state) = TRACER.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        state.sink.record(&event);
    }
}

fn now_ns() -> u64 {
    TRACER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(|s| s.clock.now_ns())
        .unwrap_or(0)
}

/// Keeps tracing active while alive; uninstalls the sink (flushing it) on
/// drop. Also holds the process-wide install lock, so a second `install`
/// blocks until the first guard drops.
pub struct SinkGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Relaxed);
        let state = TRACER.write().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(state) = state {
            state.sink.flush();
        }
    }
}

/// Installs `sink` as the process-global trace sink, with timestamps drawn
/// from `clock`. Span and thread numbering restart at zero. Blocks while
/// another guard is alive; tracing stops (and the sink flushes) when the
/// returned guard drops.
pub fn install(sink: Arc<dyn TraceSink>, clock: Arc<dyn ObsClock>) -> SinkGuard {
    let lock = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    NEXT_SPAN.store(0, Ordering::Relaxed);
    NEXT_THREAD.store(0, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Relaxed);
    *TRACER.write().unwrap_or_else(|e| e.into_inner()) = Some(TracerState { sink, clock });
    ACTIVE.store(true, Ordering::Relaxed);
    SinkGuard { _lock: lock }
}

/// Installs a [`JsonlSink`](crate::sink::JsonlSink) writing one JSON
/// record per line to `path` (truncating), with wall-clock timestamps.
pub fn install_jsonl(path: &std::path::Path) -> std::io::Result<SinkGuard> {
    let sink = crate::sink::JsonlSink::create(path)?;
    Ok(install(Arc::new(sink), Arc::new(MonotonicClock::new())))
}

/// Installs an in-memory collector (tests); the returned [`MemorySink`]
/// handle reads the collected events back.
pub fn install_memory() -> (MemorySink, SinkGuard) {
    let sink = MemorySink::new();
    let guard = install(Arc::new(sink.clone()), Arc::new(MonotonicClock::new()));
    (sink, guard)
}

/// An RAII span: entering emits `span_start` and pushes onto the calling
/// thread's span stack, dropping emits `span_end` with the wall time and
/// pops. Created via the [`span!`](crate::span) macro.
#[must_use = "a span ends when its guard drops — bind it to a variable"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    start_ns: u64,
    entered: bool,
}

impl SpanGuard {
    /// Enters a span (no-op while tracing is inactive).
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        if !is_active() {
            return SpanGuard {
                id: 0,
                name,
                start_ns: 0,
                entered: false,
            };
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        let ts_ns = now_ns();
        record(TraceEvent {
            kind: TraceEventKind::SpanStart,
            ts_ns,
            thread: thread_num(),
            span: Some(id),
            parent,
            name,
            dur_ns: None,
            fields,
        });
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            id,
            name,
            start_ns: ts_ns,
            entered: true,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.entered {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            match stack.last() {
                Some(&top) if top == self.id => {
                    stack.pop();
                }
                // Out-of-order drop (guards dropped not in reverse entry
                // order on this thread): remove defensively so the stack
                // cannot grow without bound.
                _ => stack.retain(|&x| x != self.id),
            }
        });
        let ts_ns = now_ns();
        record(TraceEvent {
            kind: TraceEventKind::SpanEnd,
            ts_ns,
            thread: thread_num(),
            span: Some(self.id),
            parent: None,
            name: self.name,
            dur_ns: Some(ts_ns.saturating_sub(self.start_ns)),
            fields: Vec::new(),
        });
    }
}

/// Emits a structured point-in-time event attributed to the calling
/// thread's current span. Prefer the [`event!`](crate::event) macro, which
/// skips field evaluation while tracing is inactive.
pub fn emit_event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !is_active() {
        return;
    }
    record(TraceEvent {
        kind: TraceEventKind::Event,
        ts_ns: now_ns(),
        thread: thread_num(),
        span: SPAN_STACK.with(|s| s.borrow().last().copied()),
        parent: None,
        name,
        dur_ns: None,
        fields,
    });
}

/// Opens a span: `let _span = span!("emptiness.check");` — optional
/// structured fields: `span!("stream.shard_batch", shard = i)`. Expands to
/// `()` with the `trace` feature disabled.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr $(, $key:ident = $val:expr)+ $(,)?) => {
        $crate::trace::SpanGuard::enter(
            $name,
            if $crate::trace::is_active() {
                ::std::vec![$((
                    ::std::stringify!($key),
                    $crate::trace::FieldValue::from($val),
                )),+]
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

/// Emits a structured event: `event!("emptiness.lassos", candidates = n);`.
/// Field expressions are evaluated only while a sink is installed; expands
/// to `()` with the `trace` feature disabled.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::is_active() {
            $crate::trace::emit_event(
                $name,
                ::std::vec![$((
                    ::std::stringify!($key),
                    $crate::trace::FieldValue::from($val),
                )),*],
            );
        }
    };
}

/// With the `trace` feature disabled the macro compiles to `()` — no field
/// evaluation, no guard, no atomic load.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! span {
    ($($tt:tt)*) => {
        ()
    };
}

/// With the `trace` feature disabled the macro compiles to `()`.
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! event {
    ($($tt:tt)*) => {
        ()
    };
}

#[cfg(test)]
mod tests {
    #[cfg(feature = "trace")]
    use super::*;
    #[cfg(feature = "trace")]
    use crate::TraceEventKind::*;

    #[cfg(feature = "trace")]
    #[test]
    fn spans_nest_and_events_attach() {
        let (mem, guard) = install_memory();
        {
            let _outer = span!("outer");
            event!("tick", n = 1u64);
            {
                let _inner = span!("inner", depth = 2u64);
                event!("tock", n = 2u64);
            }
        }
        drop(guard);
        let events = mem.events();
        let kinds: Vec<TraceEventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanStart, Event, SpanStart, Event, SpanEnd, SpanEnd]
        );
        // inner's parent is outer; the events sit in their enclosing spans.
        assert_eq!(events[2].parent, events[0].span);
        assert_eq!(events[1].span, events[0].span);
        assert_eq!(events[3].span, events[2].span);
        // inner carries its field on the start record.
        assert_eq!(events[2].fields, vec![("depth", FieldValue::U64(2))]);
        // span_end durations come from the tracer clock.
        assert!(events[4].dur_ns.is_some());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn inactive_tracing_records_nothing() {
        let (mem, guard) = install_memory();
        drop(guard); // deactivate immediately
        let _span = span!("ghost");
        event!("ghost.event", n = 3u64);
        assert!(mem.events().is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn manual_clock_drives_timestamps_and_durations() {
        let mem = MemorySink::new();
        let clock = Arc::new(ManualClock::new());
        let guard = install(Arc::new(mem.clone()), clock.clone());
        {
            let _s = span!("timed");
            clock.advance(1_000);
        }
        drop(guard);
        let events = mem.events();
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[1].ts_ns, 1_000);
        assert_eq!(events[1].dur_ns, Some(1_000));
    }

    /// The direct serializer must agree byte for byte with the `Value`
    /// path on every kind and every field type, including the awkward
    /// cases: escapes, floats, duplicate keys, missing span ids.
    #[cfg(feature = "trace")]
    #[test]
    fn write_jsonl_matches_value_serialization() {
        let cases = vec![
            TraceEvent {
                kind: SpanStart,
                ts_ns: 12,
                thread: 0,
                span: Some(3),
                parent: None,
                name: "with \"quotes\"\nand\tcontrol\u{1}",
                dur_ns: None,
                fields: vec![
                    ("z", FieldValue::Str("säge \\ path".into())),
                    ("a", FieldValue::F64(1.5)),
                    ("nan", FieldValue::F64(f64::NAN)),
                    ("neg", FieldValue::I64(-7)),
                    ("dup", FieldValue::U64(1)),
                    ("dup", FieldValue::U64(2)),
                    ("flag", FieldValue::Bool(false)),
                ],
            },
            TraceEvent {
                kind: SpanEnd,
                ts_ns: u64::MAX,
                thread: 7,
                span: None,
                parent: None,
                name: "end",
                dur_ns: Some(0),
                fields: Vec::new(),
            },
            TraceEvent {
                kind: Event,
                ts_ns: 0,
                thread: 1,
                span: None,
                parent: None,
                name: "bare",
                dur_ns: None,
                fields: Vec::new(),
            },
        ];
        for case in cases {
            let mut direct = String::new();
            case.write_jsonl(&mut direct);
            let via_value = serde_json::to_string(&case.to_json()).unwrap();
            assert_eq!(direct, via_value, "record: {case:?}");
        }
    }

    /// With the feature disabled both macros must expand to `()` — the
    /// compile-time proof that instrumentation is free when compiled out.
    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_macros_are_zero_sized() {
        let span = span!("anything", ignored = 42u64);
        let event = event!("anything", ignored = 42u64);
        assert_eq!(std::mem::size_of_val(&span), 0);
        assert_eq!(std::mem::size_of_val(&event), 0);
        // And the field expressions are *not evaluated*:
        let evaluated = std::cell::Cell::new(false);
        let _ = span!(
            "check",
            x = {
                evaluated.set(true);
                1u64
            }
        );
        let _ = event!(
            "check",
            x = {
                evaluated.set(true);
                1u64
            }
        );
        assert!(!evaluated.get(), "disabled macros must not evaluate fields");
    }
}
