//! `rega-obs` — the observability substrate of the rega workspace.
//!
//! The paper's constructions (`SControl(A)`, the projection views, the
//! chase, Büchi emptiness) are exponential-prone pipelines; when a run
//! takes seconds the interesting question is *which phase* and *how many
//! σ-types*. This crate makes that visible with three std-only pieces:
//!
//! * **Tracing** ([`trace`], [`sink`]): a thread-local span stack with
//!   monotonic (or injectable) timestamps and pluggable sinks — a JSONL
//!   writer for offline analysis, an in-memory collector for tests, and a
//!   no-op default whose cost is one relaxed atomic load per span. The
//!   [`span!`] and [`event!`] macros compile to nothing with the `trace`
//!   feature disabled.
//! * **Metrics** ([`metrics`]): lock-free [`Counter`]/[`Gauge`]/
//!   [`Histogram`] handles, registered by name in a [`Registry`] (one
//!   process-wide [`global()`] registry plus per-engine instances) and
//!   snapshotted as JSON.
//! * **Reporting** ([`report`]): parses a JSONL trace back into a
//!   per-span wall-time tree plus the latest structured values — the
//!   engine behind `rega trace-report`.
//!
//! Tracing is *process-global* and opt-in: nothing is recorded until a
//! sink is [`install`](trace::install)ed. Installation takes a
//! process-wide lock released when the returned guard drops, so
//! concurrent tests serialize instead of corrupting each other's traces.

pub mod metrics;
pub mod report;
pub mod sink;
pub mod trace;

pub use metrics::{global, sanitize_segment, Counter, Gauge, Histogram, Registry, ScopedRegistry};
pub use sink::{JsonlSink, MemorySink, TraceSink};
pub use trace::{
    install, install_jsonl, install_memory, is_active, FieldValue, ManualClock, MonotonicClock,
    ObsClock, SinkGuard, SpanGuard, TraceEvent, TraceEventKind,
};
