//! JSON codecs for engine snapshots.
//!
//! A snapshot captures everything needed to resume monitoring after a
//! crash or planned restart: per-session monitor/observer state (via
//! [`Session::snapshot`](crate::session::Session::snapshot)), the outcomes
//! of already-closed sessions, and the simulated clock. The format is
//! plain JSON (the vendored `serde_json` has no derive support, so every
//! codec is written out), shard-count independent — sessions are re-routed
//! by hash on restore — and versioned.
//!
//! Decoding is total: corrupt snapshots produce a [`SnapshotError`], never
//! a panic, and structurally valid snapshots that do not fit the spec
//! (wrong arity, out-of-range state) are rejected too.

use crate::session::{SessionStatus, ViolationKind};
use rega_core::StateId;
use rega_data::Value;
use rega_views::ObserverSnapshot;
use serde_json::{json, Value as Json};
use std::fmt;

/// Format version written into engine snapshots (as `format_version`).
///
/// History: version 1 snapshots carried the tag in a field named
/// `version`; the payload shape is unchanged since, so restore still
/// accepts them. Snapshots with neither field are treated as version 0
/// and rejected with [`SnapshotError::VersionMismatch`], as is any
/// version this build does not know.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Why a snapshot could not be decoded or does not fit the spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot declares a format version this build cannot restore.
    VersionMismatch {
        /// The version found in the snapshot (0 when unversioned).
        found: u64,
        /// The version this build writes.
        expected: u64,
    },
    /// The snapshot is structurally broken or does not fit the spec.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "bad snapshot: format version {found} (this build restores \
                 versions 1..={expected})"
            ),
            SnapshotError::Malformed(msg) => write!(f, "bad snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Shorthand constructor used throughout the decoders.
pub(crate) fn err(msg: &str) -> SnapshotError {
    SnapshotError::Malformed(msg.to_string())
}

/// The format version a snapshot declares: `format_version` (current),
/// the legacy `version` field (format 1), or 0 when neither is present.
pub(crate) fn declared_version(snapshot: &Json) -> u64 {
    snapshot["format_version"]
        .as_u64()
        .or_else(|| snapshot["version"].as_u64())
        .unwrap_or(0)
}

pub(crate) fn status_to_json(status: &SessionStatus) -> Json {
    match status {
        SessionStatus::Active => json!({"kind": "active"}),
        SessionStatus::Ended => json!({"kind": "ended"}),
        SessionStatus::Violated(v) => json!({
            "kind": "violated",
            "violation": violation_to_json(v),
        }),
    }
}

pub(crate) fn status_from_json(j: &Json) -> Result<SessionStatus, SnapshotError> {
    match j["kind"].as_str() {
        Some("active") => Ok(SessionStatus::Active),
        Some("ended") => Ok(SessionStatus::Ended),
        Some("violated") => Ok(SessionStatus::Violated(violation_from_json(
            &j["violation"],
        )?)),
        _ => Err(err("unknown status kind")),
    }
}

pub(crate) fn violation_to_json(v: &ViolationKind) -> Json {
    match v {
        ViolationKind::UnknownState(s) => json!({"kind": "unknown_state", "state": s.clone()}),
        ViolationKind::NotInitial(s) => json!({"kind": "not_initial", "state": s.clone()}),
        ViolationKind::Arity { got, want } => json!({"kind": "arity", "got": *got, "want": *want}),
        ViolationKind::NoTransition { from, to } => {
            json!({"kind": "no_transition", "from": from.clone(), "to": to.clone()})
        }
        ViolationKind::Constraint { constraint } => {
            json!({"kind": "constraint", "constraint": *constraint})
        }
        ViolationKind::ViewInconsistent => json!({"kind": "view_inconsistent"}),
        ViolationKind::AfterEnd => json!({"kind": "after_end"}),
        ViolationKind::QuarantineOverflow => json!({"kind": "quarantine_overflow"}),
        ViolationKind::WorkerPanic => json!({"kind": "worker_panic"}),
    }
}

pub(crate) fn violation_from_json(j: &Json) -> Result<ViolationKind, SnapshotError> {
    let string = |field: &str| -> Result<String, SnapshotError> {
        j[field]
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| err("violation field must be a string"))
    };
    let number = |field: &str| -> Result<u64, SnapshotError> {
        j[field]
            .as_u64()
            .ok_or_else(|| err("violation field must be a number"))
    };
    match j["kind"].as_str() {
        Some("unknown_state") => Ok(ViolationKind::UnknownState(string("state")?)),
        Some("not_initial") => Ok(ViolationKind::NotInitial(string("state")?)),
        Some("arity") => Ok(ViolationKind::Arity {
            got: number("got")? as usize,
            want: number("want")? as usize,
        }),
        Some("no_transition") => Ok(ViolationKind::NoTransition {
            from: string("from")?,
            to: string("to")?,
        }),
        Some("constraint") => Ok(ViolationKind::Constraint {
            constraint: number("constraint")? as usize,
        }),
        Some("view_inconsistent") => Ok(ViolationKind::ViewInconsistent),
        Some("after_end") => Ok(ViolationKind::AfterEnd),
        Some("quarantine_overflow") => Ok(ViolationKind::QuarantineOverflow),
        Some("worker_panic") => Ok(ViolationKind::WorkerPanic),
        _ => Err(err("unknown violation kind")),
    }
}

/// Encodes exported constraint-monitor slots
/// (`Vec<Vec<(dfa_state, values)>>`) as nested JSON arrays.
pub(crate) fn slots_to_json(slots: &[Vec<(usize, Vec<Value>)>]) -> Json {
    Json::Array(
        slots
            .iter()
            .map(|per_constraint| {
                Json::Array(
                    per_constraint
                        .iter()
                        .map(|(s, vals)| {
                            json!([*s, vals.iter().map(|v| v.raw()).collect::<Vec<u64>>()])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

#[allow(clippy::type_complexity)]
pub(crate) fn json_to_slots(j: &Json) -> Result<Vec<Vec<(usize, Vec<Value>)>>, SnapshotError> {
    j.as_array()
        .ok_or_else(|| err("monitor slots must be an array"))?
        .iter()
        .map(|per_constraint| {
            per_constraint
                .as_array()
                .ok_or_else(|| err("constraint slots must be an array"))?
                .iter()
                .map(|pair| {
                    let s = pair[0]
                        .as_u64()
                        .ok_or_else(|| err("slot state must be a number"))?;
                    let vals = pair[1]
                        .as_array()
                        .ok_or_else(|| err("slot values must be an array"))?
                        .iter()
                        .map(|v| v.as_u64().map(Value).ok_or_else(|| err("bad slot value")))
                        .collect::<Result<Vec<Value>, _>>()?;
                    Ok((s as usize, vals))
                })
                .collect()
        })
        .collect()
}

pub(crate) fn outcome_to_json(o: &crate::engine::SessionOutcome) -> Json {
    json!({
        "session": o.session.clone(),
        "status": status_to_json(&o.status),
        "events": o.events,
        "view_degraded": o.view_degraded,
        "quarantined": o.quarantined,
    })
}

pub(crate) fn outcome_from_json(j: &Json) -> Result<crate::engine::SessionOutcome, SnapshotError> {
    Ok(crate::engine::SessionOutcome {
        session: j["session"]
            .as_str()
            .ok_or_else(|| err("outcome session must be a string"))?
            .to_string(),
        status: status_from_json(&j["status"])?,
        events: j["events"]
            .as_u64()
            .ok_or_else(|| err("outcome events must be a number"))?,
        view_degraded: j["view_degraded"]
            .as_bool()
            .ok_or_else(|| err("outcome view_degraded must be a bool"))?,
        quarantined: j["quarantined"].as_u64().unwrap_or(0),
    })
}

pub(crate) fn observer_to_json(snap: &ObserverSnapshot) -> Json {
    json!({
        "frontier": Json::Array(
            snap.frontier
                .iter()
                .map(|(s, slots)| json!([s.0, slots_to_json(slots)]))
                .collect(),
        ),
        "last_regs": match &snap.last_regs {
            None => Json::Null,
            Some(regs) => json!(regs.iter().map(|v| v.raw()).collect::<Vec<u64>>()),
        },
        "max_frontier": snap.max_frontier,
        "overflowed": snap.overflowed,
        "dead": snap.dead,
    })
}

pub(crate) fn json_to_observer(j: &Json) -> Result<ObserverSnapshot, SnapshotError> {
    let frontier = j["frontier"]
        .as_array()
        .ok_or_else(|| err("observer frontier must be an array"))?
        .iter()
        .map(|pair| {
            let s = pair[0]
                .as_u64()
                .ok_or_else(|| err("frontier state must be a number"))?;
            if s > u64::from(u32::MAX) {
                return Err(err("frontier state out of range"));
            }
            Ok((StateId(s as u32), json_to_slots(&pair[1])?))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let last_regs = match &j["last_regs"] {
        Json::Null => None,
        regs => Some(
            regs.as_array()
                .ok_or_else(|| err("last_regs must be an array"))?
                .iter()
                .map(|v| v.as_u64().map(Value).ok_or_else(|| err("bad register")))
                .collect::<Result<Vec<Value>, _>>()?,
        ),
    };
    Ok(ObserverSnapshot {
        frontier,
        last_regs,
        max_frontier: j["max_frontier"]
            .as_u64()
            .ok_or_else(|| err("max_frontier must be a number"))? as usize,
        overflowed: j["overflowed"]
            .as_bool()
            .ok_or_else(|| err("overflowed must be a bool"))?,
        dead: j["dead"]
            .as_bool()
            .ok_or_else(|| err("dead must be a bool"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips_every_variant() {
        for status in [
            SessionStatus::Active,
            SessionStatus::Ended,
            SessionStatus::Violated(ViolationKind::UnknownState("x".into())),
            SessionStatus::Violated(ViolationKind::NotInitial("x".into())),
            SessionStatus::Violated(ViolationKind::Arity { got: 1, want: 2 }),
            SessionStatus::Violated(ViolationKind::NoTransition {
                from: "a".into(),
                to: "b".into(),
            }),
            SessionStatus::Violated(ViolationKind::Constraint { constraint: 3 }),
            SessionStatus::Violated(ViolationKind::ViewInconsistent),
            SessionStatus::Violated(ViolationKind::AfterEnd),
            SessionStatus::Violated(ViolationKind::QuarantineOverflow),
            SessionStatus::Violated(ViolationKind::WorkerPanic),
        ] {
            let text = serde_json::to_string(&status_to_json(&status)).unwrap();
            let back = status_from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, status);
        }
    }

    #[test]
    fn corrupt_json_is_an_error_not_a_panic() {
        for bad in [
            r#"{"kind": "nope"}"#,
            r#"{"kind": "violated", "violation": {"kind": "arity", "got": "x"}}"#,
            r#"{}"#,
            r#"[1, 2]"#,
            r#"7"#,
        ] {
            let j: Json = serde_json::from_str(bad).unwrap();
            assert!(status_from_json(&j).is_err(), "should reject: {bad}");
            assert!(violation_from_json(&j).is_err(), "should reject: {bad}");
            assert!(json_to_observer(&j).is_err(), "should reject: {bad}");
        }
        assert!(json_to_slots(&serde_json::from_str("{}").unwrap()).is_err());
        assert!(json_to_slots(&serde_json::from_str(r#"[[["x", []]]]"#).unwrap()).is_err());
    }

    #[test]
    fn slots_round_trip() {
        let slots = vec![
            vec![(0usize, vec![Value(3), Value(9)]), (2, vec![])],
            vec![],
        ];
        let text = serde_json::to_string(&slots_to_json(&slots)).unwrap();
        let back = json_to_slots(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, slots);
    }

    #[test]
    fn observer_snapshot_round_trips() {
        let snap = ObserverSnapshot {
            frontier: vec![(StateId(1), vec![vec![(0, vec![Value(4)])]])],
            last_regs: Some(vec![Value(7)]),
            max_frontier: 32,
            overflowed: false,
            dead: false,
        };
        let text = serde_json::to_string(&observer_to_json(&snap)).unwrap();
        let back = json_to_observer(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.frontier, snap.frontier);
        assert_eq!(back.last_regs, snap.last_regs);
        assert_eq!(back.max_frontier, snap.max_frontier);
        assert_eq!(back.overflowed, snap.overflowed);
        assert_eq!(back.dead, snap.dead);
    }
}
