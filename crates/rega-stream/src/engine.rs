//! The sharded worker-pool engine.
//!
//! Topology: sessions are hashed onto `shards` shards; each shard has one
//! bounded [`mpsc::sync_channel`] queue and is consumed by exactly *one*
//! worker thread, so events of one session are always processed in
//! submission order. With fewer workers than shards, worker `w` owns
//! shards `w, w + workers, w + 2·workers, …` and polls them round-robin.
//!
//! Flow control: [`Engine::submit`] blocks when the target shard's queue
//! is full (producer back-pressure) rather than buffering unboundedly.
//! Shutdown: [`Engine::finish`] drops the senders; each worker drains its
//! queues until they disconnect, then reports its shard states.

use crate::event::Event;
use crate::metrics::EngineMetrics;
use crate::session::{Session, SessionStatus};
use crate::spec::CompiledSpec;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of shards (session partitions). At least 1.
    pub shards: usize,
    /// Number of worker threads. Clamped to `shards` (extra workers would
    /// own no shard).
    pub workers: usize,
    /// Bounded capacity of each shard queue; a full queue blocks
    /// [`Engine::submit`].
    pub queue_capacity: usize,
    /// Frontier bound for per-session view observers.
    pub max_view_frontier: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 8,
            workers: 4,
            queue_capacity: 1024,
            max_view_frontier: 256,
        }
    }
}

/// The final state of one session, reported at shutdown.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Session identifier.
    pub session: String,
    /// Final lifecycle status. `Active` means the stream ended without a
    /// terminal event for this session.
    pub status: SessionStatus,
    /// Events consumed by the session.
    pub events: u64,
    /// Whether the session's view observer ever degraded to three-valued
    /// answers (frontier overflow).
    pub view_degraded: bool,
}

/// Everything the engine knows after a clean shutdown.
#[derive(Debug)]
pub struct EngineReport {
    /// All sessions ever seen, sorted by session id.
    pub outcomes: Vec<SessionOutcome>,
    /// The shared metrics (final values).
    pub metrics: Arc<EngineMetrics>,
}

impl EngineReport {
    /// The outcomes that ended in violation, sorted by session id.
    pub fn violations(&self) -> impl Iterator<Item = &SessionOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, SessionStatus::Violated(_)))
    }
}

/// An envelope carrying the submit timestamp for queue-latency accounting.
struct Envelope {
    event: Event,
    submitted: Instant,
}

/// A running engine. Created with [`Engine::start`], fed with
/// [`Engine::submit`], torn down with [`Engine::finish`].
pub struct Engine {
    senders: Vec<SyncSender<Envelope>>,
    workers: Vec<JoinHandle<Vec<SessionOutcome>>>,
    metrics: Arc<EngineMetrics>,
    shards: usize,
}

impl Engine {
    /// Spawns the worker pool against a compiled spec.
    pub fn start(spec: Arc<CompiledSpec>, config: EngineConfig) -> Engine {
        let shards = config.shards.max(1);
        let workers = config.workers.max(1).min(shards);
        let metrics = Arc::new(EngineMetrics::default());
        let mut senders = Vec::with_capacity(shards);
        let mut receivers: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(config.queue_capacity.max(1));
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            // Worker w owns shards w, w+workers, w+2·workers, …
            let owned: Vec<Receiver<Envelope>> = (w..shards)
                .step_by(workers)
                .map(|i| receivers[i].take().expect("each shard owned once"))
                .collect();
            let spec = Arc::clone(&spec);
            let metrics = Arc::clone(&metrics);
            let max_frontier = config.max_view_frontier;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rega-stream-{w}"))
                    .spawn(move || worker_loop(spec, metrics, owned, max_frontier))
                    .expect("spawn worker thread"),
            );
        }
        Engine {
            senders,
            workers: handles,
            metrics,
            shards,
        }
    }

    /// The shard an event for `session` is routed to.
    pub fn shard_of(&self, session: &str) -> usize {
        let mut h = DefaultHasher::new();
        session.hash(&mut h);
        (h.finish() % self.shards as u64) as usize
    }

    /// Submits one event, blocking while the target shard's queue is full.
    pub fn submit(&self, event: Event) {
        let shard = self.shard_of(event.session());
        self.metrics
            .events_submitted
            .fetch_add(1, Ordering::Relaxed);
        self.senders[shard]
            .send(Envelope {
                event,
                submitted: Instant::now(),
            })
            .expect("worker thread exited while the engine was still accepting events");
    }

    /// The live metrics handle.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// Signals end-of-stream, waits for the workers to drain every queue,
    /// and returns the combined report.
    pub fn finish(self) -> EngineReport {
        drop(self.senders);
        let mut outcomes: Vec<SessionOutcome> = Vec::new();
        for handle in self.workers {
            let shard_outcomes = handle.join().expect("worker thread panicked");
            outcomes.extend(shard_outcomes);
        }
        outcomes.sort_by(|a, b| a.session.cmp(&b.session));
        EngineReport {
            outcomes,
            metrics: self.metrics,
        }
    }
}

/// A shard's resident state: live sessions plus the outcomes of already
/// evicted ones (the latter also serve as tombstones so late events for a
/// closed session are counted, not resurrected).
#[derive(Default)]
struct ShardState {
    live: HashMap<String, Session>,
    closed: HashMap<String, SessionOutcome>,
}

fn worker_loop(
    spec: Arc<CompiledSpec>,
    metrics: Arc<EngineMetrics>,
    receivers: Vec<Receiver<Envelope>>,
    max_frontier: usize,
) -> Vec<SessionOutcome> {
    let mut shards: Vec<ShardState> = receivers.iter().map(|_| ShardState::default()).collect();
    // Single-shard workers can block on recv (no other queue to starve).
    if let [rx] = &receivers[..] {
        while let Ok(env) = rx.recv() {
            metrics.queue_latency.record(env.submitted.elapsed());
            let started = Instant::now();
            process(&spec, &metrics, &mut shards[0], env.event, max_frontier);
            metrics.process_latency.record(started.elapsed());
            metrics.events_processed.fetch_add(1, Ordering::Relaxed);
        }
        return report_shards(&metrics, shards);
    }
    let mut open: Vec<bool> = vec![true; receivers.len()];
    // Round-robin over owned shards; drain in small batches to stay fair.
    const BATCH: usize = 64;
    loop {
        let mut progressed = false;
        for (i, rx) in receivers.iter().enumerate() {
            if !open[i] {
                continue;
            }
            for _ in 0..BATCH {
                match rx.try_recv() {
                    Ok(env) => {
                        metrics.queue_latency.record(env.submitted.elapsed());
                        let started = Instant::now();
                        process(&spec, &metrics, &mut shards[i], env.event, max_frontier);
                        metrics.process_latency.record(started.elapsed());
                        metrics.events_processed.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open[i] = false;
                        break;
                    }
                }
            }
        }
        if open.iter().all(|o| !o) {
            break;
        }
        if !progressed {
            // All owned queues momentarily empty: yield briefly instead of
            // spinning. (Blocking recv would stall the other owned shards.)
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    report_shards(&metrics, shards)
}

/// End of stream: report evicted sessions plus whatever is still live.
fn report_shards(metrics: &EngineMetrics, shards: Vec<ShardState>) -> Vec<SessionOutcome> {
    let mut outcomes = Vec::new();
    for shard in shards {
        outcomes.extend(shard.closed.into_values());
        for (name, session) in shard.live {
            metrics.session_out();
            outcomes.push(SessionOutcome {
                session: name,
                status: session.status().clone(),
                events: session.events,
                view_degraded: session.view_degraded,
            });
        }
    }
    outcomes
}

fn process(
    spec: &CompiledSpec,
    metrics: &EngineMetrics,
    shard: &mut ShardState,
    event: Event,
    max_frontier: usize,
) {
    let name = event.session();
    if shard.closed.contains_key(name) {
        metrics
            .events_after_eviction
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    match event {
        Event::Step {
            session: name,
            state,
            regs,
        } => {
            let session = shard.live.entry(name.clone()).or_insert_with(|| {
                metrics.sessions_started.fetch_add(1, Ordering::Relaxed);
                metrics.session_in();
                Session::new(spec, max_frontier)
            });
            match session.step(spec, &state, &regs) {
                SessionStatus::Active => {
                    metrics.events_ok.fetch_add(1, Ordering::Relaxed);
                }
                SessionStatus::Violated(_) => {
                    metrics.sessions_violated.fetch_add(1, Ordering::Relaxed);
                    evict(metrics, shard, &name);
                }
                SessionStatus::Ended => unreachable!("step never yields Ended"),
            }
        }
        Event::End { session: name } => {
            match shard.live.get_mut(&name) {
                Some(session) => {
                    if session.end() == &SessionStatus::Ended {
                        metrics.sessions_ended.fetch_add(1, Ordering::Relaxed);
                    }
                    evict(metrics, shard, &name);
                }
                None => {
                    // An end for a session that never stepped: record it as
                    // an ended, empty session.
                    metrics.sessions_started.fetch_add(1, Ordering::Relaxed);
                    metrics.sessions_ended.fetch_add(1, Ordering::Relaxed);
                    metrics.sessions_evicted.fetch_add(1, Ordering::Relaxed);
                    shard.closed.insert(
                        name.clone(),
                        SessionOutcome {
                            session: name,
                            status: SessionStatus::Ended,
                            events: 1,
                            view_degraded: false,
                        },
                    );
                }
            }
        }
    }
}

/// Moves a session from the live map to the closed (outcome) map, dropping
/// its monitor and observer state.
fn evict(metrics: &EngineMetrics, shard: &mut ShardState, name: &str) {
    let Some(session) = shard.live.remove(name) else {
        return;
    };
    if session.view_degraded {
        metrics.view_degraded.fetch_add(1, Ordering::Relaxed);
    }
    metrics.session_out();
    shard.closed.insert(
        name.to_string(),
        SessionOutcome {
            session: name.to_string(),
            status: session.status().clone(),
            events: session.events,
            view_degraded: session.view_degraded,
        },
    );
}
