//! The engine facade and the shard-processing core shared by every
//! scheduler.
//!
//! Topology (threaded scheduler): sessions are hashed onto `shards` shards;
//! each shard has one bounded queue consumed by exactly *one* worker
//! thread, so events of one session are always processed in submission
//! order. With fewer workers than shards, worker `w` owns shards
//! `w, w + workers, w + 2·workers, …` and polls them round-robin.
//!
//! Execution is abstracted behind the [`Scheduler`](crate::scheduler::Scheduler)
//! trait: [`Engine::start`] runs the production worker pool
//! ([`ThreadedScheduler`](crate::scheduler::ThreadedScheduler)),
//! [`Engine::start_sim`] runs the single-threaded deterministic
//! [`SimScheduler`](crate::sim::SimScheduler) whose interleavings, clock,
//! and injected faults all derive from one seed.
//!
//! Flow control: [`Engine::submit`] back-pressures when the target shard's
//! queue is full rather than buffering unboundedly, and — with
//! [`EngineConfig::submit_timeout`] set — gives up with a typed
//! [`SubmitError`] instead of blocking forever.
//!
//! Failure semantics (see the README for the full contract):
//!
//! * Transport-faulty events (wrong register arity, unknown control state,
//!   traffic for an evicted session) are **quarantined** when
//!   [`EngineConfig::quarantine_cap`] is non-zero: counted, dropped, and
//!   the touched session's state left exactly as it was. A session
//!   accumulating more than `quarantine_cap` such events is evicted as
//!   [`ViolationKind::QuarantineOverflow`]. With a zero cap (the default)
//!   the engine is strict: a transport-faulty step event violates its
//!   session, exactly as in the pre-fault-injection engine.
//! * Worker panics are caught; the worker respawns in place with its shard
//!   state intact and retries the in-flight event once. A second panic on
//!   the same event quarantines it and evicts its session as
//!   [`ViolationKind::WorkerPanic`].

use crate::event::Event;
use crate::fault::FaultPlan;
use crate::metrics::EngineMetrics;
use crate::scheduler::{Scheduler, ThreadedScheduler};
use crate::session::{Session, SessionStatus, ViolationKind};
use crate::sim::SimScheduler;
use crate::snapshot::SnapshotError;
use crate::spec::CompiledSpec;
use serde_json::Value as Json;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Engine sizing and failure-semantics knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of shards (session partitions). At least 1.
    pub shards: usize,
    /// Number of worker threads. Clamped to `shards` (extra workers would
    /// own no shard).
    pub workers: usize,
    /// Bounded capacity of each shard queue; a full queue back-pressures
    /// [`Engine::submit`].
    pub queue_capacity: usize,
    /// Frontier bound for per-session view observers.
    pub max_view_frontier: usize,
    /// Per-session budget of quarantined (transport-faulty) events.
    /// `0` = strict mode: a transport-faulty step event violates its
    /// session. `> 0` = lenient mode: such events are counted and dropped
    /// without touching session state, and a session exceeding the budget
    /// is evicted as [`ViolationKind::QuarantineOverflow`].
    pub quarantine_cap: u64,
    /// How long [`Engine::submit`] may wait on a full shard queue before
    /// returning [`SubmitError::QueueFull`]. `None` waits indefinitely
    /// (while workers are alive).
    pub submit_timeout: Option<Duration>,
    /// Seeded fault injection; [`FaultPlan::none`] (the default) injects
    /// nothing.
    pub fault: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 8,
            workers: 4,
            queue_capacity: 1024,
            max_view_frontier: 256,
            quarantine_cap: 0,
            submit_timeout: None,
            fault: FaultPlan::none(),
        }
    }
}

/// Why [`Engine::submit`] rejected an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The step event's register tuple does not match the specification
    /// (validated at submit time, before the event reaches any queue).
    Arity {
        /// Arity the event carried.
        got: usize,
        /// The specification's register count.
        want: usize,
    },
    /// The target shard's queue stayed full past
    /// [`EngineConfig::submit_timeout`].
    QueueFull {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// Every worker thread has exited (e.g. the respawn budget was
    /// exhausted); the engine can no longer make progress. Without this
    /// error a submit against dead workers would block forever.
    WorkersDead,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Arity { got, want } => {
                write!(f, "event arity {got} does not match specification ({want})")
            }
            SubmitError::QueueFull { shard } => {
                write!(f, "shard {shard} queue stayed full past the submit timeout")
            }
            SubmitError::WorkersDead => write!(f, "all workers have exited"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The final state of one session, reported at shutdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionOutcome {
    /// Session identifier.
    pub session: String,
    /// Final lifecycle status. `Active` means the stream ended without a
    /// terminal event for this session.
    pub status: SessionStatus,
    /// Events consumed by the session.
    pub events: u64,
    /// Whether the session's view observer ever degraded to three-valued
    /// answers (frontier overflow).
    pub view_degraded: bool,
    /// Transport-faulty events quarantined against this session.
    pub quarantined: u64,
}

/// Everything the engine knows after a clean shutdown.
#[derive(Debug)]
pub struct EngineReport {
    /// All sessions ever seen, sorted by session id.
    pub outcomes: Vec<SessionOutcome>,
    /// The shared metrics (final values).
    pub metrics: Arc<EngineMetrics>,
}

impl EngineReport {
    /// The outcomes that ended in violation, sorted by session id.
    pub fn violations(&self) -> impl Iterator<Item = &SessionOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, SessionStatus::Violated(_)))
    }
}

/// Builds the sorted final report from per-shard outcomes.
pub(crate) fn make_report(
    mut outcomes: Vec<SessionOutcome>,
    metrics: Arc<EngineMetrics>,
) -> EngineReport {
    outcomes.sort_by(|a, b| a.session.cmp(&b.session));
    EngineReport { outcomes, metrics }
}

/// The shard an event for `session` is routed to.
///
/// Routing must be *stable*: checkpoints record sessions by name and
/// [`Engine::restore_sim`] re-routes them by hash, and replay tooling
/// compares shard assignments across processes. `DefaultHasher` is
/// explicitly not stable across Rust releases (or even processes, once
/// seeded hashing applies), so the engine pins FNV-1a, whose assignment is
/// part of the checkpoint format and covered by a regression test.
pub(crate) fn shard_index(session: &str, shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in session.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// A running engine: a facade over one [`Scheduler`]. Created with
/// [`Engine::start`] (threaded) or [`Engine::start_sim`] (deterministic
/// simulation), fed with [`Engine::submit`], torn down with
/// [`Engine::finish`].
pub struct Engine {
    inner: Box<dyn Scheduler>,
}

impl Engine {
    /// Spawns the production worker pool against a compiled spec.
    pub fn start(spec: Arc<CompiledSpec>, config: EngineConfig) -> Engine {
        Engine {
            inner: Box::new(ThreadedScheduler::start(spec, config)),
        }
    }

    /// Starts the single-threaded deterministic simulation: shard-queue
    /// interleavings, the clock, and every injected fault derive from
    /// `seed` (xor-ed into the fault plan's own seed), so the same seed
    /// and config replay bit-for-bit.
    pub fn start_sim(spec: Arc<CompiledSpec>, config: EngineConfig, seed: u64) -> Engine {
        Engine {
            inner: Box::new(SimScheduler::start(spec, config, seed)),
        }
    }

    /// Resumes a simulation from a [`checkpoint`](Engine::checkpoint)
    /// taken by an earlier (possibly crashed) engine. Sessions are
    /// re-routed by hash, so the shard count may differ from the
    /// checkpointing engine's.
    pub fn restore_sim(
        spec: Arc<CompiledSpec>,
        config: EngineConfig,
        seed: u64,
        snapshot: &Json,
    ) -> Result<Engine, SnapshotError> {
        Ok(Engine {
            inner: Box::new(SimScheduler::restore(spec, config, seed, snapshot)?),
        })
    }

    /// Submits one event. Blocks (bounded by
    /// [`EngineConfig::submit_timeout`]) while the target shard's queue is
    /// full; rejects arity-invalid step events and submission against dead
    /// workers with a typed error instead of panicking or hanging.
    pub fn submit(&mut self, event: Event) -> Result<(), SubmitError> {
        self.inner.submit(event)
    }

    /// The live metrics handle.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        self.inner.metrics()
    }

    /// A cloneable concurrent-ingest handle (threaded scheduler only;
    /// `None` on the deterministic simulation, which is single-threaded by
    /// design). Any number of clones may submit from different threads;
    /// all clones must be dropped before [`Engine::finish`] can drain —
    /// a surviving handle keeps the shard queues connected.
    pub fn handle(&self) -> Option<crate::scheduler::EngineHandle> {
        self.inner.handle()
    }

    /// Drains in-flight events and serializes the complete monitoring
    /// state as JSON (simulation only — returns `None` on the threaded
    /// scheduler). The engine remains usable afterwards.
    pub fn checkpoint(&mut self) -> Option<Json> {
        self.inner.checkpoint()
    }

    /// Signals end-of-stream, drains every queue, and returns the combined
    /// report.
    pub fn finish(self) -> EngineReport {
        self.inner.finish()
    }
}

/// A shard's resident state: live sessions plus the outcomes of already
/// evicted ones (the latter also serve as tombstones so late events for a
/// closed session are counted, not resurrected).
#[derive(Default)]
pub(crate) struct ShardState {
    pub(crate) live: HashMap<String, Session>,
    pub(crate) closed: HashMap<String, SessionOutcome>,
}

/// End of stream: report evicted sessions plus whatever is still live.
pub(crate) fn report_shards(
    metrics: &EngineMetrics,
    shards: Vec<ShardState>,
) -> Vec<SessionOutcome> {
    let mut outcomes = Vec::new();
    for shard in shards {
        outcomes.extend(shard.closed.into_values());
        for (name, session) in shard.live {
            metrics.session_out();
            outcomes.push(SessionOutcome {
                session: name,
                status: session.status().clone(),
                events: session.events,
                view_degraded: session.view_degraded,
                quarantined: session.quarantined,
            });
        }
    }
    outcomes
}

/// Applies one event to its shard. `quarantine_cap > 0` selects lenient
/// mode: transport-faulty events are quarantined instead of violating.
pub(crate) fn process(
    spec: &CompiledSpec,
    metrics: &EngineMetrics,
    shard: &mut ShardState,
    event: Event,
    max_frontier: usize,
    quarantine_cap: u64,
) {
    let lenient = quarantine_cap > 0;
    // Keep the snapshot-visible σ-type cache counters current (absolute
    // stores into relaxed atomics — two cheap writes per event).
    metrics.sync_type_cache(&spec.type_cache_stats());
    let name = event.session();
    if shard.closed.contains_key(name) {
        metrics.events_after_eviction.inc();
        if lenient {
            // Post-eviction traffic (e.g. a duplicated terminal event) is
            // a transport fault too; it is benign in both modes, but in
            // lenient mode it also shows up in the quarantine counter.
            metrics.events_quarantined.inc();
        }
        return;
    }
    match event {
        Event::Step {
            session: name,
            state,
            regs,
        } => {
            if lenient && (regs.len() != spec.registers() || spec.state_id(&state).is_none()) {
                metrics.events_quarantined.inc();
                // Corrupt events never *create* a session; they only count
                // against an existing one's budget.
                if let Some(session) = shard.live.get_mut(&name) {
                    session.quarantined += 1;
                    if session.quarantined > quarantine_cap {
                        session.force_violation(ViolationKind::QuarantineOverflow);
                        metrics.sessions_violated.inc();
                        evict(metrics, shard, &name);
                    }
                }
                return;
            }
            let session = shard.live.entry(name.clone()).or_insert_with(|| {
                metrics.sessions_started.inc();
                metrics.session_in();
                Session::new(spec, max_frontier)
            });
            match session.step(spec, &state, &regs) {
                SessionStatus::Active => {
                    metrics.events_ok.inc();
                }
                SessionStatus::Violated(_) => {
                    metrics.sessions_violated.inc();
                    evict(metrics, shard, &name);
                }
                SessionStatus::Ended => unreachable!("step never yields Ended"),
            }
        }
        Event::End { session: name } => {
            match shard.live.get_mut(&name) {
                Some(session) => {
                    if session.end() == &SessionStatus::Ended {
                        metrics.sessions_ended.inc();
                    }
                    evict(metrics, shard, &name);
                }
                None => {
                    // An end for a session that never stepped: record it as
                    // an ended, empty session.
                    metrics.sessions_started.inc();
                    metrics.sessions_ended.inc();
                    metrics.sessions_evicted.inc();
                    shard.closed.insert(
                        name.clone(),
                        SessionOutcome {
                            session: name,
                            status: SessionStatus::Ended,
                            events: 1,
                            view_degraded: false,
                            quarantined: 0,
                        },
                    );
                }
            }
        }
    }
}

/// Moves a session from the live map to the closed (outcome) map, dropping
/// its monitor and observer state.
pub(crate) fn evict(metrics: &EngineMetrics, shard: &mut ShardState, name: &str) {
    let Some(session) = shard.live.remove(name) else {
        return;
    };
    if session.view_degraded {
        metrics.view_degraded.inc();
    }
    metrics.session_out();
    shard.closed.insert(
        name.to_string(),
        SessionOutcome {
            session: name.to_string(),
            status: session.status().clone(),
            events: session.events,
            view_degraded: session.view_degraded,
            quarantined: session.quarantined,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::spec::parse_spec;
    use rega_data::{Database, Schema, Value};

    /// Shard routing is part of the checkpoint format: these assignments
    /// may only change together with a deliberate format bump. The
    /// expected values are FNV-1a of the session name mod the shard
    /// count, computed once and pinned.
    #[test]
    fn shard_routing_is_pinned() {
        // (session, shards, expected shard)
        let pinned: &[(&str, usize, usize)] = &[
            ("", 8, 5), // FNV offset basis % 8
            ("alice", 8, 7),
            ("bob", 8, 4),
            ("carol", 8, 2),
            ("session-0", 8, 2),
            ("session-1", 8, 5),
            ("session-2", 8, 4),
            ("alice", 3, 2),
            ("bob", 3, 0),
            ("carol", 3, 1),
            ("alice", 1, 0),
        ];
        for &(name, shards, want) in pinned {
            assert_eq!(
                shard_index(name, shards),
                want,
                "shard assignment for {name:?} over {shards} shards drifted"
            );
        }
        // Spot-check the reference implementation directly.
        let fnv = |s: &str| -> u64 {
            s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            })
        };
        for name in ["alice", "bob", "carol", "session-17", ""] {
            for shards in [1usize, 2, 3, 8, 16] {
                assert_eq!(
                    shard_index(name, shards),
                    (fnv(name) % shards as u64) as usize
                );
            }
        }
    }

    fn tiny_spec() -> CompiledSpec {
        let ext = parse_spec(
            "\
registers 1
state p init accept
trans p -> p : x1 = x1
",
        )
        .unwrap();
        CompiledSpec::compile(ext, Database::new(Schema::empty()), None).unwrap()
    }

    /// The quarantine budget boundary, exactly as documented: a session
    /// may accumulate *up to* `quarantine_cap` transport-faulty events and
    /// stay `Active`; the `cap + 1`-st evicts it as `QuarantineOverflow`.
    #[test]
    fn quarantine_budget_boundary_is_exact() {
        for cap in [1u64, 2, 5] {
            let spec = tiny_spec();
            let metrics = EngineMetrics::default();
            let mut shard = ShardState::default();
            // One valid step creates the session.
            let ok = Event::Step {
                session: "s".into(),
                state: "p".into(),
                regs: vec![Value(1)],
            };
            process(&spec, &metrics, &mut shard, ok.clone(), 16, cap);
            assert_eq!(shard.live["s"].status(), &SessionStatus::Active);
            // Exactly `cap` malformed events: counted, session survives.
            for i in 0..cap {
                let bad = Event::Step {
                    session: "s".into(),
                    state: "no-such-state".into(),
                    regs: vec![Value(2)],
                };
                process(&spec, &metrics, &mut shard, bad, 16, cap);
                assert_eq!(
                    shard.live["s"].status(),
                    &SessionStatus::Active,
                    "session evicted after {} malformed events with cap {cap}",
                    i + 1
                );
            }
            assert_eq!(shard.live["s"].quarantined, cap);
            // The cap + 1-st malformed event tips the budget.
            let bad = Event::Step {
                session: "s".into(),
                state: "p".into(),
                regs: vec![], // wrong arity
            };
            process(&spec, &metrics, &mut shard, bad, 16, cap);
            assert!(!shard.live.contains_key("s"), "session must be evicted");
            assert_eq!(
                shard.closed["s"].status,
                SessionStatus::Violated(ViolationKind::QuarantineOverflow)
            );
            assert_eq!(
                metrics.events_quarantined.get(),
                cap + 1,
                "every malformed event is counted, including the tipping one"
            );
        }
    }
}
