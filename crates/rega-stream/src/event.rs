//! The JSONL wire format of the event stream.
//!
//! One event per line:
//!
//! ```text
//! {"session": "paper-17", "state": "submitted", "regs": [17, 3, 17]}
//! {"session": "paper-17", "end": true}
//! ```
//!
//! A `state`/`regs` event advances the named session's run by one position;
//! an `end` event closes the session and evicts its monitoring state.

use rega_data::Value;
use std::fmt;

/// A parsed stream event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The session's run moved to `state` with register contents `regs`.
    Step {
        /// Session identifier (demultiplexing key).
        session: String,
        /// Name of the control state the run is now in.
        state: String,
        /// Register contents at this position.
        regs: Vec<Value>,
    },
    /// The session terminated; its state can be evicted.
    End {
        /// Session identifier.
        session: String,
    },
}

impl Event {
    /// The session this event belongs to.
    pub fn session(&self) -> &str {
        match self {
            Event::Step { session, .. } | Event::End { session } => session,
        }
    }
}

/// A malformed event line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventError {
    /// What was wrong with the line.
    pub message: String,
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad event: {}", self.message)
    }
}

impl std::error::Error for EventError {}

fn err(message: impl Into<String>) -> EventError {
    EventError {
        message: message.into(),
    }
}

/// Parses one JSONL line into an [`Event`].
pub fn parse_event(line: &str) -> Result<Event, EventError> {
    let value = serde_json::from_str(line).map_err(|e| err(e.to_string()))?;
    let obj = value
        .as_object()
        .ok_or_else(|| err("event must be a JSON object"))?;
    let session = obj
        .get("session")
        .and_then(|v| v.as_str())
        .ok_or_else(|| err("missing string field `session`"))?
        .to_string();
    if session.is_empty() {
        return Err(err("`session` must be non-empty"));
    }
    if let Some(end) = obj.get("end") {
        if end.as_bool() != Some(true) {
            return Err(err("`end` must be `true` when present"));
        }
        for key in obj.keys() {
            if key != "session" && key != "end" {
                return Err(err(format!("unexpected field `{key}` in end event")));
            }
        }
        return Ok(Event::End { session });
    }
    let state = obj
        .get("state")
        .and_then(|v| v.as_str())
        .ok_or_else(|| err("missing string field `state`"))?
        .to_string();
    let regs_json = obj
        .get("regs")
        .and_then(|v| v.as_array())
        .ok_or_else(|| err("missing array field `regs`"))?;
    let mut regs = Vec::with_capacity(regs_json.len());
    for v in regs_json {
        let n = v
            .as_u64()
            .ok_or_else(|| err("`regs` entries must be unsigned integers"))?;
        regs.push(Value(n));
    }
    for key in obj.keys() {
        if !matches!(key.as_str(), "session" | "state" | "regs") {
            return Err(err(format!("unexpected field `{key}` in step event")));
        }
    }
    Ok(Event::Step {
        session,
        state,
        regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_step_and_end() {
        let e = parse_event(r#"{"session": "s1", "state": "q", "regs": [1, 2]}"#).unwrap();
        assert_eq!(
            e,
            Event::Step {
                session: "s1".into(),
                state: "q".into(),
                regs: vec![Value(1), Value(2)],
            }
        );
        let e = parse_event(r#"{"session": "s1", "end": true}"#).unwrap();
        assert_eq!(
            e,
            Event::End {
                session: "s1".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            r#"{"state": "q", "regs": []}"#,
            r#"{"session": "", "state": "q", "regs": []}"#,
            r#"{"session": "s", "state": "q"}"#,
            r#"{"session": "s", "state": "q", "regs": [-1]}"#,
            r#"{"session": "s", "end": false}"#,
            r#"{"session": "s", "state": "q", "regs": [], "extra": 1}"#,
        ] {
            assert!(parse_event(bad).is_err(), "should reject: {bad}");
        }
    }
}
