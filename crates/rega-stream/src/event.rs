//! The JSONL wire format of the event stream.
//!
//! One event per line:
//!
//! ```text
//! {"session": "paper-17", "state": "submitted", "regs": [17, 3, 17]}
//! {"session": "paper-17", "end": true}
//! ```
//!
//! A `state`/`regs` event advances the named session's run by one position;
//! an `end` event closes the session and evicts its monitoring state.
//!
//! Parsing is strict and *total*: every malformed line yields a typed
//! [`EventError`], never a panic (the `stream_faults` suite fuzzes the
//! parser with byte mutations of valid lines to enforce this). When the
//! monitored specification is known, [`parse_event_checked`] additionally
//! validates the register arity at parse time, so an event with the wrong
//! tuple width is rejected at the edge instead of deep inside a worker.

use rega_data::Value;
use std::fmt;

/// A parsed stream event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The session's run moved to `state` with register contents `regs`.
    Step {
        /// Session identifier (demultiplexing key).
        session: String,
        /// Name of the control state the run is now in.
        state: String,
        /// Register contents at this position.
        regs: Vec<Value>,
    },
    /// The session terminated; its state can be evicted.
    End {
        /// Session identifier.
        session: String,
    },
}

impl Event {
    /// The session this event belongs to.
    pub fn session(&self) -> &str {
        match self {
            Event::Step { session, .. } | Event::End { session } => session,
        }
    }
}

/// Why an event line was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventError {
    /// The line is not valid JSON.
    Json(String),
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// A required field is missing or has the wrong JSON type.
    BadField {
        /// Field name.
        field: &'static str,
        /// What was expected there.
        expected: &'static str,
    },
    /// The `session` field is present but empty.
    EmptySession,
    /// A field not part of the wire format is present.
    UnexpectedField(String),
    /// `end` is present but not `true`.
    BadEnd,
    /// The register tuple does not match the specification's register
    /// count (only from [`parse_event_checked`] / submit-time validation).
    Arity {
        /// Arity the event carried.
        got: usize,
        /// The specification's register count.
        want: usize,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::Json(e) => write!(f, "bad event: {e}"),
            EventError::NotAnObject => write!(f, "bad event: event must be a JSON object"),
            EventError::BadField { field, expected } => {
                write!(f, "bad event: field `{field}` must be {expected}")
            }
            EventError::EmptySession => write!(f, "bad event: `session` must be non-empty"),
            EventError::UnexpectedField(k) => write!(f, "bad event: unexpected field `{k}`"),
            EventError::BadEnd => write!(f, "bad event: `end` must be `true` when present"),
            EventError::Arity { got, want } => write!(
                f,
                "bad event: register tuple has arity {got}, the specification has {want}"
            ),
        }
    }
}

impl std::error::Error for EventError {}

/// Parses one JSONL line into an [`Event`].
pub fn parse_event(line: &str) -> Result<Event, EventError> {
    let value = serde_json::from_str(line).map_err(|e| EventError::Json(e.to_string()))?;
    let obj = value.as_object().ok_or(EventError::NotAnObject)?;
    let session = obj
        .get("session")
        .and_then(|v| v.as_str())
        .ok_or(EventError::BadField {
            field: "session",
            expected: "a string",
        })?
        .to_string();
    if session.is_empty() {
        return Err(EventError::EmptySession);
    }
    if let Some(end) = obj.get("end") {
        if end.as_bool() != Some(true) {
            return Err(EventError::BadEnd);
        }
        for key in obj.keys() {
            if key != "session" && key != "end" {
                return Err(EventError::UnexpectedField(key.clone()));
            }
        }
        return Ok(Event::End { session });
    }
    let state = obj
        .get("state")
        .and_then(|v| v.as_str())
        .ok_or(EventError::BadField {
            field: "state",
            expected: "a string",
        })?
        .to_string();
    let regs_json = obj
        .get("regs")
        .and_then(|v| v.as_array())
        .ok_or(EventError::BadField {
            field: "regs",
            expected: "an array",
        })?;
    let mut regs = Vec::with_capacity(regs_json.len());
    for v in regs_json {
        let n = v.as_u64().ok_or(EventError::BadField {
            field: "regs",
            expected: "an array of unsigned integers",
        })?;
        regs.push(Value(n));
    }
    for key in obj.keys() {
        if !matches!(key.as_str(), "session" | "state" | "regs") {
            return Err(EventError::UnexpectedField(key.clone()));
        }
    }
    Ok(Event::Step {
        session,
        state,
        regs,
    })
}

/// Parses one JSONL line and validates the register arity of step events
/// against the specification's register count, so malformed tuples are
/// rejected at the edge with [`EventError::Arity`].
pub fn parse_event_checked(line: &str, registers: usize) -> Result<Event, EventError> {
    let event = parse_event(line)?;
    if let Event::Step { regs, .. } = &event {
        if regs.len() != registers {
            return Err(EventError::Arity {
                got: regs.len(),
                want: registers,
            });
        }
    }
    Ok(event)
}

/// An [`EventError`] annotated with where in the input stream the
/// offending line sat, so quarantine counters and server error responses
/// can point operators at the exact malformed input instead of just
/// saying "an event was bad somewhere".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocatedEventError {
    /// 1-based line number of the malformed line in its stream.
    pub line: u64,
    /// Byte offset of the start of the malformed line from the start of
    /// the stream.
    pub byte_offset: u64,
    /// The underlying parse error.
    pub error: EventError,
}

impl fmt::Display for LocatedEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} (byte {}): {}",
            self.line, self.byte_offset, self.error
        )
    }
}

impl std::error::Error for LocatedEventError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// [`parse_event_checked`] with position bookkeeping: on failure the error
/// carries the 1-based line number and the byte offset of the line start,
/// as supplied by the caller's reader loop.
pub fn parse_event_located(
    line: &str,
    registers: usize,
    line_no: u64,
    byte_offset: u64,
) -> Result<Event, LocatedEventError> {
    parse_event_checked(line, registers).map_err(|error| LocatedEventError {
        line: line_no,
        byte_offset,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_step_and_end() {
        let e = parse_event(r#"{"session": "s1", "state": "q", "regs": [1, 2]}"#).unwrap();
        assert_eq!(
            e,
            Event::Step {
                session: "s1".into(),
                state: "q".into(),
                regs: vec![Value(1), Value(2)],
            }
        );
        let e = parse_event(r#"{"session": "s1", "end": true}"#).unwrap();
        assert_eq!(
            e,
            Event::End {
                session: "s1".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_lines_with_typed_errors() {
        for (bad, want) in [
            ("not json", None),
            ("[1]", Some(EventError::NotAnObject)),
            (
                r#"{"state": "q", "regs": []}"#,
                Some(EventError::BadField {
                    field: "session",
                    expected: "a string",
                }),
            ),
            (
                r#"{"session": "", "state": "q", "regs": []}"#,
                Some(EventError::EmptySession),
            ),
            (
                r#"{"session": "s", "state": "q"}"#,
                Some(EventError::BadField {
                    field: "regs",
                    expected: "an array",
                }),
            ),
            (
                r#"{"session": "s", "state": "q", "regs": [-1]}"#,
                Some(EventError::BadField {
                    field: "regs",
                    expected: "an array of unsigned integers",
                }),
            ),
            (
                r#"{"session": "s", "end": false}"#,
                Some(EventError::BadEnd),
            ),
            (
                r#"{"session": "s", "state": "q", "regs": [], "extra": 1}"#,
                Some(EventError::UnexpectedField("extra".into())),
            ),
        ] {
            let got = parse_event(bad);
            match want {
                None => assert!(got.is_err(), "should reject: {bad}"),
                Some(want) => assert_eq!(got, Err(want), "wrong error for: {bad}"),
            }
        }
    }

    #[test]
    fn checked_parse_validates_arity_at_the_edge() {
        let line = r#"{"session": "s", "state": "q", "regs": [1, 2, 3]}"#;
        assert!(parse_event_checked(line, 3).is_ok());
        assert_eq!(
            parse_event_checked(line, 2),
            Err(EventError::Arity { got: 3, want: 2 })
        );
        // `End` events have no tuple and always pass the arity check.
        assert!(parse_event_checked(r#"{"session": "s", "end": true}"#, 2).is_ok());
    }

    #[test]
    fn located_parse_carries_the_position() {
        let line = r#"{"session": "s", "state": "q", "regs": [1]}"#;
        assert!(parse_event_located(line, 1, 3, 120).is_ok());
        let err = parse_event_located(line, 2, 3, 120).unwrap_err();
        assert_eq!(
            err,
            LocatedEventError {
                line: 3,
                byte_offset: 120,
                error: EventError::Arity { got: 1, want: 2 },
            }
        );
        assert_eq!(
            err.to_string(),
            "line 3 (byte 120): bad event: register tuple has arity 1, the specification has 2"
        );
    }
}
