//! Execution strategies behind the [`Engine`](crate::engine::Engine)
//! facade.
//!
//! A [`Scheduler`] decides *when and on which thread* events are applied
//! to their shards; the shard-processing core itself
//! ([`process`](crate::engine::process)) is shared, so the production
//! [`ThreadedScheduler`] and the deterministic
//! [`SimScheduler`](crate::sim::SimScheduler) agree on semantics by
//! construction — the property the `stream_faults` differential suite
//! leans on.
//!
//! The threaded scheduler's failure handling: each worker runs its shard
//! loop under [`catch_unwind`](std::panic::catch_unwind) with its shard
//! state held *outside* the unwind boundary, so a panic (injected or
//! genuine) costs the in-flight event at most — the worker increments
//! `worker_panics`, re-enters its loop with all session state intact, and
//! retries the event once. A second panic on the same event poisons it:
//! the event is quarantined and its session evicted as
//! [`ViolationKind::WorkerPanic`](crate::session::ViolationKind::WorkerPanic).
//! When a worker exhausts its respawn budget it exits; once every worker
//! has exited, [`Scheduler::submit`] fails fast with
//! [`SubmitError::WorkersDead`] instead of blocking forever.

use crate::clock::{Clock, SystemClock};
use crate::engine::{
    evict, make_report, process, report_shards, shard_index, EngineConfig, EngineReport,
    SessionOutcome, ShardState, SubmitError,
};
use crate::event::Event;
use crate::fault::FaultInjector;
use crate::metrics::EngineMetrics;
use crate::session::ViolationKind;
use crate::spec::CompiledSpec;
use serde_json::Value as Json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// An event execution strategy. All schedulers share the shard-processing
/// core, so they differ only in interleaving, timing, and fault handling.
pub trait Scheduler: Send {
    /// Submits one event (see [`Engine::submit`](crate::engine::Engine::submit)).
    fn submit(&mut self, event: Event) -> Result<(), SubmitError>;

    /// The live metrics handle.
    fn metrics(&self) -> &Arc<EngineMetrics>;

    /// Drains in-flight events and serializes the monitoring state
    /// (deterministic schedulers only).
    fn checkpoint(&mut self) -> Option<Json>;

    /// A cloneable concurrent-ingest handle, if this scheduler supports
    /// submission from multiple threads (the threaded scheduler does; the
    /// deterministic simulation, whose whole point is a single-threaded
    /// interleaving, does not).
    fn handle(&self) -> Option<EngineHandle> {
        None
    }

    /// Signals end-of-stream, drains every queue, and reports.
    fn finish(self: Box<Self>) -> EngineReport;
}

/// The routing core shared by the scheduler's own submit path and every
/// cloned [`EngineHandle`]: arity validation at the edge plus shard
/// routing with bounded back-pressure. Cloning shares the same shard
/// queues, metrics, and liveness view; `SyncSender` is `Send + Sync`, so
/// clones may submit concurrently from any number of threads while
/// per-session ordering is still guaranteed *per submitting thread* (one
/// session fed by one producer keeps its order; interleaving across
/// producers is the callers' business, exactly as with any socket).
#[derive(Clone)]
pub(crate) struct Router {
    senders: Vec<SyncSender<Envelope>>,
    metrics: Arc<EngineMetrics>,
    clock: Arc<SystemClock>,
    live_workers: Arc<AtomicUsize>,
    registers: usize,
    shards: usize,
    submit_timeout: Option<Duration>,
}

impl Router {
    /// Rejects arity-invalid step events before they reach any queue.
    fn check_arity(&self, event: &Event) -> Result<(), SubmitError> {
        if let Event::Step { regs, .. } = event {
            if regs.len() != self.registers {
                self.metrics.submit_errors.inc();
                return Err(SubmitError::Arity {
                    got: regs.len(),
                    want: self.registers,
                });
            }
        }
        Ok(())
    }

    /// Counts and routes one already-validated event.
    fn submit_unchecked(&self, event: Event) -> Result<(), SubmitError> {
        self.metrics.events_submitted.inc();
        self.route(Envelope {
            event,
            submitted_ns: self.clock.now_ns(),
            fault_immune: false,
        })
    }

    /// Routes one envelope to its shard queue, back-pressuring on a full
    /// queue up to the submit timeout.
    fn route(&self, mut env: Envelope) -> Result<(), SubmitError> {
        let shard = shard_index(env.event.session(), self.shards);
        let deadline_ns = self.submit_timeout.map(|t| {
            self.clock
                .now_ns()
                .saturating_add(t.as_nanos().min(u128::from(u64::MAX)) as u64)
        });
        loop {
            match self.senders[shard].try_send(env) {
                Ok(()) => {
                    if let Some(depth) = self.metrics.queue_depth.get(shard) {
                        depth.inc();
                    }
                    return Ok(());
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.metrics.submit_errors.inc();
                    return Err(SubmitError::WorkersDead);
                }
                Err(TrySendError::Full(back)) => {
                    env = back;
                    if self.live_workers.load(Ordering::Acquire) == 0 {
                        self.metrics.submit_errors.inc();
                        return Err(SubmitError::WorkersDead);
                    }
                    if let Some(deadline) = deadline_ns {
                        if self.clock.now_ns() >= deadline {
                            self.metrics.submit_errors.inc();
                            return Err(SubmitError::QueueFull { shard });
                        }
                    }
                    self.clock.stall(10_000); // 10 µs between retries
                }
            }
        }
    }
}

/// A cloneable ingest handle onto a running threaded engine.
///
/// Obtained from [`Engine::handle`](crate::engine::Engine::handle); any
/// number of clones may [`submit`](EngineHandle::submit) concurrently from
/// different threads (a network server's connection handlers, most
/// prominently) while the engine itself stays owned by whoever will
/// eventually drain it with `finish`. Handles share the engine's arity
/// validation, back-pressure, and metrics; they bypass producer-side fault
/// injection, which remains a test feature of the owning scheduler's
/// submit path.
///
/// A handle does not keep the engine alive: after `finish` drops the shard
/// queues, submissions fail with [`SubmitError::WorkersDead`].
#[derive(Clone)]
pub struct EngineHandle {
    router: Router,
}

impl EngineHandle {
    /// Submits one event, exactly as [`Engine::submit`](crate::engine::Engine::submit)
    /// would: arity-invalid step events are rejected at the edge, a full
    /// shard queue back-pressures up to the submit timeout, and dead
    /// workers fail fast.
    pub fn submit(&self, event: Event) -> Result<(), SubmitError> {
        self.router.check_arity(&event)?;
        self.router.submit_unchecked(event)
    }

    /// The engine's live metrics.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.router.metrics
    }

    /// The register arity every step event must carry.
    pub fn registers(&self) -> usize {
        self.router.registers
    }
}

/// An envelope carrying the submit timestamp for queue-latency accounting
/// and the retry marker for panic recovery.
pub(crate) struct Envelope {
    pub(crate) event: Event,
    pub(crate) submitted_ns: u64,
    /// Set when the event already survived one worker panic: no further
    /// faults are injected against it, and a second (genuine) panic
    /// poisons it instead of retrying again.
    pub(crate) fault_immune: bool,
}

/// Payload type of injected panics, so the unwind skips the default panic
/// hook's backtrace noise (`resume_unwind` does not invoke the hook).
struct InjectedPanic;

/// The production scheduler: a sharded worker pool on OS threads.
pub struct ThreadedScheduler {
    router: Router,
    workers: Vec<JoinHandle<Vec<SessionOutcome>>>,
    producer_faults: FaultInjector,
}

impl ThreadedScheduler {
    /// Spawns the worker pool against a compiled spec.
    pub fn start(spec: Arc<CompiledSpec>, config: EngineConfig) -> ThreadedScheduler {
        let shards = config.shards.max(1);
        let workers = config.workers.max(1).min(shards);
        let metrics = Arc::new(EngineMetrics::with_shards(shards));
        let clock = Arc::new(SystemClock::new());
        let live_workers = Arc::new(AtomicUsize::new(workers));
        let mut senders = Vec::with_capacity(shards);
        let mut receivers: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(config.queue_capacity.max(1));
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            // Worker w owns shards w, w+workers, w+2·workers, …
            let owned_ids: Vec<usize> = (w..shards).step_by(workers).collect();
            let owned: Vec<Receiver<Envelope>> = owned_ids
                .iter()
                .map(|&i| receivers[i].take().expect("each shard owned once"))
                .collect();
            let spec = Arc::clone(&spec);
            let metrics = Arc::clone(&metrics);
            let clock = Arc::clone(&clock);
            let live = Arc::clone(&live_workers);
            let injector = FaultInjector::new(&config.fault, w as u64);
            let max_frontier = config.max_view_frontier;
            let quarantine_cap = config.quarantine_cap;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rega-stream-{w}"))
                    .spawn(move || {
                        let outcomes = worker_entry(
                            spec,
                            metrics,
                            clock,
                            owned,
                            owned_ids,
                            injector,
                            max_frontier,
                            quarantine_cap,
                        );
                        live.fetch_sub(1, Ordering::Release);
                        outcomes
                    })
                    .expect("spawn worker thread"),
            );
        }
        ThreadedScheduler {
            router: Router {
                senders,
                metrics,
                clock,
                live_workers,
                registers: spec.registers(),
                shards,
                submit_timeout: config.submit_timeout,
            },
            workers: handles,
            // Index u64::MAX keeps the producer's RNG stream disjoint from
            // every worker's.
            producer_faults: FaultInjector::new(&config.fault, u64::MAX),
        }
    }
}

impl Scheduler for ThreadedScheduler {
    fn submit(&mut self, event: Event) -> Result<(), SubmitError> {
        self.router.check_arity(&event)?;
        // Producer-side transport-fault injection: corrupted copies and
        // duplicated terminal events ride in *after* the genuine event
        // (and bypass the arity gate — that is the point).
        let injected = self.producer_faults.injected_copies(&event);
        self.router.submit_unchecked(event)?;
        for copy in injected {
            self.router.submit_unchecked(copy)?;
        }
        Ok(())
    }

    fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.router.metrics
    }

    fn checkpoint(&mut self) -> Option<Json> {
        None
    }

    fn handle(&self) -> Option<EngineHandle> {
        Some(EngineHandle {
            router: self.router.clone(),
        })
    }

    fn finish(self: Box<Self>) -> EngineReport {
        let ThreadedScheduler {
            router, workers, ..
        } = *self;
        let metrics = Arc::clone(&router.metrics);
        // Handles cloned off this engine keep their own sender clones, so
        // dropping the router here only guarantees disconnection once those
        // handles are gone too; workers also observe end-of-stream through
        // the producer's senders going away.
        drop(router);
        let mut outcomes: Vec<SessionOutcome> = Vec::new();
        for handle in workers {
            outcomes.extend(handle.join().expect("worker thread died outside its loop"));
        }
        make_report(outcomes, metrics)
    }
}

/// Per-worker state that must survive panics: it lives *outside* the
/// unwind boundary, so `catch_unwind` hands it back to the respawned loop
/// untouched.
struct WorkerCtx {
    shards: Vec<ShardState>,
    open: Vec<bool>,
    /// The envelope being processed, stashed (only while fault injection
    /// is active) so a caught panic can retry or poison it.
    inflight: Option<(usize, Envelope)>,
}

#[allow(clippy::too_many_arguments)]
fn worker_entry(
    spec: Arc<CompiledSpec>,
    metrics: Arc<EngineMetrics>,
    clock: Arc<SystemClock>,
    receivers: Vec<Receiver<Envelope>>,
    shard_ids: Vec<usize>,
    mut injector: FaultInjector,
    max_frontier: usize,
    quarantine_cap: u64,
) -> Vec<SessionOutcome> {
    let mut ctx = WorkerCtx {
        shards: receivers.iter().map(|_| ShardState::default()).collect(),
        open: vec![true; receivers.len()],
        inflight: None,
    };
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(
                &spec,
                &metrics,
                &*clock,
                &receivers,
                &shard_ids,
                &mut ctx,
                &mut injector,
                max_frontier,
                quarantine_cap,
            )
        }));
        match run {
            Ok(()) => break, // clean drain: every owned queue disconnected
            Err(_) => {
                metrics.worker_panics.inc();
                if let Some((i, env)) = ctx.inflight.take() {
                    if env.fault_immune {
                        // Second panic on the same event: poison it.
                        poison(&metrics, &mut ctx.shards[i], &env.event);
                    } else {
                        ctx.inflight = Some((
                            i,
                            Envelope {
                                fault_immune: true,
                                ..env
                            },
                        ));
                    }
                }
                if !injector.respawn() {
                    // Respawn budget exhausted: exit for good. Dropping the
                    // receivers disconnects the shard queues, which the
                    // producer observes as `WorkersDead`.
                    break;
                }
            }
        }
    }
    report_shards(&metrics, ctx.shards)
}

/// Quarantines a twice-panicking event and evicts its session as
/// [`ViolationKind::WorkerPanic`].
fn poison(metrics: &EngineMetrics, shard: &mut ShardState, event: &Event) {
    metrics.events_quarantined.inc();
    let name = event.session().to_string();
    if let Some(session) = shard.live.get_mut(&name) {
        session.force_violation(ViolationKind::WorkerPanic);
        metrics.sessions_violated.inc();
        evict(metrics, shard, &name);
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    spec: &CompiledSpec,
    metrics: &EngineMetrics,
    clock: &dyn Clock,
    receivers: &[Receiver<Envelope>],
    shard_ids: &[usize],
    ctx: &mut WorkerCtx,
    injector: &mut FaultInjector,
    max_frontier: usize,
    quarantine_cap: u64,
) {
    let faulty = injector.is_active();
    // A retry left over from a caught panic is processed first.
    if let Some((i, env)) = ctx.inflight.take() {
        handle_one(
            spec,
            metrics,
            clock,
            ctx,
            injector,
            i,
            shard_ids[i],
            env,
            max_frontier,
            quarantine_cap,
            faulty,
        );
    }
    // Spans are batch-granular (one per drained burst, carrying the global
    // shard id), not per-event — a span on every event would dominate the
    // hot path.
    const BATCH: usize = 64;
    // Single-shard workers can block on recv (no other queue to starve).
    if let [rx] = receivers {
        while let Ok(env) = rx.recv() {
            let _batch = rega_obs::span!("stream.shard_batch", shard = shard_ids[0]);
            handle_one(
                spec,
                metrics,
                clock,
                ctx,
                injector,
                0,
                shard_ids[0],
                env,
                max_frontier,
                quarantine_cap,
                faulty,
            );
            for _ in 1..BATCH {
                match rx.try_recv() {
                    Ok(env) => handle_one(
                        spec,
                        metrics,
                        clock,
                        ctx,
                        injector,
                        0,
                        shard_ids[0],
                        env,
                        max_frontier,
                        quarantine_cap,
                        faulty,
                    ),
                    Err(_) => break,
                }
            }
        }
        return;
    }
    // Round-robin over owned shards; drain in small batches to stay fair.
    loop {
        let mut progressed = false;
        for (i, rx) in receivers.iter().enumerate() {
            if !ctx.open[i] {
                continue;
            }
            match rx.try_recv() {
                Ok(first) => {
                    let _batch = rega_obs::span!("stream.shard_batch", shard = shard_ids[i]);
                    handle_one(
                        spec,
                        metrics,
                        clock,
                        ctx,
                        injector,
                        i,
                        shard_ids[i],
                        first,
                        max_frontier,
                        quarantine_cap,
                        faulty,
                    );
                    progressed = true;
                    for _ in 1..BATCH {
                        match rx.try_recv() {
                            Ok(env) => {
                                handle_one(
                                    spec,
                                    metrics,
                                    clock,
                                    ctx,
                                    injector,
                                    i,
                                    shard_ids[i],
                                    env,
                                    max_frontier,
                                    quarantine_cap,
                                    faulty,
                                );
                            }
                            Err(TryRecvError::Empty) => break,
                            Err(TryRecvError::Disconnected) => {
                                ctx.open[i] = false;
                                break;
                            }
                        }
                    }
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    ctx.open[i] = false;
                }
            }
        }
        if ctx.open.iter().all(|o| !o) {
            return;
        }
        if !progressed {
            // All owned queues momentarily empty: yield briefly instead of
            // spinning. (Blocking recv would stall the other owned shards.)
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

/// Applies one envelope: fault draws (stall, panic), latency accounting,
/// then the shared shard-processing core.
#[allow(clippy::too_many_arguments)]
fn handle_one(
    spec: &CompiledSpec,
    metrics: &EngineMetrics,
    clock: &dyn Clock,
    ctx: &mut WorkerCtx,
    injector: &mut FaultInjector,
    shard_idx: usize,
    shard_id: usize,
    env: Envelope,
    max_frontier: usize,
    quarantine_cap: u64,
    faulty: bool,
) {
    if let Some(depth) = metrics.queue_depth.get(shard_id) {
        depth.dec();
    }
    metrics
        .queue_latency
        .record_ns(clock.now_ns().saturating_sub(env.submitted_ns));
    if faulty && !env.fault_immune {
        if let Some(ns) = injector.stall_ns() {
            clock.stall(ns);
        }
        if injector.should_panic() {
            // Stash the envelope so the respawned loop retries it, then
            // unwind without invoking the panic hook (no backtrace spam).
            ctx.inflight = Some((shard_idx, env));
            std::panic::resume_unwind(Box::new(InjectedPanic));
        }
    }
    if faulty {
        // Keep the envelope reachable across a *genuine* panic inside
        // `process` too (clone only on the fault-injected path — the
        // fast path pays nothing).
        ctx.inflight = Some((
            shard_idx,
            Envelope {
                event: env.event.clone(),
                submitted_ns: env.submitted_ns,
                fault_immune: env.fault_immune,
            },
        ));
    }
    let started = clock.now_ns();
    process(
        spec,
        metrics,
        &mut ctx.shards[shard_idx],
        env.event,
        max_frontier,
        quarantine_cap,
    );
    metrics
        .process_latency
        .record_ns(clock.now_ns().saturating_sub(started));
    metrics.events_processed.inc();
    ctx.inflight = None;
}
