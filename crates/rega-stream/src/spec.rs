//! The compiled, shareable form of a monitored specification.

use rega_core::{Budget, CoreError, ExtendedAutomaton, StateId, TransId};
use rega_data::{CacheStats, Database, SatCache, Value};
use rega_views::{project_extended_governed, project_register_automaton_governed};
use std::collections::HashMap;

/// Everything derived from the automaton once and shared read-only (behind
/// an `Arc`) by every session and worker:
///
/// * the extended automaton itself (transitions + constraint DFAs),
/// * the state-name table for resolving event `state` fields,
/// * per-(source, target) transition indices so a session checks only the
///   transitions that could explain an observed state change,
/// * optionally the projection view onto the first `m` registers (Prop 20
///   for plain automata, Thm 13 when global constraints are present), for
///   feeding per-session [`ViewObserver`](rega_views::ViewObserver)s.
#[derive(Debug)]
pub struct CompiledSpec {
    ext: ExtendedAutomaton,
    db: Database,
    state_by_name: HashMap<String, StateId>,
    /// `(from, to)` → transitions from `from` to `to`.
    edges: HashMap<(StateId, StateId), Vec<TransId>>,
    /// One-step successor states per state (the session's reachable set).
    successors: Vec<Vec<StateId>>,
    view: Option<ViewPart>,
    /// The σ-type interner + satisfiability cache that served compilation
    /// (view construction in particular); kept so engines can report its
    /// hit/miss counters through the metrics snapshot.
    type_cache: SatCache,
}

/// A compiled projection view.
#[derive(Debug)]
pub struct ViewPart {
    /// The view extended automaton over the first `m` registers.
    pub view: ExtendedAutomaton,
    /// Number of visible registers.
    pub m: u16,
}

impl CompiledSpec {
    /// Compiles `ext` over `db`. When `view_m` is given, additionally
    /// builds the projection view onto the first `view_m` registers
    /// (requires an empty schema, as the projection constructions do).
    pub fn compile(
        ext: ExtendedAutomaton,
        db: Database,
        view_m: Option<u16>,
    ) -> Result<Self, CoreError> {
        Self::compile_governed(ext, db, view_m, &Budget::unlimited())
    }

    /// [`CompiledSpec::compile`] under a [`Budget`]: the exponential view
    /// construction (completion, state-driven wiring, Lemma 21 builds)
    /// checks the deadline/ceilings at loop granularity and returns a
    /// [`rega_core::GovernError`]-carrying [`CoreError`] on a trip.
    pub fn compile_governed(
        ext: ExtendedAutomaton,
        db: Database,
        view_m: Option<u16>,
        budget: &Budget,
    ) -> Result<Self, CoreError> {
        let _span = rega_obs::span!(
            "stream.compile_spec",
            states = ext.ra().num_states(),
            with_view = view_m.is_some()
        );
        let ra = ext.ra();
        let mut state_by_name = HashMap::new();
        for s in 0..ra.num_states() {
            let id = StateId(s as u32);
            state_by_name.insert(ra.state_name(id).to_string(), id);
        }
        let mut edges: HashMap<(StateId, StateId), Vec<TransId>> = HashMap::new();
        let mut successors: Vec<Vec<StateId>> = vec![Vec::new(); ra.num_states()];
        for (s, succ) in successors.iter_mut().enumerate() {
            let from = StateId(s as u32);
            for &t in ra.outgoing(from) {
                let to = ra.transition(t).to;
                edges.entry((from, to)).or_default().push(t);
                if !succ.contains(&to) {
                    succ.push(to);
                }
            }
        }
        let type_cache = SatCache::new(ra.schema().clone());
        let view = match view_m {
            None => None,
            Some(m) => {
                let view = if ext.constraints().is_empty() {
                    project_register_automaton_governed(ra, m, &type_cache, budget)?.view
                } else {
                    project_extended_governed(&ext, m, &type_cache, budget)?.view
                };
                Some(ViewPart { view, m })
            }
        };
        Ok(CompiledSpec {
            ext,
            db,
            state_by_name,
            edges,
            successors,
            view,
            type_cache,
        })
    }

    /// The monitored extended automaton.
    pub fn ext(&self) -> &ExtendedAutomaton {
        &self.ext
    }

    /// The database the run is evaluated over.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Resolves an event's state name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.state_by_name.get(name).copied()
    }

    /// The automaton's register count — the arity every step event's
    /// register tuple must have.
    pub fn registers(&self) -> usize {
        self.ext.ra().k() as usize
    }

    /// The transitions leading from `from` to `to` (empty if none).
    pub fn edges(&self, from: StateId, to: StateId) -> &[TransId] {
        self.edges
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The one-step-reachable control states from `from`.
    pub fn successors(&self, from: StateId) -> &[StateId] {
        &self.successors[from.0 as usize]
    }

    /// The compiled projection view, if one was requested.
    pub fn view(&self) -> Option<&ViewPart> {
        self.view.as_ref()
    }

    /// The σ-type cache backing the spec (compilation reuses it; callers
    /// may share it for further symbolic work over the same schema).
    pub fn type_cache(&self) -> &SatCache {
        &self.type_cache
    }

    /// Hit/miss counters of the spec's σ-type cache.
    pub fn type_cache_stats(&self) -> CacheStats {
        self.type_cache.stats()
    }

    /// Whether any transition from the configuration `(from, pre)` to
    /// `(to, post)` is enabled.
    pub fn transition_enabled(
        &self,
        from: StateId,
        pre: &[Value],
        to: StateId,
        post: &[Value],
    ) -> bool {
        self.edges(from, to).iter().any(|&t| {
            self.ext
                .ra()
                .transition(t)
                .ty
                .satisfied_by(&self.db, pre, post)
        })
    }
}
