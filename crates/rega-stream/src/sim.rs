//! The deterministic simulation scheduler.
//!
//! [`SimScheduler`] runs the whole engine on the calling thread: shard
//! queues are plain `VecDeque`s, the clock is a [`SimClock`] that moves
//! only when the simulation spends time, and every nondeterministic choice
//! the threaded scheduler leaves to the OS — which shard a worker polls
//! next, how long an event waits in its queue, how long processing takes,
//! which deliveries a fault hits — is drawn from one RNG seeded by
//! `seed ^ fault-plan seed`. The same `(spec, config, seed)` therefore
//! replays bit-for-bit: identical outcome sets, quarantine counts, and
//! metrics snapshots on every run, which CI asserts across five runs.
//!
//! Per-session event order is still FIFO (each queue pops from the front),
//! so the simulation explores exactly the interleavings the sharded
//! threaded engine could produce — cross-shard orderings — and no others.
//!
//! [`SimScheduler::checkpoint`] first drains every queue (graceful
//! failover: in-flight events are flushed, not lost), then serializes all
//! live sessions and closed outcomes via the [`snapshot`](crate::snapshot)
//! codecs. [`SimScheduler::restore`] rebuilds an engine from such a
//! snapshot — re-routing sessions by hash, so the shard count may change
//! across the restart — and the `stream_faults` suite asserts that a
//! crashed-and-restored run reaches the same verdicts as an uninterrupted
//! one.

use crate::clock::{Clock, SimClock};
use crate::engine::{
    make_report, process, report_shards, shard_index, EngineConfig, EngineReport, ShardState,
    SubmitError,
};
use crate::event::Event;
use crate::fault::FaultInjector;
use crate::metrics::EngineMetrics;
use crate::scheduler::Scheduler;
use crate::session::Session;
use crate::snapshot::{
    declared_version, err, outcome_from_json, outcome_to_json, SnapshotError, SNAPSHOT_VERSION,
};
use crate::spec::CompiledSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value as Json};
use std::collections::VecDeque;
use std::sync::Arc;

/// Queue-wait jitter drawn per delivery, in nanoseconds.
const QUEUE_JITTER_NS: std::ops::Range<u64> = 50..2_000;
/// Processing-time jitter drawn per delivery, in nanoseconds.
const PROCESS_JITTER_NS: std::ops::Range<u64> = 200..5_000;
/// Maximum number of deliveries drained opportunistically after a submit.
const MAX_BURST: u64 = 4;

/// An event sitting in a simulated shard queue.
struct QueuedEvent {
    event: Event,
    submitted_ns: u64,
    fault_immune: bool,
}

/// The single-threaded deterministic scheduler. See the module docs.
pub struct SimScheduler {
    spec: Arc<CompiledSpec>,
    metrics: Arc<EngineMetrics>,
    clock: SimClock,
    rng: StdRng,
    worker_faults: FaultInjector,
    producer_faults: FaultInjector,
    queues: Vec<VecDeque<QueuedEvent>>,
    shards: Vec<ShardState>,
    registers: usize,
    max_frontier: usize,
    quarantine_cap: u64,
    queue_capacity: usize,
    /// Set once the simulated respawn budget is exhausted: the "workers"
    /// are dead and every further submit fails fast.
    dead: bool,
}

impl SimScheduler {
    /// Builds the simulation. `seed` is xor-ed into the fault plan's own
    /// seed so one knob replays everything.
    pub fn start(spec: Arc<CompiledSpec>, config: EngineConfig, seed: u64) -> SimScheduler {
        Self::build(spec, config, seed, SimClock::new())
    }

    fn build(
        spec: Arc<CompiledSpec>,
        config: EngineConfig,
        seed: u64,
        clock: SimClock,
    ) -> SimScheduler {
        let shards = config.shards.max(1);
        let mut plan = config.fault.clone();
        plan.seed ^= seed;
        SimScheduler {
            registers: spec.registers(),
            spec,
            metrics: Arc::new(EngineMetrics::with_shards(shards)),
            clock,
            rng: StdRng::seed_from_u64(seed),
            worker_faults: FaultInjector::new(&plan, 0),
            producer_faults: FaultInjector::new(&plan, u64::MAX),
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            shards: (0..shards).map(|_| ShardState::default()).collect(),
            max_frontier: config.max_view_frontier,
            quarantine_cap: config.quarantine_cap,
            queue_capacity: config.queue_capacity.max(1),
            dead: false,
        }
    }

    /// Rebuilds a simulation from a [`checkpoint`](Scheduler::checkpoint).
    /// Sessions and closed outcomes are re-routed by hash, so `config` may
    /// shard differently than the checkpointing engine did. The RNG is
    /// reseeded (randomness is not part of the persisted state), so only
    /// *verdicts* — not latency jitter — are comparable across a restart.
    pub fn restore(
        spec: Arc<CompiledSpec>,
        config: EngineConfig,
        seed: u64,
        snapshot: &Json,
    ) -> Result<SimScheduler, SnapshotError> {
        let found = declared_version(snapshot);
        // Version 1 differs only in the name of the version field; the
        // payload decodes unchanged. Anything else (including unversioned
        // v0 blobs) is rejected with the typed mismatch, not a decode
        // error further in.
        if found != SNAPSHOT_VERSION && found != 1 {
            return Err(SnapshotError::VersionMismatch {
                found,
                expected: SNAPSHOT_VERSION,
            });
        }
        let clock_ns = snapshot["clock_ns"]
            .as_u64()
            .ok_or_else(|| err("clock_ns must be a number"))?;
        let mut sim = Self::build(spec, config, seed, SimClock::at(clock_ns));
        let n = sim.shards.len();
        for entry in snapshot["live"]
            .as_array()
            .ok_or_else(|| err("live must be an array"))?
        {
            let name = entry["session"]
                .as_str()
                .ok_or_else(|| err("live session must be named"))?
                .to_string();
            let session = Session::restore(&sim.spec, &entry["state"])?;
            sim.metrics.sessions_started.inc();
            sim.metrics.session_in();
            let shard = shard_index(&name, n);
            if sim.shards[shard].live.insert(name, session).is_some() {
                return Err(err("duplicate live session"));
            }
        }
        for entry in snapshot["closed"]
            .as_array()
            .ok_or_else(|| err("closed must be an array"))?
        {
            let outcome = outcome_from_json(entry)?;
            let shard = shard_index(&outcome.session, n);
            if sim.shards[shard]
                .closed
                .insert(outcome.session.clone(), outcome)
                .is_some()
            {
                return Err(err("duplicate closed session"));
            }
        }
        Ok(sim)
    }

    /// Delivers the front event of `shard_idx`, spending simulated time
    /// and drawing faults exactly where the threaded worker would.
    fn deliver_front(&mut self, shard_idx: usize) {
        let Some(q) = self.queues[shard_idx].pop_front() else {
            return;
        };
        if let Some(depth) = self.metrics.queue_depth.get(shard_idx) {
            depth.dec();
        }
        self.clock.advance(self.rng.gen_range(QUEUE_JITTER_NS));
        self.metrics
            .queue_latency
            .record_ns(self.clock.now_ns().saturating_sub(q.submitted_ns));
        if self.worker_faults.is_active() && !q.fault_immune {
            if let Some(ns) = self.worker_faults.stall_ns() {
                self.clock.stall(ns);
            }
            if self.worker_faults.should_panic() {
                // The simulated worker "panics" before touching session
                // state, respawns, and retries the event as immune — the
                // same recovery the threaded scheduler performs, minus the
                // actual unwinding.
                self.metrics.worker_panics.inc();
                if !self.worker_faults.respawn() {
                    self.dead = true;
                    return; // the event dies with the worker pool
                }
            }
        }
        let started = self.clock.now_ns();
        process(
            &self.spec,
            &self.metrics,
            &mut self.shards[shard_idx],
            q.event,
            self.max_frontier,
            self.quarantine_cap,
        );
        self.clock.advance(self.rng.gen_range(PROCESS_JITTER_NS));
        self.metrics
            .process_latency
            .record_ns(self.clock.now_ns().saturating_sub(started));
        self.metrics.events_processed.inc();
    }

    /// Delivers one event from an RNG-chosen non-empty shard. Returns
    /// whether anything was delivered.
    fn poll_one(&mut self) -> bool {
        let nonempty: Vec<usize> = (0..self.queues.len())
            .filter(|&i| !self.queues[i].is_empty())
            .collect();
        if nonempty.is_empty() {
            return false;
        }
        let pick = nonempty[self.rng.gen_range(0..nonempty.len())];
        self.deliver_front(pick);
        true
    }

    /// Drains every queue.
    fn drain(&mut self) {
        while !self.dead && self.poll_one() {}
    }

    fn enqueue(&mut self, event: Event) {
        let shard = shard_index(event.session(), self.queues.len());
        // Bounded queues: a full shard back-pressures the producer, which
        // in the simulation means delivering from that shard until there
        // is room (the threaded engine blocks the producer the same way).
        while !self.dead && self.queues[shard].len() >= self.queue_capacity {
            self.deliver_front(shard);
        }
        self.metrics.events_submitted.inc();
        if let Some(depth) = self.metrics.queue_depth.get(shard) {
            depth.inc();
        }
        self.queues[shard].push_back(QueuedEvent {
            event,
            submitted_ns: self.clock.now_ns(),
            fault_immune: false,
        });
    }
}

impl Scheduler for SimScheduler {
    fn submit(&mut self, event: Event) -> Result<(), SubmitError> {
        if self.dead {
            self.metrics.submit_errors.inc();
            return Err(SubmitError::WorkersDead);
        }
        if let Event::Step { regs, .. } = &event {
            if regs.len() != self.registers {
                self.metrics.submit_errors.inc();
                return Err(SubmitError::Arity {
                    got: regs.len(),
                    want: self.registers,
                });
            }
        }
        let injected = self.producer_faults.injected_copies(&event);
        self.enqueue(event);
        for copy in injected {
            self.enqueue(copy);
        }
        // Interleave: drain an RNG-sized burst so queue occupancy — and
        // with it the explored cross-shard orderings — varies by seed.
        let burst = self.rng.gen_range(0..MAX_BURST);
        for _ in 0..burst {
            if self.dead || !self.poll_one() {
                break;
            }
        }
        if self.dead {
            self.metrics.submit_errors.inc();
            return Err(SubmitError::WorkersDead);
        }
        Ok(())
    }

    fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    fn checkpoint(&mut self) -> Option<Json> {
        self.drain();
        let mut live: Vec<(&String, &Session)> =
            self.shards.iter().flat_map(|s| s.live.iter()).collect();
        live.sort_by(|a, b| a.0.cmp(b.0));
        let mut closed: Vec<&crate::engine::SessionOutcome> =
            self.shards.iter().flat_map(|s| s.closed.values()).collect();
        closed.sort_by(|a, b| a.session.cmp(&b.session));
        Some(json!({
            "format_version": SNAPSHOT_VERSION,
            "clock_ns": self.clock.now_ns(),
            "live": Json::Array(
                live.iter()
                    .map(|(name, session)| json!({
                        "session": (*name).clone(),
                        "state": session.snapshot(),
                    }))
                    .collect(),
            ),
            "closed": Json::Array(closed.iter().map(|o| outcome_to_json(o)).collect()),
        }))
    }

    fn finish(mut self: Box<Self>) -> EngineReport {
        self.drain();
        let shards = std::mem::take(&mut self.shards);
        make_report(report_shards(&self.metrics, shards), self.metrics)
    }
}
