//! Seeded fault injection.
//!
//! A [`FaultPlan`] describes, with probabilities drawn from a seeded RNG,
//! the failures a deployed multi-session monitor sees: worker panics (the
//! worker catches the unwind, keeps its shard state, and resumes — the
//! event being processed is retried once), processing stalls (back-pressure
//! up to the producer), and transport-level corruption (events with a
//! mangled register tuple or an unknown control state, and duplicated
//! terminal events). The same plan drives both the threaded scheduler
//! (each worker derives its own RNG stream from the seed) and the
//! deterministic [`SimScheduler`](crate::sim::SimScheduler), where every
//! draw is replayable.
//!
//! Corrupt and duplicate injections are *transport* faults: with a lenient
//! [`quarantine_cap`](crate::engine::EngineConfig::quarantine_cap) the
//! engine routes them to the quarantine counters without touching session
//! state, so verdicts under any fault plan equal the fault-free run — the
//! invariant the `stream_faults` suite checks for hundreds of random plans.

use crate::event::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Control-state name used for injected "unknown state" corruption; no
/// spec parsed by `rega_core::spec` can contain it (names are
/// whitespace-delimited words, and this one carries a `\u{1}` byte).
pub const CORRUPT_STATE: &str = "\u{1}corrupt";

/// A seeded description of which faults to inject, configured via
/// [`EngineConfig::fault`](crate::engine::EngineConfig). The default plan
/// injects nothing.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for every injection draw (and the simulation schedule).
    pub seed: u64,
    /// Per-delivery probability that the worker panics before processing
    /// the event. The panic is caught; the worker resumes with its shard
    /// state intact and retries the event once (a second panic on the same
    /// event quarantines it and evicts its session as poisoned).
    pub panic_prob: f64,
    /// Number of injected panics a worker survives before giving up and
    /// exiting; submissions then observe dead workers as
    /// [`SubmitError::WorkersDead`](crate::engine::SubmitError::WorkersDead).
    pub max_respawns: u64,
    /// Per-delivery probability that processing stalls for [`stall_ns`](Self::stall_ns).
    pub stall_prob: f64,
    /// Stall duration (simulated time in the sim scheduler, a real sleep in
    /// the threaded one).
    pub stall_ns: u64,
    /// Per-submit probability that a corrupted copy of the event (wrong
    /// register arity or an unknown control state) is injected right after
    /// it.
    pub corrupt_prob: f64,
    /// Per-submit probability that a terminal event is delivered twice
    /// (the duplicate lands on the post-eviction path).
    pub dup_end_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_prob: 0.0,
            max_respawns: u64::MAX,
            stall_prob: 0.0,
            stall_ns: 0,
            corrupt_prob: 0.0,
            dup_end_prob: 0.0,
        }
    }
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || self.stall_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.dup_end_prob > 0.0
    }
}

/// One party's seeded view of a [`FaultPlan`]: the producer and each worker
/// hold their own injector so the threaded scheduler needs no cross-thread
/// RNG state, and the simulation gets one deterministic stream.
#[derive(Clone, Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    panics: u64,
}

impl FaultInjector {
    /// The injector for stream `index` (worker index, or a distinct
    /// constant for the producer side).
    pub(crate) fn new(plan: &FaultPlan, index: u64) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(
                plan.seed ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            plan: plan.clone(),
            panics: 0,
        }
    }

    /// Whether this injector can ever fire (mirrors
    /// [`FaultPlan::is_active`]). Lets the hot path skip fault draws and
    /// envelope bookkeeping entirely when the plan is empty.
    pub(crate) fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Draws whether this delivery panics. Counts towards the respawn
    /// budget; when the budget is exhausted the caller must stop instead.
    pub(crate) fn should_panic(&mut self) -> bool {
        self.plan.panic_prob > 0.0 && self.rng.gen_bool(self.plan.panic_prob)
    }

    /// Registers one injected panic; returns `false` when the respawn
    /// budget is exhausted and the worker should exit for good.
    pub(crate) fn respawn(&mut self) -> bool {
        self.panics += 1;
        self.panics <= self.plan.max_respawns
    }

    /// Draws a stall for this delivery, in nanoseconds.
    pub(crate) fn stall_ns(&mut self) -> Option<u64> {
        (self.plan.stall_prob > 0.0 && self.rng.gen_bool(self.plan.stall_prob))
            .then_some(self.plan.stall_ns)
    }

    /// Draws the transport faults to inject after accepting `event`:
    /// a corrupted copy and/or a duplicated terminal event.
    pub(crate) fn injected_copies(&mut self, event: &Event) -> Vec<Event> {
        let mut out = Vec::new();
        if self.plan.corrupt_prob > 0.0 && self.rng.gen_bool(self.plan.corrupt_prob) {
            if let Some(bad) = self.corrupt_copy(event) {
                out.push(bad);
            }
        }
        if let Event::End { session } = event {
            if self.plan.dup_end_prob > 0.0 && self.rng.gen_bool(self.plan.dup_end_prob) {
                out.push(Event::End {
                    session: session.clone(),
                });
            }
        }
        out
    }

    /// A transport-corrupted copy of a step event: either the register
    /// tuple loses/gains an entry (arity fault) or the control state is
    /// replaced by [`CORRUPT_STATE`]. `End` events are not corrupted (a
    /// mangled `End` is indistinguishable from a legitimate one).
    fn corrupt_copy(&mut self, event: &Event) -> Option<Event> {
        let Event::Step {
            session,
            state,
            regs,
        } = event
        else {
            return None;
        };
        Some(if self.rng.gen_bool(0.5) && !regs.is_empty() {
            let mut bad = regs.clone();
            bad.pop();
            Event::Step {
                session: session.clone(),
                state: state.clone(),
                regs: bad,
            }
        } else {
            Event::Step {
                session: session.clone(),
                state: CORRUPT_STATE.to_string(),
                regs: regs.clone(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_data::Value;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(&plan, 0);
        let step = Event::Step {
            session: "s".into(),
            state: "q".into(),
            regs: vec![Value(1)],
        };
        for _ in 0..100 {
            assert!(!inj.should_panic());
            assert!(inj.stall_ns().is_none());
            assert!(inj.injected_copies(&step).is_empty());
        }
    }

    #[test]
    fn injections_are_deterministic_per_seed_and_index() {
        let plan = FaultPlan {
            seed: 42,
            panic_prob: 0.3,
            corrupt_prob: 0.5,
            dup_end_prob: 0.5,
            stall_prob: 0.2,
            stall_ns: 10,
            ..FaultPlan::default()
        };
        let end = Event::End {
            session: "s".into(),
        };
        let draw = |mut inj: FaultInjector| {
            (0..64)
                .map(|_| {
                    (
                        inj.should_panic(),
                        inj.stall_ns(),
                        inj.injected_copies(&end).len(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = draw(FaultInjector::new(&plan, 3));
        let b = draw(FaultInjector::new(&plan, 3));
        assert_eq!(a, b, "same seed and index must replay identically");
        let c = draw(FaultInjector::new(&plan, 4));
        assert_ne!(a, c, "different workers should see different streams");
    }

    #[test]
    fn corrupt_copies_are_detectably_malformed() {
        let plan = FaultPlan {
            seed: 7,
            corrupt_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 0);
        let step = Event::Step {
            session: "s".into(),
            state: "q".into(),
            regs: vec![Value(1), Value(2)],
        };
        for _ in 0..32 {
            for bad in inj.injected_copies(&step) {
                let Event::Step { state, regs, .. } = &bad else {
                    panic!("step corruption must stay a step event");
                };
                assert!(
                    state == CORRUPT_STATE || regs.len() != 2,
                    "injected copy must be transport-detectable"
                );
            }
        }
    }
}
