//! Lock-free engine metrics: monotonic counters, a live-session gauge with
//! a high-water mark, and coarse power-of-two latency histograms.

use serde_json::{json, Value as Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds, the last bucket is unbounded (≥ ~33 ms).
const BUCKETS: usize = 26;

/// A coarse base-2 histogram of durations.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// An approximate quantile (upper bound of the bucket containing it),
    /// in nanoseconds. Returns 0 with no samples.
    pub fn approx_quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    fn snapshot(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
            .map(|(i, b)| {
                json!({
                    "le_ns": 1u64 << (i + 1).min(63),
                    "count": b.load(Ordering::Relaxed),
                })
            })
            .collect();
        json!({
            "count": self.count(),
            "p50_ns_le": self.approx_quantile_ns(0.5),
            "p99_ns_le": self.approx_quantile_ns(0.99),
            "buckets": Json::Array(buckets),
        })
    }
}

/// Counters shared by the producer and all workers. Everything is relaxed
/// atomics: metrics never synchronize data, they only count.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Events submitted to the engine (accepted into a queue).
    pub events_submitted: AtomicU64,
    /// Events fully processed by a worker.
    pub events_processed: AtomicU64,
    /// Step events applied to an `Active` session without violation.
    pub events_ok: AtomicU64,
    /// Sessions created.
    pub sessions_started: AtomicU64,
    /// Sessions that received their terminal event while still valid.
    pub sessions_ended: AtomicU64,
    /// Sessions whose stream violated the specification.
    pub sessions_violated: AtomicU64,
    /// Sessions evicted (terminal event or violation) — their monitoring
    /// state has been dropped.
    pub sessions_evicted: AtomicU64,
    /// Events addressed to an already-evicted session (ignored).
    pub events_after_eviction: AtomicU64,
    /// Sessions whose view observer degraded to three-valued answers.
    pub view_degraded: AtomicU64,
    /// Currently resident sessions across all shards.
    pub sessions_active: AtomicU64,
    /// High-water mark of `sessions_active`.
    pub sessions_active_peak: AtomicU64,
    /// Per-event worker processing latency.
    pub process_latency: LatencyHistogram,
    /// Time events spent waiting in shard queues.
    pub queue_latency: LatencyHistogram,
}

impl EngineMetrics {
    /// Registers a session becoming resident.
    pub fn session_in(&self) {
        let now = self.sessions_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions_active_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Registers a session being evicted.
    pub fn session_out(&self) {
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// A JSON snapshot of all counters and histograms.
    pub fn snapshot(&self) -> Json {
        let c = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        json!({
            "events": {
                "submitted": c(&self.events_submitted),
                "processed": c(&self.events_processed),
                "ok": c(&self.events_ok),
                "after_eviction": c(&self.events_after_eviction),
            },
            "sessions": {
                "started": c(&self.sessions_started),
                "ended": c(&self.sessions_ended),
                "violated": c(&self.sessions_violated),
                "evicted": c(&self.sessions_evicted),
                "active": c(&self.sessions_active),
                "active_peak": c(&self.sessions_active_peak),
                "view_degraded": c(&self.view_degraded),
            },
            "latency": {
                "process": self.process_latency.snapshot(),
                "queue": self.queue_latency.snapshot(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket [64, 128)
        }
        h.record(Duration::from_micros(100)); // far tail
        assert_eq!(h.count(), 100);
        assert_eq!(h.approx_quantile_ns(0.5), 128);
        assert!(h.approx_quantile_ns(1.0) >= 100_000);
    }

    #[test]
    fn snapshot_is_json() {
        let m = EngineMetrics::default();
        m.session_in();
        m.session_in();
        m.session_out();
        m.process_latency.record(Duration::from_micros(3));
        let snap = m.snapshot();
        assert_eq!(snap["sessions"]["active"].as_u64(), Some(1));
        assert_eq!(snap["sessions"]["active_peak"].as_u64(), Some(2));
        assert_eq!(snap["latency"]["process"]["count"].as_u64(), Some(1));
        // round-trips through the serializer
        let text = serde_json::to_string(&snap).unwrap();
        assert!(serde_json::from_str(&text).is_ok());
    }
}
