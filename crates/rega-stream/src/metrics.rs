//! Engine metrics, backed by the workspace-wide [`rega_obs`] registry:
//! monotonic counters, a live-session gauge with a high-water mark,
//! fault/quarantine accounting, coarse power-of-two latency histograms,
//! and per-shard queue-depth gauges.
//!
//! Every handle here is registered by name in a per-engine
//! [`Registry`](rega_obs::Registry) (engines must not share counts, so the
//! process-global registry is not used), and the hot paths touch only the
//! cloned lock-free handles. All timestamps feeding the histograms come
//! from an injectable [`Clock`](crate::clock::Clock), so a simulation run
//! with a [`SimClock`](crate::clock::SimClock) produces bit-for-bit
//! reproducible snapshots — the JSON schema is pinned by a golden-file
//! test.

use rega_obs::{Counter, Gauge, Registry};
use serde_json::{json, Value as Json};

/// The coarse base-2 latency histogram (now the shared
/// [`rega_obs::Histogram`]; the old standalone type moved there when the
/// registry was introduced).
pub type LatencyHistogram = rega_obs::Histogram;

/// Counters shared by the producer and all workers. Everything is a
/// relaxed-atomic [`rega_obs`] handle: metrics never synchronize data,
/// they only count.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Events submitted to the engine (accepted into a queue).
    pub events_submitted: Counter,
    /// Events fully processed by a worker.
    pub events_processed: Counter,
    /// Step events applied to an `Active` session without violation.
    pub events_ok: Counter,
    /// Sessions created.
    pub sessions_started: Counter,
    /// Sessions that received their terminal event while still valid.
    pub sessions_ended: Counter,
    /// Sessions whose stream violated the specification.
    pub sessions_violated: Counter,
    /// Sessions evicted (terminal event or violation) — their monitoring
    /// state has been dropped.
    pub sessions_evicted: Counter,
    /// Events addressed to an already-evicted session (ignored).
    pub events_after_eviction: Counter,
    /// Sessions whose view observer degraded to three-valued answers.
    pub view_degraded: Counter,
    /// Currently resident sessions across all shards, with the high-water
    /// mark tracked by the gauge's peak.
    pub sessions_active: Gauge,
    /// Transport-faulty events (bad arity, unknown state, post-eviction or
    /// post-end traffic) dropped without touching session state, in
    /// lenient mode (`quarantine_cap > 0`).
    pub events_quarantined: Counter,
    /// Worker panics that were caught, with the worker respawned in place
    /// and its shard state handed back to it.
    pub worker_panics: Counter,
    /// Submissions rejected with a typed error (arity validation, queue
    /// timeout, dead workers).
    pub submit_errors: Counter,
    /// Per-event worker processing latency.
    pub process_latency: LatencyHistogram,
    /// Time events spent waiting in shard queues.
    pub queue_latency: LatencyHistogram,
    /// σ-type cache hits of the spec's [`SatCache`](rega_data::SatCache)
    /// (interned satisfiability/saturation lookups that were served from
    /// the memo tables). Synced from the spec by workers; stores, not
    /// increments, so replays cannot double-count.
    pub type_cache_hits: Counter,
    /// σ-type cache misses (lookups that had to run the full analysis).
    pub type_cache_misses: Counter,
    /// Per-shard queue depth (events enqueued, not yet handled), one gauge
    /// per shard; empty for engines built without shard knowledge.
    pub queue_depth: Vec<Gauge>,
    /// The registry all the handles above are registered in, for uniform
    /// by-name snapshots alongside the schema-pinned [`snapshot`].
    ///
    /// [`snapshot`]: EngineMetrics::snapshot
    registry: Registry,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::with_shards(0)
    }
}

impl EngineMetrics {
    /// A fresh metric set registered in its own registry, with one
    /// queue-depth gauge per shard.
    pub fn with_shards(shards: usize) -> Self {
        let registry = Registry::new();
        let queue_depth = (0..shards)
            .map(|i| registry.gauge(&format!("stream.queue.depth.{i}")))
            .collect();
        EngineMetrics {
            events_submitted: registry.counter("stream.events.submitted"),
            events_processed: registry.counter("stream.events.processed"),
            events_ok: registry.counter("stream.events.ok"),
            sessions_started: registry.counter("stream.sessions.started"),
            sessions_ended: registry.counter("stream.sessions.ended"),
            sessions_violated: registry.counter("stream.sessions.violated"),
            sessions_evicted: registry.counter("stream.sessions.evicted"),
            events_after_eviction: registry.counter("stream.events.after_eviction"),
            view_degraded: registry.counter("stream.sessions.view_degraded"),
            sessions_active: registry.gauge("stream.sessions.active"),
            events_quarantined: registry.counter("stream.faults.quarantined"),
            worker_panics: registry.counter("stream.faults.worker_panics"),
            submit_errors: registry.counter("stream.faults.submit_errors"),
            process_latency: registry.histogram("stream.latency.process_ns"),
            queue_latency: registry.histogram("stream.latency.queue_ns"),
            type_cache_hits: registry.counter("stream.symbolic.type_cache_hits"),
            type_cache_misses: registry.counter("stream.symbolic.type_cache_misses"),
            queue_depth,
            registry,
        }
    }

    /// The registry holding every handle, keyed by `stream.*` names.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Registers a session becoming resident.
    pub fn session_in(&self) {
        self.sessions_active.inc();
    }

    /// Registers a session being evicted. The gauge saturates at zero
    /// rather than wrapping, so a restore-after-crash that replays an
    /// eviction can never poison the metric.
    pub fn session_out(&self) {
        self.sessions_active.dec();
        self.sessions_evicted.inc();
    }

    /// Overwrites the σ-type cache counters with the cache's current
    /// totals (absolute stores: the `SatCache` owns the running count).
    pub fn sync_type_cache(&self, stats: &rega_data::CacheStats) {
        self.type_cache_hits.set(stats.hits);
        self.type_cache_misses.set(stats.misses);
    }

    /// A JSON snapshot of all counters, histograms, and queue gauges.
    pub fn snapshot(&self) -> Json {
        let queues: Vec<Json> = self
            .queue_depth
            .iter()
            .enumerate()
            .map(|(i, g)| json!({"shard": i, "depth": g.get(), "peak": g.peak()}))
            .collect();
        json!({
            "events": {
                "submitted": self.events_submitted.get(),
                "processed": self.events_processed.get(),
                "ok": self.events_ok.get(),
                "after_eviction": self.events_after_eviction.get(),
            },
            "sessions": {
                "started": self.sessions_started.get(),
                "ended": self.sessions_ended.get(),
                "violated": self.sessions_violated.get(),
                "evicted": self.sessions_evicted.get(),
                "active": self.sessions_active.get(),
                "active_peak": self.sessions_active.peak(),
                "view_degraded": self.view_degraded.get(),
            },
            "faults": {
                "quarantined": self.events_quarantined.get(),
                "worker_panics": self.worker_panics.get(),
                "submit_errors": self.submit_errors.get(),
            },
            "latency": {
                "process": self.process_latency.snapshot(),
                "queue": self.queue_latency.snapshot(),
            },
            "queues": Json::Array(queues),
            "symbolic": {
                "type_cache_hits": self.type_cache_hits.get(),
                "type_cache_misses": self.type_cache_misses.get(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, SimClock};
    use std::time::Duration;

    #[test]
    fn session_gauge_saturates_instead_of_wrapping() {
        let m = EngineMetrics::default();
        m.session_in();
        m.session_out();
        m.session_out(); // extra eviction (e.g. replayed after a restore)
        assert_eq!(m.sessions_active.get(), 0);
        assert_eq!(m.sessions_evicted.get(), 2);
        // The gauge still works afterwards.
        m.session_in();
        assert_eq!(m.sessions_active.get(), 1);
    }

    #[test]
    fn snapshot_is_json() {
        let m = EngineMetrics::with_shards(2);
        m.session_in();
        m.session_in();
        m.session_out();
        m.process_latency.record(Duration::from_micros(3));
        m.queue_depth[1].inc();
        let snap = m.snapshot();
        assert_eq!(snap["sessions"]["active"].as_u64(), Some(1));
        assert_eq!(snap["sessions"]["active_peak"].as_u64(), Some(2));
        assert_eq!(snap["latency"]["process"]["count"].as_u64(), Some(1));
        assert_eq!(
            snap["latency"]["process"]["saturated"].as_bool(),
            Some(false)
        );
        assert_eq!(snap["faults"]["quarantined"].as_u64(), Some(0));
        assert_eq!(snap["queues"][1]["depth"].as_u64(), Some(1));
        // round-trips through the serializer
        let text = serde_json::to_string(&snap).unwrap();
        assert!(serde_json::from_str(&text).is_ok());
    }

    /// The same counts are visible through the registry's uniform by-name
    /// snapshot (what `--metrics-interval-ms` and dashboards consume).
    #[test]
    fn registry_snapshot_mirrors_the_handles() {
        let m = EngineMetrics::with_shards(1);
        m.events_submitted.add(5);
        m.session_in();
        m.queue_depth[0].inc();
        let snap = m.registry().snapshot();
        assert_eq!(snap["stream.events.submitted"].as_u64(), Some(5));
        assert_eq!(snap["stream.sessions.active"]["value"].as_u64(), Some(1));
        assert_eq!(snap["stream.queue.depth.0"]["peak"].as_u64(), Some(1));
    }

    /// Golden-file schema test: a fixed sequence of counter updates and
    /// clock-derived latencies must serialize to exactly the pinned JSON.
    /// If this fails because the schema deliberately changed, update
    /// `testdata/metrics_snapshot.golden.json` alongside the consumers of
    /// the snapshot (CLI summary, dashboards).
    #[test]
    fn snapshot_schema_matches_golden_file() {
        let clock = SimClock::new();
        let m = EngineMetrics::default();
        for (advance_ns, process_ns) in [(100u64, 700u64), (250, 1_300), (4_000, 90)] {
            let submitted = clock.now_ns();
            clock.advance(advance_ns);
            m.queue_latency.record_ns(clock.now_ns() - submitted);
            let started = clock.now_ns();
            clock.advance(process_ns);
            m.process_latency.record_ns(clock.now_ns() - started);
            m.events_submitted.inc();
            m.events_processed.inc();
            m.events_ok.inc();
        }
        m.session_in();
        m.session_in();
        m.session_out();
        m.sessions_started.add(2);
        m.sessions_ended.inc();
        m.events_quarantined.add(3);
        m.worker_panics.inc();
        m.sync_type_cache(&rega_data::CacheStats {
            hits: 42,
            misses: 7,
            distinct_types: 7,
        });
        let got = serde_json::to_string_pretty(&m.snapshot()).unwrap();
        let want = include_str!("testdata/metrics_snapshot.golden.json");
        assert_eq!(
            got.trim(),
            want.trim(),
            "metrics snapshot schema drifted from the golden file"
        );
    }
}
