//! Lock-free engine metrics: monotonic counters, a live-session gauge with
//! a high-water mark, fault/quarantine accounting, and coarse power-of-two
//! latency histograms.
//!
//! All timestamps feeding the histograms come from an injectable
//! [`Clock`](crate::clock::Clock), so a simulation run with a
//! [`SimClock`](crate::clock::SimClock) produces bit-for-bit reproducible
//! snapshots — the JSON schema is pinned by a golden-file test.

use serde_json::{json, Value as Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds, the last bucket is unbounded (≥ ~33 ms).
const BUCKETS: usize = 26;

/// A coarse base-2 histogram of durations.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    /// Records one duration (saturating at `u64::MAX` nanoseconds).
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one duration given directly in nanoseconds (the form the
    /// injectable clock produces).
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// An approximate quantile (upper bound of the bucket containing it),
    /// in nanoseconds. Returns 0 with no samples.
    pub fn approx_quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    fn snapshot(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
            .map(|(i, b)| {
                json!({
                    "le_ns": 1u64 << (i + 1).min(63),
                    "count": b.load(Ordering::Relaxed),
                })
            })
            .collect();
        json!({
            "count": self.count(),
            "p50_ns_le": self.approx_quantile_ns(0.5),
            "p99_ns_le": self.approx_quantile_ns(0.99),
            "buckets": Json::Array(buckets),
        })
    }
}

/// Counters shared by the producer and all workers. Everything is relaxed
/// atomics: metrics never synchronize data, they only count.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Events submitted to the engine (accepted into a queue).
    pub events_submitted: AtomicU64,
    /// Events fully processed by a worker.
    pub events_processed: AtomicU64,
    /// Step events applied to an `Active` session without violation.
    pub events_ok: AtomicU64,
    /// Sessions created.
    pub sessions_started: AtomicU64,
    /// Sessions that received their terminal event while still valid.
    pub sessions_ended: AtomicU64,
    /// Sessions whose stream violated the specification.
    pub sessions_violated: AtomicU64,
    /// Sessions evicted (terminal event or violation) — their monitoring
    /// state has been dropped.
    pub sessions_evicted: AtomicU64,
    /// Events addressed to an already-evicted session (ignored).
    pub events_after_eviction: AtomicU64,
    /// Sessions whose view observer degraded to three-valued answers.
    pub view_degraded: AtomicU64,
    /// Currently resident sessions across all shards.
    pub sessions_active: AtomicU64,
    /// High-water mark of `sessions_active`.
    pub sessions_active_peak: AtomicU64,
    /// Transport-faulty events (bad arity, unknown state, post-eviction or
    /// post-end traffic) dropped without touching session state, in
    /// lenient mode (`quarantine_cap > 0`).
    pub events_quarantined: AtomicU64,
    /// Worker panics that were caught, with the worker respawned in place
    /// and its shard state handed back to it.
    pub worker_panics: AtomicU64,
    /// Submissions rejected with a typed error (arity validation, queue
    /// timeout, dead workers).
    pub submit_errors: AtomicU64,
    /// Per-event worker processing latency.
    pub process_latency: LatencyHistogram,
    /// Time events spent waiting in shard queues.
    pub queue_latency: LatencyHistogram,
    /// σ-type cache hits of the spec's [`SatCache`](rega_data::SatCache)
    /// (interned satisfiability/saturation lookups that were served from
    /// the memo tables). Synced from the spec by workers; stores, not
    /// increments, so replays cannot double-count.
    pub type_cache_hits: AtomicU64,
    /// σ-type cache misses (lookups that had to run the full analysis).
    pub type_cache_misses: AtomicU64,
}

impl EngineMetrics {
    /// Registers a session becoming resident.
    pub fn session_in(&self) {
        let now = self.sessions_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions_active_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Registers a session being evicted. The gauge saturates at zero
    /// rather than wrapping, so a restore-after-crash that replays an
    /// eviction can never poison the metric.
    pub fn session_out(&self) {
        let _ = self
            .sessions_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrites the σ-type cache counters with the cache's current
    /// totals (absolute stores: the `SatCache` owns the running count).
    pub fn sync_type_cache(&self, stats: &rega_data::CacheStats) {
        self.type_cache_hits.store(stats.hits, Ordering::Relaxed);
        self.type_cache_misses
            .store(stats.misses, Ordering::Relaxed);
    }

    /// A JSON snapshot of all counters and histograms.
    pub fn snapshot(&self) -> Json {
        let c = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        json!({
            "events": {
                "submitted": c(&self.events_submitted),
                "processed": c(&self.events_processed),
                "ok": c(&self.events_ok),
                "after_eviction": c(&self.events_after_eviction),
            },
            "sessions": {
                "started": c(&self.sessions_started),
                "ended": c(&self.sessions_ended),
                "violated": c(&self.sessions_violated),
                "evicted": c(&self.sessions_evicted),
                "active": c(&self.sessions_active),
                "active_peak": c(&self.sessions_active_peak),
                "view_degraded": c(&self.view_degraded),
            },
            "faults": {
                "quarantined": c(&self.events_quarantined),
                "worker_panics": c(&self.worker_panics),
                "submit_errors": c(&self.submit_errors),
            },
            "latency": {
                "process": self.process_latency.snapshot(),
                "queue": self.queue_latency.snapshot(),
            },
            "symbolic": {
                "type_cache_hits": c(&self.type_cache_hits),
                "type_cache_misses": c(&self.type_cache_misses),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, SimClock};

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket [64, 128)
        }
        h.record(Duration::from_micros(100)); // far tail
        assert_eq!(h.count(), 100);
        assert_eq!(h.approx_quantile_ns(0.5), 128);
        assert!(h.approx_quantile_ns(1.0) >= 100_000);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^i lands in bucket i (upper bound 2^(i+1)); 2^i - 1 lands one
        // bucket below. Checked through the snapshot's `le_ns` labels.
        for i in [1usize, 4, 10, 20] {
            let h = LatencyHistogram::default();
            h.record_ns(1 << i);
            let snap = h.snapshot();
            assert_eq!(
                snap["buckets"][0]["le_ns"].as_u64(),
                Some(1 << (i + 1)),
                "2^{i} must land in bucket [{}, {})",
                1u64 << i,
                1u64 << (i + 1)
            );
            let h = LatencyHistogram::default();
            h.record_ns((1 << i) - 1);
            let snap = h.snapshot();
            assert_eq!(snap["buckets"][0]["le_ns"].as_u64(), Some(1 << i));
        }
        // 0 ns is clamped into the first bucket, huge durations into the
        // last, both without panicking (saturating record).
        let h = LatencyHistogram::default();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        h.record(Duration::MAX);
        assert_eq!(h.count(), 3);
        let snap = h.snapshot();
        assert_eq!(snap["buckets"][0]["le_ns"].as_u64(), Some(2));
        assert_eq!(
            snap["buckets"][1]["le_ns"].as_u64(),
            Some(1u64 << BUCKETS.min(63)),
            "oversized samples collapse into the unbounded last bucket"
        );
        assert_eq!(snap["buckets"][1]["count"].as_u64(), Some(2));
    }

    #[test]
    fn session_gauge_saturates_instead_of_wrapping() {
        let m = EngineMetrics::default();
        m.session_in();
        m.session_out();
        m.session_out(); // extra eviction (e.g. replayed after a restore)
        assert_eq!(m.sessions_active.load(Ordering::Relaxed), 0);
        assert_eq!(m.sessions_evicted.load(Ordering::Relaxed), 2);
        // The gauge still works afterwards.
        m.session_in();
        assert_eq!(m.sessions_active.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_is_json() {
        let m = EngineMetrics::default();
        m.session_in();
        m.session_in();
        m.session_out();
        m.process_latency.record(Duration::from_micros(3));
        let snap = m.snapshot();
        assert_eq!(snap["sessions"]["active"].as_u64(), Some(1));
        assert_eq!(snap["sessions"]["active_peak"].as_u64(), Some(2));
        assert_eq!(snap["latency"]["process"]["count"].as_u64(), Some(1));
        assert_eq!(snap["faults"]["quarantined"].as_u64(), Some(0));
        // round-trips through the serializer
        let text = serde_json::to_string(&snap).unwrap();
        assert!(serde_json::from_str(&text).is_ok());
    }

    /// Golden-file schema test: a fixed sequence of counter updates and
    /// clock-derived latencies must serialize to exactly the pinned JSON.
    /// If this fails because the schema deliberately changed, update
    /// `testdata/metrics_snapshot.golden.json` alongside the consumers of
    /// the snapshot (CLI summary, dashboards).
    #[test]
    fn snapshot_schema_matches_golden_file() {
        let clock = SimClock::new();
        let m = EngineMetrics::default();
        for (advance_ns, process_ns) in [(100u64, 700u64), (250, 1_300), (4_000, 90)] {
            let submitted = clock.now_ns();
            clock.advance(advance_ns);
            m.queue_latency.record_ns(clock.now_ns() - submitted);
            let started = clock.now_ns();
            clock.advance(process_ns);
            m.process_latency.record_ns(clock.now_ns() - started);
            m.events_submitted.fetch_add(1, Ordering::Relaxed);
            m.events_processed.fetch_add(1, Ordering::Relaxed);
            m.events_ok.fetch_add(1, Ordering::Relaxed);
        }
        m.session_in();
        m.session_in();
        m.session_out();
        m.sessions_started.fetch_add(2, Ordering::Relaxed);
        m.sessions_ended.fetch_add(1, Ordering::Relaxed);
        m.events_quarantined.fetch_add(3, Ordering::Relaxed);
        m.worker_panics.fetch_add(1, Ordering::Relaxed);
        m.sync_type_cache(&rega_data::CacheStats {
            hits: 42,
            misses: 7,
            distinct_types: 7,
        });
        let got = serde_json::to_string_pretty(&m.snapshot()).unwrap();
        let want = include_str!("testdata/metrics_snapshot.golden.json");
        assert_eq!(
            got.trim(),
            want.trim(),
            "metrics snapshot schema drifted from the golden file"
        );
    }
}
