//! Injectable time sources.
//!
//! The engine never reads `Instant::now()` directly: every timestamp used
//! for latency accounting (and every fault-injected stall) goes through a
//! [`Clock`]. Production schedulers use the monotonic [`SystemClock`]; the
//! deterministic simulation uses a [`SimClock`] whose time only moves when
//! the simulation advances it, which makes latency histograms — and
//! therefore whole metrics snapshots — bit-for-bit reproducible per seed
//! and directly testable against golden files.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond time source plus the ability to "spend" time,
/// shared by the producer and all workers of one engine.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;

    /// Spends `ns` nanoseconds: real clocks sleep the calling thread,
    /// simulated clocks advance their counter. Used by fault-injected
    /// stalls and the submit retry loop.
    fn stall(&self, ns: u64);
}

/// The real wall clock, anchored at construction time.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn stall(&self, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// A simulated clock: time is a counter that moves only via
/// [`advance`](SimClock::advance) (or [`Clock::stall`]). Deterministic by
/// construction.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// A simulated clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// A simulated clock starting at `ns`.
    pub fn at(ns: u64) -> Self {
        SimClock {
            now_ns: AtomicU64::new(ns),
        }
    }

    /// Moves simulated time forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    fn stall(&self, ns: u64) {
        self.advance(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_moves_only_when_advanced() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(25);
        c.stall(17);
        assert_eq!(c.now_ns(), 42);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
