#![warn(missing_docs)]

//! `rega-stream` — a sharded, multi-session streaming engine that monitors
//! many concurrent runs of one register automaton (and, optionally, the
//! consistency of their projection view) against a single compiled
//! specification.
//!
//! The paper's workflow reading motivates the shape: a specification like
//! the reviewing workflow (Example 1 / Section 5) describes *one* paper's
//! lifecycle, but a deployed system processes thousands of papers at once,
//! each an independent run of the same automaton, with events arriving as
//! one interleaved stream. The engine demultiplexes that stream:
//!
//! * [`spec::CompiledSpec`] — everything derived from the automaton once,
//!   shared read-only (`Arc`) across all sessions and workers: state-name
//!   table, per-state transition indices, the global-constraint DFAs, and
//!   optionally the Proposition 20 / Theorem 13 projection view for
//!   observer checking.
//! * [`session::Session`] — the per-run mutable state: current
//!   configuration, the incremental
//!   [`ConstraintMonitor`](rega_core::monitor::ConstraintMonitor), the
//!   one-step-reachable control-state set, and an optional
//!   [`ViewObserver`](rega_views::ViewObserver) fed the projected tuple.
//! * [`engine::Engine`] — sessions are hashed onto shards; each shard has a
//!   bounded queue consumed by exactly one worker thread (so per-session
//!   event order is preserved), workers own ⌈shards/workers⌉ queues, and a
//!   full queue back-pressures the producer. Sessions are evicted on their
//!   terminal event, keeping resident state proportional to the number of
//!   *live* sessions, not the number ever seen.
//! * [`metrics::EngineMetrics`] — a per-engine [`rega_obs`] metrics
//!   registry: lock-free counters, queue-depth gauges per shard, and
//!   coarse power-of-two latency histograms, exportable as JSON.
//!
//! Failure semantics and testability (see the README's "Failure
//! semantics" section for the full contract):
//!
//! * [`scheduler::Scheduler`] abstracts *how* events execute. The
//!   production [`scheduler::ThreadedScheduler`] runs the worker pool; the
//!   deterministic [`sim::SimScheduler`] interleaves shard polls from a
//!   seeded RNG on one thread with a simulated [`clock::SimClock`], so
//!   whole runs — verdicts, quarantine counts, metrics snapshots — replay
//!   bit-for-bit per seed.
//! * [`fault::FaultPlan`] injects worker panics (caught and respawned with
//!   session state intact), processing stalls, and transport-corrupt /
//!   duplicated events, which lenient engines quarantine instead of
//!   violating on.
//! * [`snapshot`] serializes a drained engine's complete monitoring state
//!   so a restarted engine resumes mid-stream with identical verdicts.
//!
//! Everything is built on `std` (`std::thread`, `std::sync::mpsc`); the
//! engine introduces no external dependencies.

pub mod clock;
pub mod engine;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod scheduler;
pub mod session;
pub mod sim;
pub mod snapshot;
pub mod spec;

pub use clock::{Clock, SimClock, SystemClock};
pub use engine::{Engine, EngineConfig, EngineReport, SessionOutcome, SubmitError};
pub use event::{
    parse_event, parse_event_checked, parse_event_located, Event, EventError, LocatedEventError,
};
pub use fault::FaultPlan;
pub use metrics::EngineMetrics;
pub use scheduler::{EngineHandle, Scheduler, ThreadedScheduler};
pub use session::{Session, SessionStatus, ViolationKind};
pub use sim::SimScheduler;
pub use snapshot::SnapshotError;
pub use spec::CompiledSpec;
