#![warn(missing_docs)]

//! `rega-stream` — a sharded, multi-session streaming engine that monitors
//! many concurrent runs of one register automaton (and, optionally, the
//! consistency of their projection view) against a single compiled
//! specification.
//!
//! The paper's workflow reading motivates the shape: a specification like
//! the reviewing workflow (Example 1 / Section 5) describes *one* paper's
//! lifecycle, but a deployed system processes thousands of papers at once,
//! each an independent run of the same automaton, with events arriving as
//! one interleaved stream. The engine demultiplexes that stream:
//!
//! * [`spec::CompiledSpec`] — everything derived from the automaton once,
//!   shared read-only (`Arc`) across all sessions and workers: state-name
//!   table, per-state transition indices, the global-constraint DFAs, and
//!   optionally the Proposition 20 / Theorem 13 projection view for
//!   observer checking.
//! * [`session::Session`] — the per-run mutable state: current
//!   configuration, the incremental
//!   [`ConstraintMonitor`](rega_core::monitor::ConstraintMonitor), the
//!   one-step-reachable control-state set, and an optional
//!   [`ViewObserver`](rega_views::ViewObserver) fed the projected tuple.
//! * [`engine::Engine`] — sessions are hashed onto shards; each shard has a
//!   bounded queue consumed by exactly one worker thread (so per-session
//!   event order is preserved), workers own ⌈shards/workers⌉ queues, and a
//!   full queue back-pressures the producer. Sessions are evicted on their
//!   terminal event, keeping resident state proportional to the number of
//!   *live* sessions, not the number ever seen.
//! * [`metrics::EngineMetrics`] — lock-free counters and coarse
//!   power-of-two latency histograms, exportable as JSON.
//!
//! Everything is built on `std` (`std::thread`, `std::sync::mpsc`); the
//! engine introduces no external dependencies.

pub mod engine;
pub mod event;
pub mod metrics;
pub mod session;
pub mod spec;

pub use engine::{Engine, EngineConfig, EngineReport, SessionOutcome};
pub use event::{parse_event, Event, EventError};
pub use metrics::EngineMetrics;
pub use session::{Session, SessionStatus, ViolationKind};
pub use spec::CompiledSpec;
