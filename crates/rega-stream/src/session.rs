//! Per-session monitoring state.

use crate::spec::CompiledSpec;
use rega_core::monitor::ConstraintMonitor;
use rega_core::StateId;
use rega_data::Value;
use rega_views::observer::{Verdict, ViewObserver};
use std::fmt;

/// Why a session's event stream stopped being a run of the specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The event named a control state the automaton does not have.
    UnknownState(String),
    /// The first event of the session named a non-initial state.
    NotInitial(String),
    /// The event's register tuple has the wrong arity.
    Arity {
        /// Arity the event carried.
        got: usize,
        /// The automaton's register count.
        want: usize,
    },
    /// No transition of the automaton explains the observed state change
    /// (either the target is not a one-step successor, or no σ-type between
    /// the two states is satisfied by the observed register change).
    NoTransition {
        /// Name of the source state.
        from: String,
        /// Name of the claimed target state.
        to: String,
    },
    /// A global (in)equality constraint fired and failed.
    Constraint {
        /// Index of the violated constraint.
        constraint: usize,
    },
    /// The projected tuple stream is not a prefix of any view run.
    ViewInconsistent,
    /// An event arrived for a session that already ended.
    AfterEnd,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::UnknownState(s) => write!(f, "unknown state `{s}`"),
            ViolationKind::NotInitial(s) => write!(f, "state `{s}` is not initial"),
            ViolationKind::Arity { got, want } => {
                write!(f, "register tuple has arity {got}, automaton has {want}")
            }
            ViolationKind::NoTransition { from, to } => {
                write!(f, "no enabled transition `{from}` -> `{to}`")
            }
            ViolationKind::Constraint { constraint } => {
                write!(f, "global constraint {constraint} violated")
            }
            ViolationKind::ViewInconsistent => write!(f, "projected trace leaves the view"),
            ViolationKind::AfterEnd => write!(f, "event after session end"),
        }
    }
}

/// Lifecycle of a session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// The observed prefix is (so far) a valid run prefix.
    Active,
    /// The session received its terminal event while still valid.
    Ended,
    /// The session's stream violated the specification.
    Violated(ViolationKind),
}

/// The mutable monitoring state of one session: current configuration,
/// incremental constraint monitor, the one-step-reachable control-state
/// set (served from the compiled spec), and the optional view observer.
#[derive(Clone, Debug)]
pub struct Session {
    status: SessionStatus,
    /// Current `(state, registers)`, absent before the first event.
    cur: Option<(StateId, Vec<Value>)>,
    monitor: ConstraintMonitor,
    observer: Option<ViewObserver>,
    /// Events consumed (including the one that violated, if any).
    pub events: u64,
    /// Whether the view observer ever degraded to three-valued answers.
    pub view_degraded: bool,
}

impl Session {
    /// A fresh session against `spec`. An observer is attached iff the
    /// spec was compiled with a view.
    pub fn new(spec: &CompiledSpec, max_view_frontier: usize) -> Self {
        Session {
            status: SessionStatus::Active,
            cur: None,
            monitor: ConstraintMonitor::new(spec.ext()),
            observer: spec
                .view()
                .map(|_| ViewObserver::with_max_frontier(max_view_frontier)),
            events: 0,
            view_degraded: false,
        }
    }

    /// The session's lifecycle status.
    pub fn status(&self) -> &SessionStatus {
        &self.status
    }

    /// Current control state, if any event has been consumed.
    pub fn state(&self) -> Option<StateId> {
        self.cur.as_ref().map(|(s, _)| *s)
    }

    /// The control states an in-spec next event could name.
    pub fn reachable<'s>(&self, spec: &'s CompiledSpec) -> &'s [StateId] {
        match &self.cur {
            Some((s, _)) => spec.successors(*s),
            None => &[],
        }
    }

    /// Size of the constraint-monitor configuration plus the observer
    /// frontier — the session's memory footprint proxy.
    pub fn resident_size(&self) -> usize {
        self.monitor.active_size()
            + self
                .observer
                .as_ref()
                .map_or(0, ViewObserver::frontier_size)
    }

    /// Consumes one step event. Returns the status after the event; a
    /// violation is sticky and marks the session for eviction.
    pub fn step(&mut self, spec: &CompiledSpec, state: &str, regs: &[Value]) -> &SessionStatus {
        self.events += 1;
        if self.status != SessionStatus::Active {
            if !matches!(self.status, SessionStatus::Violated(_)) {
                self.status = SessionStatus::Violated(ViolationKind::AfterEnd);
            }
            return &self.status;
        }
        if let Some(kind) = self.try_step(spec, state, regs) {
            self.status = SessionStatus::Violated(kind);
        }
        &self.status
    }

    fn try_step(
        &mut self,
        spec: &CompiledSpec,
        state: &str,
        regs: &[Value],
    ) -> Option<ViolationKind> {
        let k = spec.ext().ra().k() as usize;
        if regs.len() != k {
            return Some(ViolationKind::Arity {
                got: regs.len(),
                want: k,
            });
        }
        let Some(sid) = spec.state_id(state) else {
            return Some(ViolationKind::UnknownState(state.to_string()));
        };
        match &self.cur {
            None => {
                if !spec.ext().ra().initial_states().any(|s| s == sid) {
                    return Some(ViolationKind::NotInitial(state.to_string()));
                }
            }
            Some((from, pre)) => {
                if !spec.transition_enabled(*from, pre, sid, regs) {
                    return Some(ViolationKind::NoTransition {
                        from: spec.ext().ra().state_name(*from).to_string(),
                        to: state.to_string(),
                    });
                }
            }
        }
        if let Some(v) = self.monitor.step(spec.ext(), sid, regs) {
            return Some(ViolationKind::Constraint {
                constraint: v.constraint,
            });
        }
        if let (Some(observer), Some(part)) = (&mut self.observer, spec.view()) {
            let visible = &regs[..part.m as usize];
            match observer.observe(&part.view, spec.db(), visible) {
                Verdict::Consistent => {}
                Verdict::Violation => return Some(ViolationKind::ViewInconsistent),
                Verdict::Unknown => self.view_degraded = true,
            }
            if observer.overflowed() {
                self.view_degraded = true;
            }
        }
        self.cur = Some((sid, regs.to_vec()));
        None
    }

    /// Consumes the terminal event.
    pub fn end(&mut self) -> &SessionStatus {
        self.events += 1;
        if self.status == SessionStatus::Active {
            self.status = SessionStatus::Ended;
        }
        &self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::spec::parse_spec;
    use rega_data::{Database, Schema};

    fn two_state_spec(view: Option<u16>) -> CompiledSpec {
        // One register; `a` keeps it, moving to `b` frees it.
        let text = "\
registers 1
state a init accept
state b accept
trans a -> a : x1 = y1
trans a -> b :
trans b -> b :
";
        let ext = parse_spec(text).unwrap();
        CompiledSpec::compile(ext, Database::new(Schema::empty()), view).unwrap()
    }

    #[test]
    fn valid_session_lifecycle() {
        let spec = two_state_spec(None);
        let mut s = Session::new(&spec, 64);
        assert_eq!(s.step(&spec, "a", &[Value(5)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "a", &[Value(5)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "b", &[Value(7)]), &SessionStatus::Active);
        assert_eq!(s.reachable(&spec), &[StateId(1)]);
        assert_eq!(s.end(), &SessionStatus::Ended);
        assert_eq!(s.events, 4);
    }

    #[test]
    fn bad_transitions_are_caught() {
        let spec = two_state_spec(None);
        // not initial
        let mut s = Session::new(&spec, 64);
        assert!(matches!(
            s.step(&spec, "b", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::NotInitial(_))
        ));
        // unknown state
        let mut s = Session::new(&spec, 64);
        assert!(matches!(
            s.step(&spec, "zz", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::UnknownState(_))
        ));
        // arity
        let mut s = Session::new(&spec, 64);
        assert!(matches!(
            s.step(&spec, "a", &[Value(1), Value(2)]),
            SessionStatus::Violated(ViolationKind::Arity { .. })
        ));
        // a -> a must keep the register
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        assert!(matches!(
            s.step(&spec, "a", &[Value(2)]),
            SessionStatus::Violated(ViolationKind::NoTransition { .. })
        ));
        // b -> a does not exist
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        s.step(&spec, "b", &[Value(1)]);
        assert!(matches!(
            s.step(&spec, "a", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::NoTransition { .. })
        ));
        // events after end
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        s.end();
        assert!(matches!(
            s.step(&spec, "a", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::AfterEnd)
        ));
    }

    #[test]
    fn view_observer_rides_along() {
        let spec = two_state_spec(Some(1));
        let mut s = Session::new(&spec, 64);
        assert_eq!(s.step(&spec, "a", &[Value(5)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "b", &[Value(9)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "b", &[Value(2)]), &SessionStatus::Active);
        assert!(s.resident_size() > 0);
    }
}
