//! Per-session monitoring state, including snapshot / restore.

use crate::spec::CompiledSpec;
use rega_core::monitor::ConstraintMonitor;
use rega_core::StateId;
use rega_data::Value;
use rega_views::observer::{ObserverSnapshot, Verdict, ViewObserver};
use serde_json::{json, Value as Json};
use std::fmt;

/// Why a session's event stream stopped being a run of the specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The event named a control state the automaton does not have.
    UnknownState(String),
    /// The first event of the session named a non-initial state.
    NotInitial(String),
    /// The event's register tuple has the wrong arity.
    Arity {
        /// Arity the event carried.
        got: usize,
        /// The automaton's register count.
        want: usize,
    },
    /// No transition of the automaton explains the observed state change
    /// (either the target is not a one-step successor, or no σ-type between
    /// the two states is satisfied by the observed register change).
    NoTransition {
        /// Name of the source state.
        from: String,
        /// Name of the claimed target state.
        to: String,
    },
    /// A global (in)equality constraint fired and failed.
    Constraint {
        /// Index of the violated constraint.
        constraint: usize,
    },
    /// The projected tuple stream is not a prefix of any view run.
    ViewInconsistent,
    /// An event arrived for a session that already ended.
    AfterEnd,
    /// The session exceeded its per-session quarantine budget: more
    /// transport-faulty events than `quarantine_cap` allows.
    QuarantineOverflow,
    /// Processing an event for this session panicked twice (a poisoned
    /// event); the session's state can no longer be trusted.
    WorkerPanic,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::UnknownState(s) => write!(f, "unknown state `{s}`"),
            ViolationKind::NotInitial(s) => write!(f, "state `{s}` is not initial"),
            ViolationKind::Arity { got, want } => {
                write!(f, "register tuple has arity {got}, automaton has {want}")
            }
            ViolationKind::NoTransition { from, to } => {
                write!(f, "no enabled transition `{from}` -> `{to}`")
            }
            ViolationKind::Constraint { constraint } => {
                write!(f, "global constraint {constraint} violated")
            }
            ViolationKind::ViewInconsistent => write!(f, "projected trace leaves the view"),
            ViolationKind::AfterEnd => write!(f, "event after session end"),
            ViolationKind::QuarantineOverflow => {
                write!(f, "per-session quarantine budget exhausted")
            }
            ViolationKind::WorkerPanic => write!(f, "event processing panicked (poisoned)"),
        }
    }
}

/// Lifecycle of a session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// The observed prefix is (so far) a valid run prefix.
    Active,
    /// The session received its terminal event while still valid.
    Ended,
    /// The session's stream violated the specification.
    Violated(ViolationKind),
}

/// The mutable monitoring state of one session: current configuration,
/// incremental constraint monitor, the one-step-reachable control-state
/// set (served from the compiled spec), and the optional view observer.
#[derive(Clone, Debug)]
pub struct Session {
    status: SessionStatus,
    /// Current `(state, registers)`, absent before the first event.
    cur: Option<(StateId, Vec<Value>)>,
    monitor: ConstraintMonitor,
    observer: Option<ViewObserver>,
    /// Events consumed (including the one that violated, if any).
    pub events: u64,
    /// Whether the view observer ever degraded to three-valued answers.
    pub view_degraded: bool,
    /// Transport-faulty events dropped for this session (lenient mode).
    pub quarantined: u64,
}

impl Session {
    /// A fresh session against `spec`. An observer is attached iff the
    /// spec was compiled with a view.
    pub fn new(spec: &CompiledSpec, max_view_frontier: usize) -> Self {
        Session {
            status: SessionStatus::Active,
            cur: None,
            monitor: ConstraintMonitor::new(spec.ext()),
            observer: spec
                .view()
                .map(|_| ViewObserver::with_max_frontier(max_view_frontier)),
            events: 0,
            view_degraded: false,
            quarantined: 0,
        }
    }

    /// The session's lifecycle status.
    pub fn status(&self) -> &SessionStatus {
        &self.status
    }

    /// Marks the session violated (engine use: quarantine-cap overflow and
    /// poisoned-event eviction).
    pub(crate) fn force_violation(&mut self, kind: ViolationKind) {
        self.status = SessionStatus::Violated(kind);
    }

    /// Current control state, if any event has been consumed.
    pub fn state(&self) -> Option<StateId> {
        self.cur.as_ref().map(|(s, _)| *s)
    }

    /// The control states an in-spec next event could name.
    pub fn reachable<'s>(&self, spec: &'s CompiledSpec) -> &'s [StateId] {
        match &self.cur {
            Some((s, _)) => spec.successors(*s),
            None => &[],
        }
    }

    /// Size of the constraint-monitor configuration plus the observer
    /// frontier — the session's memory footprint proxy.
    pub fn resident_size(&self) -> usize {
        self.monitor.active_size()
            + self
                .observer
                .as_ref()
                .map_or(0, ViewObserver::frontier_size)
    }

    /// Consumes one step event. Returns the status after the event; a
    /// violation is sticky and marks the session for eviction.
    pub fn step(&mut self, spec: &CompiledSpec, state: &str, regs: &[Value]) -> &SessionStatus {
        self.events += 1;
        if self.status != SessionStatus::Active {
            if !matches!(self.status, SessionStatus::Violated(_)) {
                self.status = SessionStatus::Violated(ViolationKind::AfterEnd);
            }
            return &self.status;
        }
        if let Some(kind) = self.try_step(spec, state, regs) {
            self.status = SessionStatus::Violated(kind);
        }
        &self.status
    }

    /// The transport-level fault a step event would be rejected for,
    /// checked without mutating any session state — the lenient
    /// (quarantining) engine path classifies events with this before
    /// deciding whether to feed them to [`step`](Self::step).
    pub fn transport_fault(
        &self,
        spec: &CompiledSpec,
        state: &str,
        regs: &[Value],
    ) -> Option<ViolationKind> {
        if self.status != SessionStatus::Active {
            return Some(ViolationKind::AfterEnd);
        }
        let k = spec.registers();
        if regs.len() != k {
            return Some(ViolationKind::Arity {
                got: regs.len(),
                want: k,
            });
        }
        if spec.state_id(state).is_none() {
            return Some(ViolationKind::UnknownState(state.to_string()));
        }
        None
    }

    fn try_step(
        &mut self,
        spec: &CompiledSpec,
        state: &str,
        regs: &[Value],
    ) -> Option<ViolationKind> {
        let k = spec.registers();
        if regs.len() != k {
            return Some(ViolationKind::Arity {
                got: regs.len(),
                want: k,
            });
        }
        let Some(sid) = spec.state_id(state) else {
            return Some(ViolationKind::UnknownState(state.to_string()));
        };
        match &self.cur {
            None => {
                if !spec.ext().ra().initial_states().any(|s| s == sid) {
                    return Some(ViolationKind::NotInitial(state.to_string()));
                }
            }
            Some((from, pre)) => {
                if !spec.transition_enabled(*from, pre, sid, regs) {
                    return Some(ViolationKind::NoTransition {
                        from: spec.ext().ra().state_name(*from).to_string(),
                        to: state.to_string(),
                    });
                }
            }
        }
        if let Some(v) = self.monitor.step(spec.ext(), sid, regs) {
            return Some(ViolationKind::Constraint {
                constraint: v.constraint,
            });
        }
        if let (Some(observer), Some(part)) = (&mut self.observer, spec.view()) {
            let visible = &regs[..part.m as usize];
            match observer.observe(&part.view, spec.db(), visible) {
                Verdict::Consistent => {}
                Verdict::Violation => return Some(ViolationKind::ViewInconsistent),
                Verdict::Unknown => self.view_degraded = true,
            }
            if observer.overflowed() {
                self.view_degraded = true;
            }
        }
        self.cur = Some((sid, regs.to_vec()));
        None
    }

    /// Consumes the terminal event.
    pub fn end(&mut self) -> &SessionStatus {
        self.events += 1;
        if self.status == SessionStatus::Active {
            self.status = SessionStatus::Ended;
        }
        &self.status
    }

    /// Serializes the complete mutable state — status, current
    /// configuration, constraint-monitor slots, observer frontier, and the
    /// bookkeeping counters — as JSON, so a restarted engine can resume
    /// this session mid-stream via [`restore`](Self::restore).
    pub fn snapshot(&self) -> Json {
        json!({
            "status": crate::snapshot::status_to_json(&self.status),
            "cur": match &self.cur {
                None => Json::Null,
                Some((s, regs)) => json!({
                    "state": s.0,
                    "regs": regs.iter().map(|v| v.raw()).collect::<Vec<u64>>(),
                }),
            },
            "monitor": crate::snapshot::slots_to_json(&self.monitor.export_slots()),
            "observer": match &self.observer {
                None => Json::Null,
                Some(obs) => crate::snapshot::observer_to_json(&obs.export()),
            },
            "events": self.events,
            "view_degraded": self.view_degraded,
            "quarantined": self.quarantined,
        })
    }

    /// Rebuilds a session from a [`snapshot`](Self::snapshot) against the
    /// same compiled spec. The restored session continues exactly where
    /// the snapshotted one stopped (asserted differentially by the
    /// `stream_faults` suite).
    pub fn restore(
        spec: &CompiledSpec,
        snap: &Json,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{err, json_to_observer, json_to_slots, status_from_json};
        let status = status_from_json(&snap["status"])?;
        let cur = match &snap["cur"] {
            Json::Null => None,
            cur => {
                let sid = cur["state"]
                    .as_u64()
                    .ok_or_else(|| err("cur.state must be a state id"))?;
                if sid as usize >= spec.ext().ra().num_states() {
                    return Err(err("cur.state out of range for this spec"));
                }
                let regs: Vec<Value> = cur["regs"]
                    .as_array()
                    .ok_or_else(|| err("cur.regs must be an array"))?
                    .iter()
                    .map(|v| v.as_u64().map(Value).ok_or_else(|| err("bad register")))
                    .collect::<Result<_, _>>()?;
                if regs.len() != spec.registers() {
                    return Err(err("cur.regs arity does not match the spec"));
                }
                Some((StateId(sid as u32), regs))
            }
        };
        let monitor = ConstraintMonitor::from_slots(spec.ext(), &json_to_slots(&snap["monitor"])?)
            .ok_or_else(|| err("monitor slots do not fit this spec"))?;
        let observer = match (&snap["observer"], spec.view()) {
            (Json::Null, _) => None,
            (obs, Some(part)) => {
                let exported: ObserverSnapshot = json_to_observer(obs)?;
                Some(
                    ViewObserver::from_snapshot(&part.view, &exported)
                        .ok_or_else(|| err("observer snapshot does not fit the view"))?,
                )
            }
            (_, None) => return Err(err("snapshot has an observer but the spec has no view")),
        };
        Ok(Session {
            status,
            cur,
            monitor,
            observer,
            events: snap["events"].as_u64().unwrap_or(0),
            view_degraded: snap["view_degraded"].as_bool().unwrap_or(false),
            quarantined: snap["quarantined"].as_u64().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::spec::parse_spec;
    use rega_data::{Database, Schema};

    fn two_state_spec(view: Option<u16>) -> CompiledSpec {
        // One register; `a` keeps it, moving to `b` frees it.
        let text = "\
registers 1
state a init accept
state b accept
trans a -> a : x1 = y1
trans a -> b :
trans b -> b :
";
        let ext = parse_spec(text).unwrap();
        CompiledSpec::compile(ext, Database::new(Schema::empty()), view).unwrap()
    }

    #[test]
    fn valid_session_lifecycle() {
        let spec = two_state_spec(None);
        let mut s = Session::new(&spec, 64);
        assert_eq!(s.step(&spec, "a", &[Value(5)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "a", &[Value(5)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "b", &[Value(7)]), &SessionStatus::Active);
        assert_eq!(s.reachable(&spec), &[StateId(1)]);
        assert_eq!(s.end(), &SessionStatus::Ended);
        assert_eq!(s.events, 4);
    }

    #[test]
    fn bad_transitions_are_caught() {
        let spec = two_state_spec(None);
        // not initial
        let mut s = Session::new(&spec, 64);
        assert!(matches!(
            s.step(&spec, "b", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::NotInitial(_))
        ));
        // unknown state
        let mut s = Session::new(&spec, 64);
        assert!(matches!(
            s.step(&spec, "zz", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::UnknownState(_))
        ));
        // arity
        let mut s = Session::new(&spec, 64);
        assert!(matches!(
            s.step(&spec, "a", &[Value(1), Value(2)]),
            SessionStatus::Violated(ViolationKind::Arity { .. })
        ));
        // a -> a must keep the register
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        assert!(matches!(
            s.step(&spec, "a", &[Value(2)]),
            SessionStatus::Violated(ViolationKind::NoTransition { .. })
        ));
        // b -> a does not exist
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        s.step(&spec, "b", &[Value(1)]);
        assert!(matches!(
            s.step(&spec, "a", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::NoTransition { .. })
        ));
        // events after end
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        s.end();
        assert!(matches!(
            s.step(&spec, "a", &[Value(1)]),
            SessionStatus::Violated(ViolationKind::AfterEnd)
        ));
    }

    #[test]
    fn transport_faults_are_classified_without_mutation() {
        let spec = two_state_spec(None);
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(1)]);
        let before = s.snapshot();
        assert!(matches!(
            s.transport_fault(&spec, "a", &[Value(1), Value(2)]),
            Some(ViolationKind::Arity { got: 2, want: 1 })
        ));
        assert!(matches!(
            s.transport_fault(&spec, "nope", &[Value(1)]),
            Some(ViolationKind::UnknownState(_))
        ));
        // A semantically-wrong but transport-clean event is NOT a
        // transport fault (it must go through `step` and violate).
        assert!(s.transport_fault(&spec, "a", &[Value(9)]).is_none());
        assert_eq!(s.snapshot(), before, "classification must not mutate");
        s.end();
        assert!(matches!(
            s.transport_fault(&spec, "a", &[Value(1)]),
            Some(ViolationKind::AfterEnd)
        ));
    }

    #[test]
    fn view_observer_rides_along() {
        let spec = two_state_spec(Some(1));
        let mut s = Session::new(&spec, 64);
        assert_eq!(s.step(&spec, "a", &[Value(5)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "b", &[Value(9)]), &SessionStatus::Active);
        assert_eq!(s.step(&spec, "b", &[Value(2)]), &SessionStatus::Active);
        assert!(s.resident_size() > 0);
    }

    #[test]
    fn snapshot_restore_resumes_identically_with_view() {
        let spec = two_state_spec(Some(1));
        let mut s = Session::new(&spec, 64);
        s.step(&spec, "a", &[Value(5)]);
        s.step(&spec, "a", &[Value(5)]);
        // Serialize through actual JSON text, as a restart would.
        let text = serde_json::to_string(&s.snapshot()).unwrap();
        let snap = serde_json::from_str(&text).unwrap();
        let mut r = Session::restore(&spec, &snap).expect("restore");
        assert_eq!(r.events, s.events);
        assert_eq!(r.state(), s.state());
        for (state, v) in [("b", 9u64), ("b", 2), ("a", 2)] {
            assert_eq!(
                s.step(&spec, state, &[Value(v)]),
                r.step(&spec, state, &[Value(v)]),
                "restored session diverged at {state}({v})"
            );
        }
        // Corrupt snapshots are rejected with an error, not a panic.
        let bad = serde_json::from_str(r#"{"status": {"kind": "???"}}"#).unwrap();
        assert!(Session::restore(&spec, &bad).is_err());
    }
}
