//! End-to-end engine tests: correctness of the sharded pipeline and the
//! bounded-memory (eviction) behavior under a large interleaved stream.

use rega_core::spec::parse_spec;
use rega_data::{Database, Schema};
use rega_stream::{parse_event, CompiledSpec, Engine, EngineConfig, SessionStatus};
use std::sync::Arc;

fn counter_spec() -> Arc<CompiledSpec> {
    // One register that must strictly keep its value in `run`, with an exit
    // to `done`.
    let text = "\
registers 1
state run init accept
state done accept
trans run -> run : x1 = y1
trans run -> done :
trans done -> done :
";
    let ext = parse_spec(text).unwrap();
    Arc::new(CompiledSpec::compile(ext, Database::new(Schema::empty()), None).unwrap())
}

#[test]
fn verdicts_are_per_session_and_order_preserving() {
    let spec = counter_spec();
    let mut engine = Engine::start(
        spec,
        EngineConfig {
            shards: 4,
            workers: 2,
            queue_capacity: 16,
            max_view_frontier: 16,
            ..EngineConfig::default()
        },
    );
    // good: run(1) run(1) done(2) end — valid and ended
    // bad:  run(1) run(2) — the register changed inside `run`
    // open: run(7) — valid but never ended
    for line in [
        r#"{"session": "good", "state": "run", "regs": [1]}"#,
        r#"{"session": "bad", "state": "run", "regs": [1]}"#,
        r#"{"session": "good", "state": "run", "regs": [1]}"#,
        r#"{"session": "open", "state": "run", "regs": [7]}"#,
        r#"{"session": "bad", "state": "run", "regs": [2]}"#,
        r#"{"session": "good", "state": "done", "regs": [2]}"#,
        r#"{"session": "good", "end": true}"#,
        r#"{"session": "bad", "state": "run", "regs": [2]}"#, // after eviction
    ] {
        engine.submit(parse_event(line).unwrap()).unwrap();
    }
    let report = engine.finish();
    assert_eq!(report.outcomes.len(), 3);
    let by_name = |n: &str| {
        report
            .outcomes
            .iter()
            .find(|o| o.session == n)
            .unwrap_or_else(|| panic!("missing outcome {n}"))
    };
    assert_eq!(by_name("good").status, SessionStatus::Ended);
    assert_eq!(by_name("good").events, 4);
    assert!(matches!(by_name("bad").status, SessionStatus::Violated(_)));
    assert_eq!(by_name("open").status, SessionStatus::Active);
    assert_eq!(report.violations().count(), 1);
    let m = &report.metrics;
    assert_eq!(m.events_submitted.get(), 8);
    assert_eq!(m.events_processed.get(), 8);
    assert_eq!(m.events_after_eviction.get(), 1);
    assert_eq!(m.sessions_started.get(), 3);
    assert_eq!(m.sessions_evicted.get(), 3);
    assert_eq!(m.sessions_active.get(), 0);
}

#[test]
fn hundred_thousand_events_thousand_sessions_bounded_memory() {
    // 2000 sessions × 50 events, streamed in waves of 100 concurrently
    // live sessions. Eviction on the terminal event must keep the
    // high-water mark of resident sessions at the wave size, not the
    // total session count.
    const WAVES: usize = 20;
    const WAVE_SESSIONS: usize = 100;
    const STEPS: usize = 49; // + end event = 50 events/session

    let spec = counter_spec();
    let mut engine = Engine::start(
        spec,
        EngineConfig {
            shards: 8,
            workers: 4,
            queue_capacity: 256,
            max_view_frontier: 16,
            ..EngineConfig::default()
        },
    );
    let mut submitted = 0u64;
    for wave in 0..WAVES {
        // Interleave the wave's sessions step by step, like a real
        // multiplexed stream.
        for step in 0..STEPS {
            for s in 0..WAVE_SESSIONS {
                let id = wave * WAVE_SESSIONS + s;
                let line = format!(r#"{{"session": "s{id}", "state": "run", "regs": [{id}]}}"#);
                engine.submit(parse_event(&line).unwrap()).unwrap();
                submitted += 1;
                let _ = step;
            }
        }
        for s in 0..WAVE_SESSIONS {
            let id = wave * WAVE_SESSIONS + s;
            let line = format!(r#"{{"session": "s{id}", "end": true}}"#);
            engine.submit(parse_event(&line).unwrap()).unwrap();
            submitted += 1;
        }
    }
    assert_eq!(submitted, 100_000);
    let report = engine.finish();
    assert_eq!(report.outcomes.len(), WAVES * WAVE_SESSIONS);
    assert!(report
        .outcomes
        .iter()
        .all(|o| o.status == SessionStatus::Ended));
    let m = &report.metrics;
    assert_eq!(m.events_processed.get(), 100_000);
    assert_eq!(m.sessions_evicted.get(), 2000);
    assert_eq!(m.sessions_active.get(), 0);
    // The bounded-memory claim: never more than one wave (plus slack for
    // queued cross-wave events) resident at once.
    let peak = m.sessions_active.peak();
    assert!(
        peak <= 2 * WAVE_SESSIONS as u64,
        "peak resident sessions {peak} exceeds the wave size bound"
    );
    // Latency histograms actually saw the traffic.
    assert_eq!(m.process_latency.count(), 100_000);
    let snapshot = m.snapshot();
    assert_eq!(
        snapshot["events"]["processed"].as_u64(),
        Some(100_000),
        "metrics snapshot must reflect the stream"
    );
}

#[test]
fn backpressure_blocks_instead_of_dropping() {
    // A tiny queue with a slow consumer still delivers everything.
    let spec = counter_spec();
    let mut engine = Engine::start(
        spec,
        EngineConfig {
            shards: 1,
            workers: 1,
            queue_capacity: 2,
            max_view_frontier: 4,
            ..EngineConfig::default()
        },
    );
    for i in 0..500 {
        let line = format!(r#"{{"session": "only", "state": "run", "regs": [{}]}}"#, 42);
        engine.submit(parse_event(&line).unwrap()).unwrap();
        let _ = i;
    }
    let report = engine.finish();
    assert_eq!(report.metrics.events_processed.get(), 500);
    assert_eq!(report.outcomes.len(), 1);
    assert_eq!(report.outcomes[0].events, 500);
}
