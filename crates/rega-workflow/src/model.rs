//! The reviewing-workflow register automata.

use rega_core::{RegisterAutomaton, StateId};
use rega_data::{Literal, RegIdx, Schema, SigmaType, Term};

/// Register roles of the workflow automata. The abstract model uses the
/// first three; the database model adds the topic register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Roles {
    /// Register holding the paper id.
    pub paper: RegIdx,
    /// Register holding the author.
    pub author: RegIdx,
    /// Register holding the current reviewer (or the paper id as the
    /// "unassigned" placeholder).
    pub reviewer: RegIdx,
    /// Register holding the paper's topic (database model only).
    pub topic: Option<RegIdx>,
}

/// A built workflow: the automaton plus its named states and register
/// roles.
#[derive(Clone, Debug)]
pub struct Workflow {
    /// The register automaton.
    pub automaton: RegisterAutomaton,
    /// Register roles.
    pub roles: Roles,
    /// The `start` state (initial).
    pub start: StateId,
    /// The `submitted` state.
    pub submitted: StateId,
    /// The `under_review` state.
    pub under_review: StateId,
    /// The `revising` state.
    pub revising: StateId,
    /// The `accepted` state (Büchi).
    pub accepted: StateId,
}

fn propagate(ty: &mut SigmaType, regs: &[u16]) {
    for &r in regs {
        ty.add(Literal::eq(Term::x(r), Term::y(r)));
    }
}

/// The no-database reviewing workflow (Sections 4–5 setting): three
/// registers `[paper, author, reviewer]`; the reviewer is chosen
/// nondeterministically, distinct from the author, with the paper id
/// doubling as the "unassigned" placeholder.
pub fn abstract_model() -> Workflow {
    let k = 3;
    let mut a = RegisterAutomaton::new(k, Schema::empty());
    let start = a.add_state("start");
    let submitted = a.add_state("submitted");
    let under_review = a.add_state("under_review");
    let revising = a.add_state("revising");
    let accepted = a.add_state("accepted");
    a.set_initial(start);
    a.set_accepting(accepted);

    // start → submitted: choose paper and author; reviewer unassigned.
    let mut t = SigmaType::empty(k);
    t.add(Literal::eq(Term::y(2), Term::y(0)));
    t.add(Literal::neq(Term::y(0), Term::y(1))); // a paper is not an author
    a.add_transition(start, t, submitted).expect("valid");

    // submitted → under_review: assign a reviewer ≠ author, ≠ placeholder.
    let mut t = SigmaType::empty(k);
    propagate(&mut t, &[0, 1]);
    t.add(Literal::neq(Term::y(2), Term::y(1)));
    t.add(Literal::neq(Term::y(2), Term::y(0)));
    a.add_transition(submitted, t.clone(), under_review)
        .expect("valid");
    // revising → under_review: assign a (possibly new) reviewer.
    a.add_transition(revising, t, under_review).expect("valid");

    // under_review → under_review: the review round continues.
    let mut t = SigmaType::empty(k);
    propagate(&mut t, &[0, 1, 2]);
    a.add_transition(under_review, t.clone(), under_review)
        .expect("valid");
    // under_review → accepted.
    a.add_transition(under_review, t.clone(), accepted)
        .expect("valid");
    // accepted → accepted (terminal loop).
    a.add_transition(accepted, t, accepted).expect("valid");

    // under_review → revising: reviewer resigns/decision deferred.
    let mut t = SigmaType::empty(k);
    propagate(&mut t, &[0, 1]);
    t.add(Literal::eq(Term::y(2), Term::y(0)));
    a.add_transition(under_review, t, revising).expect("valid");

    Workflow {
        automaton: a,
        roles: Roles {
            paper: RegIdx(0),
            author: RegIdx(1),
            reviewer: RegIdx(2),
            topic: None,
        },
        start,
        submitted,
        under_review,
        revising,
        accepted,
    }
}

/// The database-backed reviewing workflow: four registers
/// `[paper, author, reviewer, topic]` over the schema
/// `Paper/1, Author/1, Reviewer/1, PaperTopic/2, Prefers/2`. Reviewers are
/// assigned by topic preference, exactly as the introduction sketches.
pub fn database_model() -> Workflow {
    let schema = Schema::with(
        &[
            ("Paper", 1),
            ("Author", 1),
            ("Reviewer", 1),
            ("PaperTopic", 2),
            ("Prefers", 2),
        ],
        &[],
    );
    let paper = schema.relation("Paper").expect("declared");
    let author = schema.relation("Author").expect("declared");
    let reviewer = schema.relation("Reviewer").expect("declared");
    let paper_topic = schema.relation("PaperTopic").expect("declared");
    let prefers = schema.relation("Prefers").expect("declared");

    let k = 4;
    let mut a = RegisterAutomaton::new(k, schema);
    let start = a.add_state("start");
    let submitted = a.add_state("submitted");
    let under_review = a.add_state("under_review");
    let revising = a.add_state("revising");
    let accepted = a.add_state("accepted");
    a.set_initial(start);
    a.set_accepting(accepted);

    // start → submitted: a real paper and author; reviewer/topic unassigned.
    let mut t = SigmaType::empty(k);
    t.add(Literal::rel(paper, vec![Term::y(0)]));
    t.add(Literal::rel(author, vec![Term::y(1)]));
    t.add(Literal::eq(Term::y(2), Term::y(0)));
    t.add(Literal::eq(Term::y(3), Term::y(0)));
    a.add_transition(start, t, submitted).expect("valid");

    // submitted/revising → under_review: assign by topic preference.
    let mut t = SigmaType::empty(k);
    propagate(&mut t, &[0, 1]);
    t.add(Literal::rel(paper_topic, vec![Term::y(0), Term::y(3)]));
    t.add(Literal::rel(prefers, vec![Term::y(2), Term::y(3)]));
    t.add(Literal::rel(reviewer, vec![Term::y(2)]));
    t.add(Literal::neq(Term::y(2), Term::y(1)));
    a.add_transition(submitted, t.clone(), under_review)
        .expect("valid");
    a.add_transition(revising, t, under_review).expect("valid");

    // under_review → under_review / accepted; accepted loop.
    let mut t = SigmaType::empty(k);
    propagate(&mut t, &[0, 1, 2, 3]);
    a.add_transition(under_review, t.clone(), under_review)
        .expect("valid");
    a.add_transition(under_review, t.clone(), accepted)
        .expect("valid");
    a.add_transition(accepted, t, accepted).expect("valid");

    // under_review → revising.
    let mut t = SigmaType::empty(k);
    propagate(&mut t, &[0, 1]);
    t.add(Literal::eq(Term::y(2), Term::y(0)));
    t.add(Literal::eq(Term::y(3), Term::y(0)));
    a.add_transition(under_review, t, revising).expect("valid");

    Workflow {
        automaton: a,
        roles: Roles {
            paper: RegIdx(0),
            author: RegIdx(1),
            reviewer: RegIdx(2),
            topic: Some(RegIdx(3)),
        },
        start,
        submitted,
        under_review,
        revising,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_analysis::emptiness::{check_emptiness, EmptinessOptions};
    use rega_core::ExtendedAutomaton;

    #[test]
    fn abstract_model_shape() {
        let w = abstract_model();
        assert_eq!(w.automaton.k(), 3);
        assert_eq!(w.automaton.num_states(), 5);
        assert!(w.automaton.has_no_database());
        assert!(w.automaton.is_initial(w.start));
        assert!(w.automaton.is_accepting(w.accepted));
    }

    #[test]
    fn database_model_shape() {
        let w = database_model();
        assert_eq!(w.automaton.k(), 4);
        assert_eq!(w.automaton.schema().num_relations(), 5);
    }

    #[test]
    fn abstract_model_nonempty() {
        let ext = ExtendedAutomaton::new(abstract_model().automaton);
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        assert!(v.is_nonempty(), "the workflow has runs");
    }

    #[test]
    fn database_model_nonempty_with_witness_database() {
        let ext = ExtendedAutomaton::new(database_model().automaton);
        let v = check_emptiness(&ext, &EmptinessOptions::default()).unwrap();
        match v {
            rega_analysis::EmptinessVerdict::NonEmpty(w) => {
                // The witness database must contain at least a paper, an
                // author, a reviewer and a matching topic edge pair.
                let db = &w.database;
                let schema = db.schema();
                for rel in ["Paper", "Author", "Reviewer", "PaperTopic", "Prefers"] {
                    let r = schema.relation(rel).unwrap();
                    assert!(db.num_facts(r) > 0, "{rel} must be populated");
                }
            }
            _ => panic!("workflow must have runs over some database"),
        }
    }
}
