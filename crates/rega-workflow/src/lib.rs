#![warn(missing_docs)]

//! The manuscript-reviewing workflow from the paper's introduction, modeled
//! as a register automaton, with the projection views the paper motivates:
//! authors never see the reviewer registers, and under double-blind
//! reviewing the reviewers never see the author.
//!
//! Two models are provided, mirroring the paper's own scoping:
//!
//! * [`abstract_model`] — no database (reviewer chosen nondeterministically
//!   subject to register constraints). Sections 4–5 develop projection
//!   views exactly in this setting, so [`author_view`] and
//!   [`reviewer_view_double_blind`] use the Proposition 20 construction and
//!   come with LR-boundedness guarantees.
//! * [`database_model`] — papers, authors, reviewers, and topic preferences
//!   in a relational database queried by the transitions; used for run
//!   simulation, LTL-FO verification (Theorem 12) and emptiness checking
//!   (Corollary 10). Projection views in the presence of a database need
//!   the Section 6 machinery ([`rega_views::thm24`]).

pub mod model;
pub mod scenario;
pub mod views;

pub use model::{abstract_model, database_model, Roles, Workflow};
pub use scenario::sample_database;
pub use views::{author_view, project_run, reviewer_view_double_blind};
