//! Projection views of the reviewing workflow — the paper's motivating
//! scenario made executable.
//!
//! * Authors do not see their reviewers: [`author_view`] keeps
//!   `[paper, author]` and hides the reviewer register.
//! * Under double-blind reviewing, reviewers do not see the author:
//!   [`reviewer_view_double_blind`] keeps `[paper, reviewer]`.
//!
//! Both use the Proposition 20 construction on the abstract (no-database)
//! model; the result is an extended automaton the user can treat as *the
//! specification of what they observe*, including the non-local constraints
//! the hidden registers induce.

use crate::model::{abstract_model, Workflow};
use rega_core::run::FiniteRun;
use rega_core::transform::permute_registers;
use rega_core::CoreError;
use rega_data::Value;
use rega_views::prop20::{project_register_automaton, Projection};

/// The author's view of the abstract workflow: `[paper, author]` visible,
/// the reviewer register hidden.
pub fn author_view() -> Result<Projection, CoreError> {
    let w = abstract_model();
    // paper, author are already the leading registers.
    project_register_automaton(&w.automaton, 2)
}

/// The double-blind reviewer's view: `[paper, reviewer]` visible, the
/// author hidden. The registers are permuted so the visible ones lead.
pub fn reviewer_view_double_blind() -> Result<Projection, CoreError> {
    let w = abstract_model();
    // new order: paper(0), reviewer(2), author(1)
    let permuted = permute_registers(&w.automaton, &[0, 2, 1]);
    project_register_automaton(&permuted, 2)
}

/// The runtime view of a concrete run: the registers in `keep`, in order.
/// (What a user with the given permissions actually observes of a running
/// workflow instance.)
pub fn project_run(run: &FiniteRun, keep: &[u16]) -> Vec<Vec<Value>> {
    run.configs
        .iter()
        .map(|c| keep.iter().map(|&r| c.regs[r as usize]).collect())
        .collect()
}

/// Convenience bundle for examples: the workflow plus both views.
pub struct WorkflowWithViews {
    /// The abstract workflow.
    pub workflow: Workflow,
    /// The author's view.
    pub author: Projection,
    /// The double-blind reviewer's view.
    pub reviewer: Projection,
}

/// Builds the abstract workflow together with both projection views.
pub fn with_views() -> Result<WorkflowWithViews, CoreError> {
    Ok(WorkflowWithViews {
        workflow: abstract_model(),
        author: author_view()?,
        reviewer: reviewer_view_double_blind()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_analysis::lr::{is_lr_bounded, LrOptions};
    use rega_core::simulate::{self, SearchLimits};
    use rega_core::ExtendedAutomaton;
    use rega_data::{Database, Schema};

    fn limits() -> SearchLimits {
        SearchLimits {
            max_nodes: 2_000_000,
            max_runs: 200_000,
        }
    }

    #[test]
    fn author_view_builds_and_is_lr_bounded() {
        let v = author_view().unwrap();
        assert_eq!(v.view.k(), 2);
        let lr = is_lr_bounded(&v.view, &LrOptions::default()).unwrap();
        assert!(lr.bounded, "Proposition 20 guarantees LR-boundedness");
    }

    #[test]
    fn reviewer_view_builds() {
        let v = reviewer_view_double_blind().unwrap();
        assert_eq!(v.view.k(), 2);
    }

    #[test]
    fn author_view_is_faithful_on_settled_traces() {
        let w = abstract_model();
        let original = ExtendedAutomaton::new(w.automaton.clone());
        let view = author_view().unwrap().view;
        let db = Database::new(Schema::empty());
        let pool: Vec<Value> = (1..=3).map(Value).collect();
        for len in 1..=3 {
            let want = simulate::projected_settled_traces(&original, &db, len, 2, &pool, limits());
            let got = simulate::projected_settled_traces(&view, &db, len, 2, &pool, limits());
            assert_eq!(want, got, "author view differs at length {len}");
        }
    }

    #[test]
    fn runtime_view_hides_reviewer() {
        let w = abstract_model();
        let db = Database::new(Schema::empty());
        let ext = ExtendedAutomaton::new(w.automaton.clone());
        let pool: Vec<Value> = (1..=3).map(Value).collect();
        let runs = simulate::enumerate_prefixes(&ext, &db, 3, &pool, limits());
        assert!(!runs.is_empty());
        for run in &runs {
            let view = project_run(run, &[0, 1]);
            assert_eq!(view.len(), run.configs.len());
            for (v, c) in view.iter().zip(run.configs.iter()) {
                assert_eq!(v[0], c.regs[0]);
                assert_eq!(v[1], c.regs[1]);
                assert_eq!(v.len(), 2);
            }
        }
    }

    #[test]
    fn with_views_bundle() {
        let bundle = with_views().unwrap();
        assert_eq!(bundle.author.m, 2);
        assert_eq!(bundle.reviewer.m, 2);
        assert_eq!(bundle.workflow.automaton.k(), 3);
    }
}
