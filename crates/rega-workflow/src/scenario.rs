//! Sample databases and run scenarios for the reviewing workflow.

use crate::model::Workflow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rega_core::run::FiniteRun;
use rega_core::simulate::{self, SearchLimits};
use rega_core::{CoreError, ExtendedAutomaton};
use rega_data::{Database, Value};

/// Value ranges for the generated entities (spread apart so roles are
/// recognizable when reading traces).
const PAPER_BASE: u64 = 1_000;
const AUTHOR_BASE: u64 = 2_000;
const REVIEWER_BASE: u64 = 3_000;
const TOPIC_BASE: u64 = 4_000;

/// Generates a database for the [`database_model`](crate::database_model):
/// `n_papers` papers (each with an author and one topic), `n_reviewers`
/// reviewers with 1–2 preferred topics each, over `n_topics` topics.
pub fn sample_database(
    workflow: &Workflow,
    n_papers: usize,
    n_reviewers: usize,
    n_topics: usize,
    seed: u64,
) -> Database {
    let schema = workflow.automaton.schema().clone();
    let paper = schema.relation("Paper").expect("database model");
    let author = schema.relation("Author").expect("database model");
    let reviewer = schema.relation("Reviewer").expect("database model");
    let paper_topic = schema.relation("PaperTopic").expect("database model");
    let prefers = schema.relation("Prefers").expect("database model");
    let mut db = Database::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_topics = n_topics.max(1);
    for p in 0..n_papers {
        let pid = Value(PAPER_BASE + p as u64);
        db.insert(paper, vec![pid]).expect("arity 1");
        db.insert(author, vec![Value(AUTHOR_BASE + p as u64)])
            .expect("arity 1");
        let topic = Value(TOPIC_BASE + rng.gen_range(0..n_topics) as u64);
        db.insert(paper_topic, vec![pid, topic]).expect("arity 2");
    }
    for r in 0..n_reviewers {
        let rid = Value(REVIEWER_BASE + r as u64);
        db.insert(reviewer, vec![rid]).expect("arity 1");
        let t1 = rng.gen_range(0..n_topics) as u64;
        db.insert(prefers, vec![rid, Value(TOPIC_BASE + t1)])
            .expect("arity 2");
        if rng.gen_bool(0.5) {
            let t2 = rng.gen_range(0..n_topics) as u64;
            db.insert(prefers, vec![rid, Value(TOPIC_BASE + t2)])
                .expect("arity 2");
        }
    }
    db
}

/// Simulates a batch of run prefixes of the workflow over the database.
pub fn sample_runs(
    workflow: &Workflow,
    db: &Database,
    len: usize,
    max_runs: usize,
) -> Result<Vec<FiniteRun>, CoreError> {
    let ext = ExtendedAutomaton::new(workflow.automaton.clone());
    let pool = simulate::default_pool(db, 2);
    let mut runs = simulate::enumerate_prefixes(
        &ext,
        db,
        len,
        &pool,
        SearchLimits {
            max_nodes: 500_000,
            max_runs,
        },
    );
    runs.truncate(max_runs);
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::database_model;

    #[test]
    fn sample_database_is_populated() {
        let w = database_model();
        let db = sample_database(&w, 3, 4, 2, 42);
        let schema = db.schema();
        assert_eq!(db.num_facts(schema.relation("Paper").unwrap()), 3);
        assert_eq!(db.num_facts(schema.relation("Reviewer").unwrap()), 4);
        assert!(db.num_facts(schema.relation("Prefers").unwrap()) >= 4);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let w = database_model();
        let a = sample_database(&w, 3, 4, 2, 7);
        let b = sample_database(&w, 3, 4, 2, 7);
        assert!(a.same_facts(&b));
        let c = sample_database(&w, 3, 4, 2, 8);
        assert!(!a.same_facts(&c) || a.adom() == c.adom());
    }

    #[test]
    fn runs_reach_under_review() {
        let w = database_model();
        let db = sample_database(&w, 2, 3, 2, 1);
        let runs = sample_runs(&w, &db, 3, 200).unwrap();
        assert!(!runs.is_empty());
        assert!(runs
            .iter()
            .any(|r| r.configs.iter().any(|c| c.state == w.under_review)));
        // Reviewer assignments respect topic preference: checked by run
        // validity itself (the type queries the database).
        for r in &runs {
            assert!(r.validate(&w.automaton, &db).is_ok());
        }
    }
}
