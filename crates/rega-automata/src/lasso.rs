//! Ultimately periodic ω-words (`u · vʷ`), the finite presentations of
//! infinite words used by every decision procedure in the library.

use crate::Letter;
use std::fmt;

/// An ultimately periodic ω-word: the infinite word `prefix · cycleʷ`.
/// The cycle must be non-empty.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lasso<L> {
    /// The finite prefix `u`.
    pub prefix: Vec<L>,
    /// The repeated cycle `v` (non-empty).
    pub cycle: Vec<L>,
}

impl<L: Letter> Lasso<L> {
    /// Creates a lasso; panics if the cycle is empty.
    pub fn new(prefix: Vec<L>, cycle: Vec<L>) -> Self {
        assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
        Lasso { prefix, cycle }
    }

    /// A purely periodic word `vʷ`.
    pub fn periodic(cycle: Vec<L>) -> Self {
        Lasso::new(Vec::new(), cycle)
    }

    /// The letter at position `n` of the infinite word.
    pub fn at(&self, n: usize) -> &L {
        if n < self.prefix.len() {
            &self.prefix[n]
        } else {
            &self.cycle[(n - self.prefix.len()) % self.cycle.len()]
        }
    }

    /// Length of the prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix.len()
    }

    /// Length of the cycle (the period).
    pub fn period(&self) -> usize {
        self.cycle.len()
    }

    /// The first `n` letters of the infinite word.
    pub fn unroll(&self, n: usize) -> Vec<L> {
        (0..n).map(|i| self.at(i).clone()).collect()
    }

    /// An equivalent lasso whose cycle is repeated `times` times (same
    /// ω-word, longer period). Useful for aligning periods of two lassos.
    pub fn pump_cycle(&self, times: usize) -> Lasso<L> {
        assert!(times >= 1);
        let mut cycle = Vec::with_capacity(self.cycle.len() * times);
        for _ in 0..times {
            cycle.extend(self.cycle.iter().cloned());
        }
        Lasso::new(self.prefix.clone(), cycle)
    }

    /// An equivalent lasso whose prefix is extended by `extra` positions
    /// (rotating the cycle accordingly). Same ω-word.
    pub fn extend_prefix(&self, extra: usize) -> Lasso<L> {
        let mut prefix = self.prefix.clone();
        let mut cycle = self.cycle.clone();
        for _ in 0..extra {
            let head = cycle.remove(0);
            prefix.push(head.clone());
            cycle.push(head);
        }
        Lasso::new(prefix, cycle)
    }

    /// Maps letters through `f`.
    pub fn map<M: Letter>(&self, f: impl Fn(&L) -> M) -> Lasso<M> {
        Lasso {
            prefix: self.prefix.iter().map(&f).collect(),
            cycle: self.cycle.iter().map(&f).collect(),
        }
    }

    /// Canonical form: shortest period, shortest prefix. Two lassos denote
    /// the same ω-word iff their canonical forms are equal.
    pub fn canonicalize(&self) -> Lasso<L> {
        // Shrink the period: the smallest divisor d of |v| with v = wⁿ.
        let v = &self.cycle;
        let mut period = v.len();
        'outer: for d in 1..=v.len() / 2 {
            if !v.len().is_multiple_of(d) {
                continue;
            }
            for i in d..v.len() {
                if v[i] != v[i - d] {
                    continue 'outer;
                }
            }
            period = d;
            break;
        }
        let cycle: Vec<L> = v[..period].to_vec();
        // Shrink the prefix: while the last prefix letter equals the last
        // cycle letter, rotate it into the cycle.
        let mut prefix = self.prefix.clone();
        let mut cycle = cycle;
        while let Some(last) = prefix.last() {
            if *last == cycle[cycle.len() - 1] {
                let l = prefix.pop().expect("non-empty");
                cycle.pop();
                cycle.insert(0, l);
            } else {
                break;
            }
        }
        Lasso::new(prefix, cycle)
    }

    /// Whether two lassos denote the same ω-word.
    pub fn same_word(&self, other: &Lasso<L>) -> bool {
        self.canonicalize() == other.canonicalize()
    }
}

impl<L: fmt::Debug> fmt::Display for Lasso<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.prefix {
            write!(f, "{l:?} ")?;
        }
        write!(f, "(")?;
        for (i, l) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, ")ω")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_indexes_correctly() {
        let l = Lasso::new(vec![0u32, 1], vec![2, 3]);
        let expect = [0, 1, 2, 3, 2, 3, 2];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(l.at(i), e);
        }
    }

    #[test]
    #[should_panic]
    fn empty_cycle_panics() {
        let _ = Lasso::<u32>::new(vec![1], vec![]);
    }

    #[test]
    fn pump_preserves_word() {
        let l = Lasso::new(vec![9u32], vec![1, 2]);
        let p = l.pump_cycle(3);
        assert_eq!(p.period(), 6);
        assert_eq!(l.unroll(20), p.unroll(20));
        assert!(l.same_word(&p));
    }

    #[test]
    fn extend_prefix_preserves_word() {
        let l = Lasso::new(vec![9u32], vec![1, 2, 3]);
        let e = l.extend_prefix(2);
        assert_eq!(e.prefix, vec![9, 1, 2]);
        assert_eq!(e.cycle, vec![3, 1, 2]);
        assert_eq!(l.unroll(20), e.unroll(20));
    }

    #[test]
    fn canonicalize_shrinks_period() {
        let l = Lasso::periodic(vec![1u32, 2, 1, 2]);
        let c = l.canonicalize();
        assert_eq!(c.cycle, vec![1, 2]);
        assert!(c.prefix.is_empty());
    }

    #[test]
    fn canonicalize_rolls_prefix() {
        // 1 (2 1)^ω = (1 2)^ω
        let l = Lasso::new(vec![1u32], vec![2, 1]);
        let c = l.canonicalize();
        assert!(c.prefix.is_empty());
        assert_eq!(c.cycle, vec![1, 2]);
    }

    #[test]
    fn same_word_detects_equal_words() {
        let a = Lasso::new(vec![5u32], vec![1, 2, 1, 2]);
        let b = Lasso::new(vec![5u32, 1, 2], vec![1, 2]);
        assert!(a.same_word(&b));
        let c = Lasso::new(vec![5u32], vec![2, 1]);
        assert!(!a.same_word(&c));
    }

    #[test]
    fn map_applies() {
        let l = Lasso::new(vec![1u32], vec![2]);
        let m = l.map(|&x| x * 10);
        assert_eq!(m.prefix, vec![10]);
        assert_eq!(m.cycle, vec![20]);
    }
}
