//! Nondeterministic finite automata with ε-transitions, built from regular
//! expressions by the Thompson construction and determinized by the subset
//! construction.

use crate::dfa::Dfa;
use crate::regex::Regex;
use crate::Letter;
use std::collections::{BTreeSet, HashMap};

/// A nondeterministic finite automaton over letters `L` with ε-transitions.
#[derive(Clone, Debug)]
pub struct Nfa<L> {
    /// Number of states (`0..n`).
    n: usize,
    inits: BTreeSet<usize>,
    accepting: Vec<bool>,
    /// `trans[s]` lists `(label, target)`; `None` labels are ε-transitions.
    trans: Vec<Vec<(Option<L>, usize)>>,
}

impl<L: Letter> Nfa<L> {
    /// An NFA with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        Nfa {
            n,
            inits: BTreeSet::new(),
            accepting: vec![false; n],
            trans: vec![Vec::new(); n],
        }
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.n += 1;
        self.accepting.push(false);
        self.trans.push(Vec::new());
        self.n - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Marks a state initial.
    pub fn set_init(&mut self, s: usize) {
        self.inits.insert(s);
    }

    /// Marks a state accepting.
    pub fn set_accepting(&mut self, s: usize, acc: bool) {
        self.accepting[s] = acc;
    }

    /// Whether a state is accepting.
    pub fn is_accepting(&self, s: usize) -> bool {
        self.accepting[s]
    }

    /// Adds a labeled transition.
    pub fn add_transition(&mut self, from: usize, label: L, to: usize) {
        self.trans[from].push((Some(label), to));
    }

    /// Adds an ε-transition.
    pub fn add_epsilon(&mut self, from: usize, to: usize) {
        self.trans[from].push((None, to));
    }

    /// Builds an NFA for a regular expression (Thompson construction).
    pub fn from_regex(regex: &Regex<L>) -> Self {
        let mut nfa = Nfa::new(0);
        let start = nfa.add_state();
        let end = nfa.add_state();
        nfa.set_init(start);
        nfa.set_accepting(end, true);
        nfa.build(regex, start, end);
        nfa
    }

    fn build(&mut self, regex: &Regex<L>, from: usize, to: usize) {
        match regex {
            Regex::Empty => {}
            Regex::Epsilon => self.add_epsilon(from, to),
            Regex::Sym(l) => self.add_transition(from, l.clone(), to),
            Regex::Concat(parts) => {
                if parts.is_empty() {
                    self.add_epsilon(from, to);
                    return;
                }
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.add_state()
                    };
                    self.build(p, cur, next);
                    cur = next;
                }
            }
            Regex::Alt(parts) => {
                for p in parts {
                    self.build(p, from, to);
                }
            }
            Regex::Star(inner) => {
                let hub = self.add_state();
                self.add_epsilon(from, hub);
                self.add_epsilon(hub, to);
                self.build(inner, hub, hub);
            }
        }
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = set.clone();
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for (label, t) in &self.trans[s] {
                if label.is_none() && closure.insert(*t) {
                    stack.push(*t);
                }
            }
        }
        closure
    }

    /// One step of the subset construction: ε-closure of the `letter`
    /// successors of `set` (which must itself be ε-closed).
    pub fn step(&self, set: &BTreeSet<usize>, letter: &L) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &s in set {
            for (label, t) in &self.trans[s] {
                if label.as_ref() == Some(letter) {
                    next.insert(*t);
                }
            }
        }
        self.epsilon_closure(&next)
    }

    /// Whether the NFA accepts the finite word.
    pub fn accepts(&self, word: &[L]) -> bool {
        let mut cur = self.epsilon_closure(&self.inits);
        for letter in word {
            cur = self.step(&cur, letter);
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|&s| self.accepting[s])
    }

    /// Subset construction: a total DFA over the given alphabet. Letters of
    /// the NFA outside the alphabet are ignored; letters of the alphabet not
    /// used by the NFA lead towards the (implicit) dead state.
    pub fn determinize(&self, alphabet: &[L]) -> Dfa<L> {
        let init = self.epsilon_closure(&self.inits);
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        index.insert(init.clone(), 0);
        subsets.push(init);
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut next_unprocessed = 0usize;
        // Every discovered subset is processed exactly once, in id order, so
        // `trans[s]` is the row of subset `s`.
        while next_unprocessed < subsets.len() {
            let s = next_unprocessed;
            next_unprocessed += 1;
            let subset = subsets[s].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for letter in alphabet {
                let next = self.step(&subset, letter);
                let id = *index.entry(next.clone()).or_insert_with(|| {
                    subsets.push(next);
                    subsets.len() - 1
                });
                row.push(id);
            }
            trans.push(row);
        }
        let accepting: Vec<bool> = subsets
            .iter()
            .map(|sub| sub.iter().any(|&s| self.accepting[s]))
            .collect();
        Dfa::from_parts(alphabet.to_vec(), 0, accepting, trans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(s: &str) -> Option<u32> {
        s.strip_prefix('p').and_then(|n| n.parse().ok())
    }

    #[test]
    fn thompson_accepts_example5() {
        let r = Regex::parse("p1 p2* p1", resolve).unwrap();
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[1, 1]));
        assert!(nfa.accepts(&[1, 2, 2, 2, 1]));
        assert!(!nfa.accepts(&[1, 2]));
        assert!(!nfa.accepts(&[2, 1]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn empty_regex_accepts_nothing() {
        let nfa = Nfa::from_regex(&Regex::<u32>::Empty);
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[1]));
    }

    #[test]
    fn epsilon_accepts_empty_word() {
        let nfa = Nfa::from_regex(&Regex::<u32>::Epsilon);
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&[1]));
    }

    #[test]
    fn alternation() {
        let r = Regex::parse("p1 | p2 p2", resolve).unwrap();
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[1]));
        assert!(nfa.accepts(&[2, 2]));
        assert!(!nfa.accepts(&[2]));
    }

    #[test]
    fn plus_and_opt() {
        let r = Regex::parse("p1+ p2?", resolve).unwrap();
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[1]));
        assert!(nfa.accepts(&[1, 1, 1, 2]));
        assert!(!nfa.accepts(&[2]));
        assert!(!nfa.accepts(&[]));
    }

    #[test]
    fn determinize_agrees_with_nfa() {
        let r = Regex::parse("(p1|p2)* p1 p2", resolve).unwrap();
        let nfa = Nfa::from_regex(&r);
        let dfa = nfa.determinize(&[1, 2]);
        for word in [
            vec![],
            vec![1],
            vec![1, 2],
            vec![2, 1, 2],
            vec![1, 1, 2, 1, 2],
            vec![2, 2],
        ] {
            assert_eq!(nfa.accepts(&word), dfa.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn star_of_alternation() {
        let r = Regex::parse("(p1 p2)*", resolve).unwrap();
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[1, 2, 1, 2]));
        assert!(!nfa.accepts(&[1, 2, 1]));
    }
}
