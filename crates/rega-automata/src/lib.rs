#![warn(missing_docs)]

//! Automata substrate for `rega`: finite-word and ω-word automata.
//!
//! The paper's constructions lean on classical automata theory:
//!
//! * regular expressions over the *states* of a register automaton specify
//!   the global constraints of extended register automata (Section 3);
//! * the symbolic control traces `SControl(A)` form an ω-regular language
//!   recognized by a Büchi automaton (Section 2);
//! * Lemma 21 builds subset-construction automata tracking value flow;
//! * verification (Theorem 12) intersects Büchi automata and decides
//!   emptiness;
//! * tests use Büchi complementation to check ω-language containment.
//!
//! Everything here is generic over the letter type `L` (a [`Letter`]), which
//! downstream crates instantiate with state or transition identifiers.

pub mod arena;
pub mod buchi;
pub mod complement;
pub mod dfa;
pub mod emptiness;
pub mod lasso;
pub mod nfa;
pub mod regex;

pub use arena::{EdgeArena, NbaSource, SuccessorSource};
pub use buchi::{Nba, Ngba};
pub use dfa::Dfa;
pub use lasso::Lasso;
pub use nfa::Nfa;
pub use regex::{Regex, RegexParseError};

/// Bound required of automaton letters. Blanket-implemented.
pub trait Letter: Clone + Eq + std::hash::Hash + Ord + std::fmt::Debug {}
impl<T: Clone + Eq + std::hash::Hash + Ord + std::fmt::Debug> Letter for T {}
