//! Nondeterministic Büchi automata over ω-words, and their generalized
//! variant.
//!
//! `SControl(A)` — the symbolic control traces of a register automaton — is
//! an ω-regular language (Section 2), and the verification pipeline of
//! Theorem 12 manipulates Büchi automata for control traces and for LTL
//! formulas.

use crate::lasso::Lasso;
use crate::Letter;
use std::collections::HashMap;

/// A nondeterministic Büchi automaton over the explicit alphabet `alphabet`,
/// with state-based acceptance: a run is accepting iff it visits an
/// accepting state infinitely often.
#[derive(Clone, Debug)]
pub struct Nba<L> {
    alphabet: Vec<L>,
    letter_index: HashMap<L, usize>,
    inits: Vec<usize>,
    accepting: Vec<bool>,
    /// `trans[state][letter_index]` — successor states.
    trans: Vec<Vec<Vec<usize>>>,
}

impl<L: Letter> Nba<L> {
    /// An NBA with `n` states and no transitions over the given alphabet.
    pub fn new(alphabet: Vec<L>, n: usize) -> Self {
        let letter_index = alphabet
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i))
            .collect();
        Nba {
            trans: vec![vec![Vec::new(); alphabet.len()]; n],
            alphabet,
            letter_index,
            inits: Vec::new(),
            accepting: vec![false; n],
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> usize {
        self.trans.push(vec![Vec::new(); self.alphabet.len()]);
        self.accepting.push(false);
        self.trans.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[L] {
        &self.alphabet
    }

    /// The index of a letter, if in the alphabet.
    pub fn letter_index(&self, l: &L) -> Option<usize> {
        self.letter_index.get(l).copied()
    }

    /// Marks a state initial.
    pub fn set_init(&mut self, s: usize) {
        if !self.inits.contains(&s) {
            self.inits.push(s);
        }
    }

    /// The initial states.
    pub fn inits(&self) -> &[usize] {
        &self.inits
    }

    /// Marks a state accepting.
    pub fn set_accepting(&mut self, s: usize, acc: bool) {
        self.accepting[s] = acc;
    }

    /// Whether a state is accepting.
    pub fn is_accepting(&self, s: usize) -> bool {
        self.accepting[s]
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: usize, letter: &L, to: usize) {
        let li = self.letter_index[letter];
        if !self.trans[from][li].contains(&to) {
            self.trans[from][li].push(to);
        }
    }

    /// Successors of `s` on `letter`.
    pub fn successors(&self, s: usize, letter: &L) -> &[usize] {
        &self.trans[s][self.letter_index[letter]]
    }

    /// Successors of `s` by letter index.
    pub fn successors_idx(&self, s: usize, li: usize) -> &[usize] {
        &self.trans[s][li]
    }

    /// All transitions as `(from, letter_index, to)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.trans.iter().enumerate().flat_map(|(s, row)| {
            row.iter()
                .enumerate()
                .flat_map(move |(li, succs)| succs.iter().map(move |&t| (s, li, t)))
        })
    }

    /// Disjoint union: accepts `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nba<L>) -> Nba<L> {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let off = self.num_states();
        let mut out = self.clone();
        for _ in 0..other.num_states() {
            out.add_state();
        }
        for (s, li, t) in other.transitions() {
            let letter = out.alphabet[li].clone();
            out.add_transition(s + off, &letter, t + off);
        }
        for s in 0..other.num_states() {
            out.accepting[s + off] = other.accepting[s];
        }
        for &i in &other.inits {
            out.set_init(i + off);
        }
        out
    }

    /// Büchi intersection via the generalized product: the plain product
    /// with two acceptance sets (one per operand), then degeneralized.
    pub fn intersect(&self, other: &Nba<L>) -> Nba<L> {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut ngba = Ngba::new(self.alphabet.clone(), 0, 2);
        let mut get =
            |a: usize, b: usize, ngba: &mut Ngba<L>, pairs: &mut Vec<(usize, usize)>| -> usize {
                *index.entry((a, b)).or_insert_with(|| {
                    let s = ngba.add_state();
                    pairs.push((a, b));
                    s
                })
            };
        let mut work = Vec::new();
        for &a in &self.inits {
            for &b in &other.inits {
                let s = get(a, b, &mut ngba, &mut pairs);
                ngba.set_init(s);
                work.push(s);
            }
        }
        let mut processed = vec![false; work.len()];
        while let Some(s) = work.pop() {
            if s < processed.len() && processed[s] {
                continue;
            }
            if s >= processed.len() {
                processed.resize(s + 1, false);
            }
            processed[s] = true;
            let (a, b) = pairs[s];
            ngba.set_in_acc_set(s, 0, self.accepting[a]);
            ngba.set_in_acc_set(s, 1, other.accepting[b]);
            for li in 0..self.alphabet.len() {
                for &ta in &self.trans[a][li] {
                    for &tb in &other.trans[b][li] {
                        let t = get(ta, tb, &mut ngba, &mut pairs);
                        ngba.add_transition_idx(s, li, t);
                        if t >= processed.len() || !processed[t] {
                            work.push(t);
                        }
                    }
                }
            }
        }
        ngba.degeneralize()
    }

    /// Whether the NBA accepts the ultimately periodic word.
    pub fn accepts_lasso(&self, word: &Lasso<L>) -> bool {
        // States reachable after reading the prefix.
        let mut cur: Vec<bool> = vec![false; self.num_states()];
        for &i in &self.inits {
            cur[i] = true;
        }
        for letter in &word.prefix {
            let Some(li) = self.letter_index(letter) else {
                return false;
            };
            let mut next = vec![false; self.num_states()];
            for (s, &live) in cur.iter().enumerate() {
                if live {
                    for &t in &self.trans[s][li] {
                        next[t] = true;
                    }
                }
            }
            cur = next;
        }
        // Graph over (state, phase) nodes for the cycle.
        let c = word.cycle.len();
        let lis: Option<Vec<usize>> = word.cycle.iter().map(|l| self.letter_index(l)).collect();
        let Some(lis) = lis else {
            return false;
        };
        let node = |s: usize, ph: usize| s * c + ph;
        let n_nodes = self.num_states() * c;
        // Reachable nodes from the post-prefix states at phase 0.
        let mut reach = vec![false; n_nodes];
        let mut stack: Vec<usize> = Vec::new();
        for s in 0..self.num_states() {
            if cur[s] {
                reach[node(s, 0)] = true;
                stack.push(node(s, 0));
            }
        }
        while let Some(u) = stack.pop() {
            let (s, ph) = (u / c, u % c);
            for &t in &self.trans[s][lis[ph]] {
                let v = node(t, (ph + 1) % c);
                if !reach[v] {
                    reach[v] = true;
                    stack.push(v);
                }
            }
        }
        // Accepting run exists iff some reachable accepting node lies on a
        // (phase-respecting) cycle — equivalently, in a non-trivial SCC or
        // on a self-loop. One iterative Tarjan pass over the product graph.
        let succ = |u: usize| -> Vec<usize> {
            let (s, ph) = (u / c, u % c);
            self.trans[s][lis[ph]]
                .iter()
                .map(|&t| node(t, (ph + 1) % c))
                .collect()
        };
        let mut index_of = vec![usize::MAX; n_nodes];
        let mut lowlink = vec![0usize; n_nodes];
        let mut on_stack = vec![false; n_nodes];
        let mut scc_stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        for root in 0..n_nodes {
            if !reach[root] || index_of[root] != usize::MAX {
                continue;
            }
            // Iterative Tarjan: (node, children, child-iteration position).
            let mut call: Vec<(usize, Vec<usize>, usize)> = vec![(root, succ(root), 0)];
            while let Some(&mut (u, ref children, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index_of[u] = next_index;
                    lowlink[u] = next_index;
                    next_index += 1;
                    scc_stack.push(u);
                    on_stack[u] = true;
                }
                if *ci < children.len() {
                    let v = children[*ci];
                    *ci += 1;
                    if index_of[v] == usize::MAX {
                        call.push((v, succ(v), 0));
                    } else if on_stack[v] {
                        lowlink[u] = lowlink[u].min(index_of[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _, _)) = call.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[u]);
                    }
                    if lowlink[u] == index_of[u] {
                        // Pop one SCC and examine it.
                        let mut comp = Vec::new();
                        loop {
                            let v = scc_stack.pop().expect("non-empty");
                            on_stack[v] = false;
                            comp.push(v);
                            if v == u {
                                break;
                            }
                        }
                        let nontrivial =
                            comp.len() > 1 || comp.iter().any(|&v| succ(v).contains(&v));
                        if nontrivial && comp.iter().any(|&v| self.accepting[v / c]) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// A generalized Büchi automaton: like [`Nba`] but with `m` acceptance sets;
/// a run is accepting iff it visits *every* set infinitely often.
#[derive(Clone, Debug)]
pub struct Ngba<L> {
    alphabet: Vec<L>,
    letter_index: HashMap<L, usize>,
    inits: Vec<usize>,
    /// `acc[i][s]` — state `s` belongs to acceptance set `i`.
    acc: Vec<Vec<bool>>,
    trans: Vec<Vec<Vec<usize>>>,
}

impl<L: Letter> Ngba<L> {
    /// An NGBA with `n` states, no transitions, and `m` acceptance sets.
    pub fn new(alphabet: Vec<L>, n: usize, m: usize) -> Self {
        let letter_index = alphabet
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i))
            .collect();
        Ngba {
            trans: vec![vec![Vec::new(); alphabet.len()]; n],
            acc: vec![vec![false; n]; m],
            alphabet,
            letter_index,
            inits: Vec::new(),
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> usize {
        self.trans.push(vec![Vec::new(); self.alphabet.len()]);
        for set in &mut self.acc {
            set.push(false);
        }
        self.trans.len() - 1
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Number of acceptance sets.
    pub fn num_acc_sets(&self) -> usize {
        self.acc.len()
    }

    /// Marks a state initial.
    pub fn set_init(&mut self, s: usize) {
        if !self.inits.contains(&s) {
            self.inits.push(s);
        }
    }

    /// Sets membership of `s` in acceptance set `i`.
    pub fn set_in_acc_set(&mut self, s: usize, i: usize, member: bool) {
        self.acc[i][s] = member;
    }

    /// Adds a transition by letter.
    pub fn add_transition(&mut self, from: usize, letter: &L, to: usize) {
        let li = self.letter_index[letter];
        self.add_transition_idx(from, li, to);
    }

    /// Adds a transition by letter index.
    pub fn add_transition_idx(&mut self, from: usize, li: usize, to: usize) {
        if !self.trans[from][li].contains(&to) {
            self.trans[from][li].push(to);
        }
    }

    /// Degeneralization: the classic counter construction. State `(s, i)`
    /// waits for acceptance set `i`; when `s ∈ Acc_i` the counter advances
    /// (mod `m`). Accepting states are `(s, 0)` with `s ∈ Acc_0`.
    pub fn degeneralize(&self) -> Nba<L> {
        let m = self.acc.len().max(1);
        if self.acc.is_empty() {
            // No acceptance sets: every run accepting; make all states
            // accepting in a single-copy NBA.
            let mut nba = Nba::new(self.alphabet.clone(), self.num_states());
            for s in 0..self.num_states() {
                nba.set_accepting(s, true);
            }
            for &i in &self.inits {
                nba.set_init(i);
            }
            for (s, row) in self.trans.iter().enumerate() {
                for (li, succs) in row.iter().enumerate() {
                    for &t in succs {
                        let letter = self.alphabet[li].clone();
                        nba.add_transition(s, &letter, t);
                    }
                }
            }
            return nba;
        }
        let n = self.num_states();
        let mut nba = Nba::new(self.alphabet.clone(), n * m);
        let id = |s: usize, i: usize| s * m + i;
        for &s in &self.inits {
            nba.set_init(id(s, 0));
        }
        for s in 0..n {
            for i in 0..m {
                nba.set_accepting(id(s, i), i == 0 && self.acc[0][s]);
                let j = if self.acc[i][s] { (i + 1) % m } else { i };
                for (li, succs) in self.trans[s].iter().enumerate() {
                    for &t in succs {
                        let letter = self.alphabet[li].clone();
                        nba.add_transition(id(s, i), &letter, id(t, j));
                    }
                }
            }
        }
        nba
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NBA over {0,1} accepting words with infinitely many 1s.
    fn inf_ones() -> Nba<u8> {
        let mut a = Nba::new(vec![0, 1], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 1);
        a.add_transition(1, &0, 0);
        a.add_transition(1, &1, 1);
        a
    }

    /// NBA over {0,1} accepting words with infinitely many 0s.
    fn inf_zeros() -> Nba<u8> {
        let mut a = Nba::new(vec![0, 1], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &1, 0);
        a.add_transition(0, &0, 1);
        a.add_transition(1, &1, 0);
        a.add_transition(1, &0, 1);
        a
    }

    #[test]
    fn accepts_lasso_inf_ones() {
        let a = inf_ones();
        assert!(a.accepts_lasso(&Lasso::periodic(vec![1])));
        assert!(a.accepts_lasso(&Lasso::new(vec![0, 0, 0], vec![0, 1])));
        assert!(!a.accepts_lasso(&Lasso::new(vec![1, 1], vec![0])));
    }

    #[test]
    fn union_accepts_either() {
        let u = inf_ones().union(&inf_zeros());
        assert!(u.accepts_lasso(&Lasso::periodic(vec![1])));
        assert!(u.accepts_lasso(&Lasso::periodic(vec![0])));
        assert!(u.accepts_lasso(&Lasso::periodic(vec![0, 1])));
    }

    #[test]
    fn intersection_needs_both() {
        let i = inf_ones().intersect(&inf_zeros());
        assert!(i.accepts_lasso(&Lasso::periodic(vec![0, 1])));
        assert!(!i.accepts_lasso(&Lasso::periodic(vec![1])));
        assert!(!i.accepts_lasso(&Lasso::periodic(vec![0])));
        assert!(i.accepts_lasso(&Lasso::new(vec![1, 1, 1], vec![1, 0])));
    }

    #[test]
    fn degeneralize_two_sets() {
        // NGBA over {a=0, b=1}: one state, self loops; set 0 = {after a},
        // set 1 = {after b}: encode with two states tracking last letter.
        let mut g = Ngba::new(vec![0u8, 1], 2, 2);
        g.set_init(0);
        // state 0 = last was 'a' (letter 0), state 1 = last was 'b'.
        g.set_in_acc_set(0, 0, true);
        g.set_in_acc_set(1, 1, true);
        for s in 0..2 {
            g.add_transition(s, &0, 0);
            g.add_transition(s, &1, 1);
        }
        let nba = g.degeneralize();
        // Both letters infinitely often.
        assert!(nba.accepts_lasso(&Lasso::periodic(vec![0, 1])));
        assert!(!nba.accepts_lasso(&Lasso::periodic(vec![0])));
        assert!(!nba.accepts_lasso(&Lasso::periodic(vec![1])));
    }

    #[test]
    fn lasso_with_unknown_letter_rejected() {
        let a = inf_ones();
        assert!(!a.accepts_lasso(&Lasso::periodic(vec![7])));
    }

    #[test]
    fn no_acceptance_sets_accepts_all_runs() {
        let mut g = Ngba::new(vec![0u8], 1, 0);
        g.set_init(0);
        g.add_transition(0, &0, 0);
        let nba = g.degeneralize();
        assert!(nba.accepts_lasso(&Lasso::periodic(vec![0])));
    }
}
