//! Regular expressions over arbitrary alphabets.
//!
//! The global constraints of an extended register automaton are regular
//! expressions over the automaton's *states* (Section 3), e.g. Example 5's
//! `e=₁₁ = p₁ p₂* p₁`. This module provides the expression AST and a parser
//! for the whitespace-separated textual form (`"p1 p2* p1"`).

use crate::Letter;
use std::fmt;

/// A regular expression over letters of type `L`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex<L> {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single letter.
    Sym(L),
    /// Concatenation, in order.
    Concat(Vec<Regex<L>>),
    /// Alternation (union).
    Alt(Vec<Regex<L>>),
    /// Kleene star.
    Star(Box<Regex<L>>),
}

impl<L: Letter> Regex<L> {
    /// `r+` as a derived form: `r · r*`.
    pub fn plus(r: Regex<L>) -> Regex<L> {
        Regex::Concat(vec![r.clone(), Regex::Star(Box::new(r))])
    }

    /// `r?` as a derived form: `r | ε`.
    pub fn opt(r: Regex<L>) -> Regex<L> {
        Regex::Alt(vec![r, Regex::Epsilon])
    }

    /// The union of single letters (character class).
    pub fn any_of(letters: impl IntoIterator<Item = L>) -> Regex<L> {
        let alts: Vec<Regex<L>> = letters.into_iter().map(Regex::Sym).collect();
        if alts.is_empty() {
            Regex::Empty
        } else {
            Regex::Alt(alts)
        }
    }

    /// Concatenation of a sequence of letters (a word).
    pub fn word(letters: impl IntoIterator<Item = L>) -> Regex<L> {
        let parts: Vec<Regex<L>> = letters.into_iter().map(Regex::Sym).collect();
        if parts.is_empty() {
            Regex::Epsilon
        } else {
            Regex::Concat(parts)
        }
    }

    /// All letters mentioned by the expression.
    pub fn letters(&self) -> Vec<L> {
        let mut out = Vec::new();
        self.collect_letters(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_letters(&self, out: &mut Vec<L>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(l) => out.push(l.clone()),
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_letters(out);
                }
            }
            Regex::Star(inner) => inner.collect_letters(out),
        }
    }

    /// Maps letters through `f`.
    pub fn map<M: Letter>(&self, f: &impl Fn(&L) -> M) -> Regex<M> {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(l) => Regex::Sym(f(l)),
            Regex::Concat(parts) => Regex::Concat(parts.iter().map(|p| p.map(f)).collect()),
            Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| p.map(f)).collect()),
            Regex::Star(inner) => Regex::Star(Box::new(inner.map(f))),
        }
    }
}

/// Errors from [`Regex::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegexParseError {
    /// An identifier could not be resolved to a letter.
    UnknownSymbol(String),
    /// Unbalanced parenthesis or dangling operator.
    Syntax(String),
}

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexParseError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            RegexParseError::Syntax(s) => write!(f, "syntax error: {s}"),
        }
    }
}

impl std::error::Error for RegexParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Pipe,
    Star,
    Plus,
    Question,
}

fn tokenize(input: &str) -> Result<Vec<Token>, RegexParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '|' => {
                chars.next();
                tokens.push(Token::Pipe);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '+' => {
                chars.next();
                tokens.push(Token::Plus);
            }
            '?' => {
                chars.next();
                tokens.push(Token::Question);
            }
            c if c.is_alphanumeric() || c == '_' || c == '\'' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '\'' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            }
            other => {
                return Err(RegexParseError::Syntax(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a, L, F> {
    tokens: &'a [Token],
    pos: usize,
    resolve: F,
    _marker: std::marker::PhantomData<L>,
}

impl<'a, L: Letter, F: Fn(&str) -> Option<L>> Parser<'a, L, F> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    // alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Regex<L>, RegexParseError> {
        let mut parts = vec![self.concat()?];
        while self.peek() == Some(&Token::Pipe) {
            self.next();
            parts.push(self.concat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Regex::Alt(parts)
        })
    }

    // concat := postfix+  (empty concat = epsilon)
    fn concat(&mut self) -> Result<Regex<L>, RegexParseError> {
        let mut parts = Vec::new();
        while matches!(self.peek(), Some(Token::Ident(_)) | Some(Token::LParen)) {
            parts.push(self.postfix()?);
        }
        Ok(match parts.len() {
            0 => Regex::Epsilon,
            1 => parts.pop().expect("non-empty"),
            _ => Regex::Concat(parts),
        })
    }

    // postfix := atom ('*' | '+' | '?')*
    fn postfix(&mut self) -> Result<Regex<L>, RegexParseError> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.next();
                    r = Regex::Star(Box::new(r));
                }
                Some(Token::Plus) => {
                    self.next();
                    r = Regex::plus(r);
                }
                Some(Token::Question) => {
                    self.next();
                    r = Regex::opt(r);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Regex<L>, RegexParseError> {
        match self.next().cloned() {
            Some(Token::Ident(name)) => (self.resolve)(&name)
                .map(Regex::Sym)
                .ok_or(RegexParseError::UnknownSymbol(name)),
            Some(Token::LParen) => {
                let inner = self.alternation()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(RegexParseError::Syntax("expected `)`".into())),
                }
            }
            other => Err(RegexParseError::Syntax(format!(
                "unexpected token {other:?}"
            ))),
        }
    }
}

impl<L: Letter> Regex<L> {
    /// Parses a textual regular expression whose atoms are identifiers
    /// resolved through `resolve` (typically state names of an automaton).
    ///
    /// Grammar: alternation `|`, postfix `*` `+` `?`, grouping `( )`,
    /// juxtaposition for concatenation. Example: `"p1 p2* p1"`.
    pub fn parse(
        input: &str,
        resolve: impl Fn(&str) -> Option<L>,
    ) -> Result<Self, RegexParseError> {
        let tokens = tokenize(input)?;
        let mut p = Parser {
            tokens: &tokens,
            pos: 0,
            resolve,
            _marker: std::marker::PhantomData,
        };
        let r = p.alternation()?;
        if p.pos != tokens.len() {
            return Err(RegexParseError::Syntax("trailing input".into()));
        }
        Ok(r)
    }
}

impl<L: Letter> Regex<L> {
    /// Renders the expression with a custom symbol formatter (the `Display`
    /// impl renders symbols with `Debug`, which quotes strings).
    pub fn render(&self, sym: &impl Fn(&L) -> String) -> String {
        match self {
            Regex::Empty => "∅".to_string(),
            Regex::Epsilon => "ε".to_string(),
            Regex::Sym(l) => sym(l),
            Regex::Concat(parts) => parts
                .iter()
                .map(|p| {
                    if matches!(p, Regex::Alt(_)) {
                        format!("({})", p.render(sym))
                    } else {
                        p.render(sym)
                    }
                })
                .collect::<Vec<_>>()
                .join(" "),
            Regex::Alt(parts) => parts
                .iter()
                .map(|p| p.render(sym))
                .collect::<Vec<_>>()
                .join("|"),
            Regex::Star(inner) => {
                if matches!(**inner, Regex::Sym(_) | Regex::Epsilon | Regex::Empty) {
                    format!("{}*", inner.render(sym))
                } else {
                    format!("({})*", inner.render(sym))
                }
            }
        }
    }
}

impl<L: fmt::Debug> fmt::Display for Regex<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Sym(l) => write!(f, "{l:?}"),
            Regex::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    if matches!(p, Regex::Alt(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Regex::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Regex::Star(inner) => {
                if matches!(**inner, Regex::Sym(_) | Regex::Epsilon | Regex::Empty) {
                    write!(f, "{inner}*")
                } else {
                    write!(f, "({inner})*")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(s: &str) -> Option<u32> {
        s.strip_prefix('p').and_then(|n| n.parse().ok())
    }

    #[test]
    fn parse_example5() {
        let r = Regex::parse("p1 p2* p1", resolve).unwrap();
        assert_eq!(
            r,
            Regex::Concat(vec![
                Regex::Sym(1),
                Regex::Star(Box::new(Regex::Sym(2))),
                Regex::Sym(1)
            ])
        );
    }

    #[test]
    fn parse_alternation_and_groups() {
        let r = Regex::parse("(p1 | p2)+ p3?", resolve).unwrap();
        assert_eq!(r.letters(), vec![1, 2, 3]);
    }

    #[test]
    fn parse_unknown_symbol() {
        assert_eq!(
            Regex::parse("q1", resolve),
            Err(RegexParseError::UnknownSymbol("q1".into()))
        );
    }

    #[test]
    fn parse_unbalanced() {
        assert!(Regex::parse("(p1", resolve).is_err());
        assert!(Regex::parse("p1)", resolve).is_err());
    }

    #[test]
    fn parse_empty_is_epsilon() {
        assert_eq!(Regex::parse("", resolve).unwrap(), Regex::<u32>::Epsilon);
    }

    #[test]
    fn map_letters() {
        let r = Regex::parse("p1 p2*", resolve).unwrap();
        let m = r.map(&|l| l + 10);
        assert_eq!(m.letters(), vec![11, 12]);
    }

    #[test]
    fn word_and_any_of() {
        assert_eq!(
            Regex::word([1u32, 2]),
            Regex::Concat(vec![Regex::Sym(1), Regex::Sym(2)])
        );
        assert_eq!(Regex::<u32>::any_of([]), Regex::Empty);
    }

    #[test]
    fn display_roundtrips_shape() {
        let r: Regex<u32> = Regex::parse("p1 (p2|p3)* p1", resolve).unwrap();
        let s = r.to_string();
        assert!(s.contains('*'));
        assert!(s.contains('|'));
    }
}
