//! Rank-based Büchi complementation (Kupferman–Vardi), and the ω-language
//! containment and equivalence tests built on it.
//!
//! Complementation is used by the test and experiment suites to check that
//! constructed automata (e.g. the state-trace automata of projections)
//! recognize exactly the intended ω-languages. The construction is
//! exponential (`2^O(n log n)`); it is intended for the small automata of
//! the paper's examples.

use crate::buchi::Nba;
use crate::emptiness;
use crate::Letter;
use std::collections::HashMap;

/// A level ranking: `rank[q] = Some(r)` with `r <= 2n`, or `None` (⊥).
type Ranking = Vec<Option<u8>>;

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct KvState {
    rank: Ranking,
    owe: Vec<bool>,
}

/// Complements an NBA using the rank-based (Kupferman–Vardi) construction.
///
/// The resulting NBA accepts exactly the ω-words over the same alphabet that
/// `nba` rejects.
pub fn complement<L: Letter>(nba: &Nba<L>) -> Nba<L> {
    let n = nba.num_states();
    let max_rank = (2 * n) as u8;
    let alphabet: Vec<L> = nba.alphabet().to_vec();

    let mut index: HashMap<KvState, usize> = HashMap::new();
    let mut states: Vec<KvState> = Vec::new();
    let mut out = Nba::new(alphabet.clone(), 0);

    let mut intern = |st: KvState, out: &mut Nba<L>, states: &mut Vec<KvState>| -> usize {
        if let Some(&id) = index.get(&st) {
            return id;
        }
        let id = out.add_state();
        out.set_accepting(id, st.owe.iter().all(|&o| !o));
        index.insert(st.clone(), id);
        states.push(st);
        id
    };

    // Initial state: rank 2n on initial states of A, ⊥ elsewhere; O = ∅.
    let mut init_rank: Ranking = vec![None; n];
    for &q in nba.inits() {
        init_rank[q] = Some(max_rank);
    }
    let init = KvState {
        rank: init_rank,
        owe: vec![false; n],
    };
    let init_id = intern(init, &mut out, &mut states);
    out.set_init(init_id);

    let mut processed = 0usize;
    while processed < states.len() {
        let st = states[processed].clone();
        let sid = processed;
        processed += 1;

        for (li, letter) in alphabet.iter().enumerate() {
            // Upper bound on the rank of each successor state.
            let mut bound: Vec<Option<u8>> = vec![None; n];
            for q in 0..n {
                let Some(fq) = st.rank[q] else { continue };
                for &t in nba.successors_idx(q, li) {
                    bound[t] = Some(match bound[t] {
                        None => fq,
                        Some(b) => b.min(fq),
                    });
                }
            }
            let dom: Vec<usize> = (0..n).filter(|&q| bound[q].is_some()).collect();

            // Enumerate all legal rankings g with g(q) <= bound(q), g(q)
            // even for accepting q.
            let mut rankings: Vec<Ranking> = vec![vec![None; n]];
            for &q in &dom {
                let b = bound[q].expect("in dom");
                let mut next = Vec::new();
                for g in &rankings {
                    for r in 0..=b {
                        if nba.is_accepting(q) && r % 2 == 1 {
                            continue;
                        }
                        let mut g2 = g.clone();
                        g2[q] = Some(r);
                        next.push(g2);
                    }
                }
                rankings = next;
            }

            let owe_empty = st.owe.iter().all(|&o| !o);
            for g in rankings {
                // O' per the construction.
                let mut owe = vec![false; n];
                if owe_empty {
                    for &q in &dom {
                        if g[q].map(|r| r % 2 == 0) == Some(true) {
                            owe[q] = true;
                        }
                    }
                } else {
                    for q in 0..n {
                        if !st.owe[q] {
                            continue;
                        }
                        for &t in nba.successors_idx(q, li) {
                            if g[t].map(|r| r % 2 == 0) == Some(true) {
                                owe[t] = true;
                            }
                        }
                    }
                }
                let target = KvState { rank: g, owe };
                let tid = intern(target, &mut out, &mut states);
                out.add_transition(sid, letter, tid);
            }
        }
    }
    out
}

/// Whether `L(a) ⊆ L(b)` as ω-languages (over the same alphabet).
pub fn is_subset<L: Letter>(a: &Nba<L>, b: &Nba<L>) -> bool {
    let not_b = complement(b);
    emptiness::is_empty(&a.intersect(&not_b))
}

/// Whether `L(a) = L(b)` as ω-languages (over the same alphabet).
pub fn omega_equivalent<L: Letter>(a: &Nba<L>, b: &Nba<L>) -> bool {
    is_subset(a, b) && is_subset(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lasso::Lasso;

    fn inf_ones() -> Nba<u8> {
        let mut a = Nba::new(vec![0, 1], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 1);
        a.add_transition(1, &0, 0);
        a.add_transition(1, &1, 1);
        a
    }

    /// NBA accepting words with finitely many 1s (eventually only 0s).
    fn fin_ones() -> Nba<u8> {
        let mut a = Nba::new(vec![0, 1], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 0);
        a.add_transition(0, &0, 1); // guess the last 1 has passed
        a.add_transition(1, &0, 1);
        a
    }

    #[test]
    fn complement_of_inf_ones_is_fin_ones() {
        let c = complement(&inf_ones());
        // finitely many ones => accepted by complement
        assert!(c.accepts_lasso(&Lasso::new(vec![1, 1, 1], vec![0])));
        assert!(c.accepts_lasso(&Lasso::periodic(vec![0])));
        // infinitely many ones => rejected
        assert!(!c.accepts_lasso(&Lasso::periodic(vec![1])));
        assert!(!c.accepts_lasso(&Lasso::periodic(vec![0, 1])));
    }

    #[test]
    fn complement_agrees_with_manual() {
        // c = ¬inf_ones should equal fin_ones. Checking `fin ⊆ c` as
        // `fin ∩ inf = ∅` avoids complementing the (large) KV output.
        let c = complement(&inf_ones());
        assert!(is_subset(&c, &fin_ones()));
        assert!(emptiness::is_empty(&fin_ones().intersect(&inf_ones())));
    }

    #[test]
    fn subset_checks() {
        // only-zeros ⊆ fin-ones
        let mut zeros = Nba::new(vec![0u8, 1], 1);
        zeros.set_init(0);
        zeros.set_accepting(0, true);
        zeros.add_transition(0, &0, 0);
        assert!(is_subset(&zeros, &fin_ones()));
        assert!(!is_subset(&fin_ones(), &zeros));
        assert!(!is_subset(&zeros, &inf_ones()));
    }

    #[test]
    fn complement_of_empty_is_universal() {
        // Automaton with no accepting state: empty language.
        let mut a = Nba::new(vec![0u8], 1);
        a.set_init(0);
        a.add_transition(0, &0, 0);
        let c = complement(&a);
        assert!(c.accepts_lasso(&Lasso::periodic(vec![0])));
    }

    #[test]
    fn equivalence_is_reflexive() {
        assert!(omega_equivalent(&inf_ones(), &inf_ones()));
        assert!(!omega_equivalent(&inf_ones(), &fin_ones()));
    }
}
