//! Arena-backed successor storage for Büchi emptiness search.
//!
//! The materialized [`Nba`] stores successors as `Vec<Vec<Vec<usize>>>` —
//! one heap allocation per (state, letter) cell. That layout is convenient
//! for incremental construction (unions, products, degeneralization) but
//! wasteful for *search*, where each visited state's out-edges are scanned
//! as a unit: the nested vectors scatter tiny allocations across the heap
//! and the per-letter indirection costs a pointer chase per alphabet symbol
//! even when most cells are empty.
//!
//! This module provides the search-side storage instead:
//!
//! * [`EdgeArena`] — a flat pool of `(letter_index, target)` edges with one
//!   contiguous span per *expanded* state. States are expanded at most once;
//!   the number of expanded nodes is exposed so governed searches can bound
//!   partial progress.
//! * [`SuccessorSource`] — the interface the emptiness engine searches over.
//!   A source reveals a state's out-edges on demand, which lets lazy
//!   implementations (e.g. the symbolic-control NBA of a register automaton)
//!   wire transitions *on the fly* instead of materializing the full
//!   automaton up front.
//! * [`NbaSource`] — the adapter giving a materialized [`Nba`] the same
//!   interface, flattening each state's successor lists into the arena the
//!   first time the search touches it.
//!
//! The flattened edge order is fixed by contract: ascending letter index,
//! then per-letter successor insertion order — exactly the order the nested
//! loops over [`Nba::successors_idx`] produce. The emptiness engine's
//! traversal (and therefore every extracted lasso) is identical whichever
//! source backs it.

use crate::buchi::Nba;
use crate::Letter;

/// Sentinel span start marking a state as not yet expanded.
const UNEXPANDED: u32 = u32::MAX;

/// A flat arena of NBA out-edges, one contiguous `(letter_index, target)`
/// span per expanded state.
///
/// The arena is append-only: a state's edges are recorded once via
/// [`EdgeArena::expand`] and immutable afterwards. [`nodes_expanded`]
/// reports how many states hold a span — the partial-progress measure
/// surfaced by governed on-the-fly searches.
///
/// [`nodes_expanded`]: EdgeArena::nodes_expanded
#[derive(Clone, Debug)]
pub struct EdgeArena {
    /// Flat edge pool; each expanded state owns a contiguous range.
    edges: Vec<(u32, u32)>,
    /// `span[s] = (start, len)` into `edges`, or `start == UNEXPANDED`.
    span: Vec<(u32, u32)>,
    /// Number of expanded states (`O(1)` for diagnostics).
    expanded: usize,
}

impl EdgeArena {
    /// An empty arena for an automaton with `num_states` states.
    pub fn new(num_states: usize) -> Self {
        EdgeArena {
            edges: Vec::new(),
            span: vec![(UNEXPANDED, 0); num_states],
            expanded: 0,
        }
    }

    /// Number of states the arena was sized for.
    pub fn num_states(&self) -> usize {
        self.span.len()
    }

    /// Whether state `s` has been expanded.
    pub fn is_expanded(&self, s: usize) -> bool {
        self.span[s].0 != UNEXPANDED
    }

    /// Number of states expanded so far.
    pub fn nodes_expanded(&self) -> usize {
        self.expanded
    }

    /// Total number of edges stored.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges of `s`, if expanded.
    pub fn get(&self, s: usize) -> Option<&[(u32, u32)]> {
        let (start, len) = self.span[s];
        if start == UNEXPANDED {
            return None;
        }
        Some(&self.edges[start as usize..start as usize + len as usize])
    }

    /// Records the out-edges of `s` (must not already be expanded) and
    /// returns the stored slice.
    pub fn expand(
        &mut self,
        s: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> &[(u32, u32)] {
        debug_assert!(!self.is_expanded(s), "state {s} expanded twice");
        let start = self.edges.len();
        self.edges.extend(edges);
        let len = self.edges.len() - start;
        assert!(
            start < UNEXPANDED as usize && len <= u32::MAX as usize,
            "edge arena overflow"
        );
        self.span[s] = (start as u32, len as u32);
        self.expanded += 1;
        &self.edges[start..start + len]
    }
}

/// A supplier of NBA structure for the emptiness engine.
///
/// `edges` takes `&mut self` so lazy implementations can compute and cache
/// successor lists on first demand; repeated calls for the same state must
/// return the same edges. Edge order is part of the contract: ascending
/// letter index, then per-letter successor order, matching the nested
/// iteration over a materialized [`Nba`]. This pins the engine's traversal —
/// and every lasso it extracts — independently of which source backs it.
pub trait SuccessorSource {
    /// The letter type labelling transitions.
    type L: Letter;

    /// Number of states (known up front even for lazy sources).
    fn num_states(&self) -> usize;

    /// The alphabet, indexed by the letter indices appearing in edges.
    fn alphabet(&self) -> &[Self::L];

    /// The initial states.
    fn inits(&self) -> &[usize];

    /// Whether `s` is accepting.
    fn is_accepting(&self, s: usize) -> bool;

    /// All out-edges of `s` as `(letter_index, target)`, in ascending
    /// letter-index order then per-letter successor order.
    fn edges(&mut self, s: usize) -> &[(u32, u32)];
}

/// [`SuccessorSource`] over a materialized [`Nba`], flattening each state's
/// nested successor lists into an [`EdgeArena`] on first visit.
pub struct NbaSource<'a, L> {
    nba: &'a Nba<L>,
    arena: EdgeArena,
}

impl<'a, L: Letter> NbaSource<'a, L> {
    /// Wraps a materialized NBA.
    pub fn new(nba: &'a Nba<L>) -> Self {
        NbaSource {
            arena: EdgeArena::new(nba.num_states()),
            nba,
        }
    }

    /// The underlying arena (e.g. to inspect how much the search touched).
    pub fn arena(&self) -> &EdgeArena {
        &self.arena
    }
}

impl<L: Letter> SuccessorSource for NbaSource<'_, L> {
    type L = L;

    fn num_states(&self) -> usize {
        self.nba.num_states()
    }

    fn alphabet(&self) -> &[L] {
        self.nba.alphabet()
    }

    fn inits(&self) -> &[usize] {
        self.nba.inits()
    }

    fn is_accepting(&self, s: usize) -> bool {
        self.nba.is_accepting(s)
    }

    fn edges(&mut self, s: usize) -> &[(u32, u32)] {
        if !self.arena.is_expanded(s) {
            let nba = self.nba;
            self.arena.expand(
                s,
                (0..nba.alphabet().len()).flat_map(|li| {
                    nba.successors_idx(s, li)
                        .iter()
                        .map(move |&t| (li as u32, t as u32))
                }),
            );
        }
        self.arena.get(s).expect("just expanded")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Nba<u8> {
        // 0 -a-> 1, 0 -b-> 2, 1 -a-> 3, 2 -b-> 3, 3 -a-> 0.
        let mut a = Nba::new(vec![0, 1], 4);
        a.set_init(0);
        a.set_accepting(3, true);
        a.add_transition(0, &0, 1);
        a.add_transition(0, &1, 2);
        a.add_transition(1, &0, 3);
        a.add_transition(2, &1, 3);
        a.add_transition(3, &0, 0);
        a
    }

    #[test]
    fn arena_expands_once_and_counts() {
        let mut arena = EdgeArena::new(3);
        assert_eq!(arena.nodes_expanded(), 0);
        assert!(arena.get(1).is_none());
        let e = arena.expand(1, vec![(0, 2), (1, 0)]);
        assert_eq!(e, &[(0, 2), (1, 0)]);
        assert_eq!(arena.nodes_expanded(), 1);
        assert!(arena.is_expanded(1));
        assert_eq!(arena.get(1).unwrap(), &[(0, 2), (1, 0)]);
        arena.expand(0, std::iter::empty());
        assert_eq!(arena.nodes_expanded(), 2);
        assert_eq!(arena.get(0).unwrap(), &[] as &[(u32, u32)]);
        assert_eq!(arena.edge_count(), 2);
    }

    #[test]
    fn nba_source_flattens_in_letter_order() {
        let nba = diamond();
        let mut src = NbaSource::new(&nba);
        assert_eq!(src.edges(0), &[(0, 1), (1, 2)]);
        assert_eq!(src.edges(3), &[(0, 0)]);
        // Second call returns the cached span; no further expansion.
        assert_eq!(src.edges(0), &[(0, 1), (1, 2)]);
        assert_eq!(src.arena().nodes_expanded(), 2);
        assert_eq!(src.inits(), &[0]);
        assert!(src.is_accepting(3) && !src.is_accepting(0));
    }
}
