//! Emptiness checking for Büchi automata, with accepting-lasso extraction.
//!
//! Nonemptiness of an NBA is witnessed by an ultimately periodic word: a
//! path from an initial state to an accepting state that lies on a cycle.
//! The decision procedures of Corollary 10 and Theorem 12 reduce to this.
//!
//! The search engine is generic over a [`SuccessorSource`], so it runs
//! identically over a materialized [`Nba`] (via [`NbaSource`]) and over lazy
//! sources that wire transitions on demand — the on-the-fly symbolic-control
//! search of `rega-analysis` never materializes the full automaton on
//! satisfiable instances. The source contract fixes edge order, so the
//! traversal, the dedup decisions, and every extracted lasso are the same
//! whichever backing is used.

use crate::arena::{NbaSource, SuccessorSource};
use crate::buchi::Nba;
use crate::lasso::Lasso;
use crate::Letter;
use std::collections::VecDeque;

/// Breadth-first search from `sources` over the automaton's transition
/// graph, recording `(parent_state, letter_index)` for path reconstruction.
fn bfs<S: SuccessorSource>(src: &mut S, sources: &[usize]) -> Vec<Option<(usize, usize)>> {
    // parent[s] = Some((p, li)) if s reached from p via letter li;
    // sources are marked with a sentinel parent (s, usize::MAX).
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; src.num_states()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if parent[s].is_none() {
            parent[s] = Some((s, usize::MAX));
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for &(li, t) in src.edges(s) {
            let t = t as usize;
            if parent[t].is_none() {
                parent[t] = Some((s, li as usize));
                queue.push_back(t);
            }
        }
    }
    parent
}

/// Reconstructs the letter sequence of the BFS path ending at `target`.
fn path_letters<L: Letter>(
    letters: &[L],
    parent: &[Option<(usize, usize)>],
    mut target: usize,
) -> Vec<L> {
    let mut out = Vec::new();
    while let Some((p, li)) = parent[target] {
        if li == usize::MAX {
            break;
        }
        out.push(letters[li].clone());
        target = p;
    }
    out.reverse();
    out
}

/// Finds a cycle through `pivot` (of length >= 1), returning its letters,
/// or `None` if `pivot` is not on a cycle.
fn cycle_through<S: SuccessorSource>(
    src: &mut S,
    letters: &[S::L],
    pivot: usize,
) -> Option<Vec<S::L>> {
    // BFS from the *successors* of pivot back to pivot.
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; src.num_states()];
    let mut queue = VecDeque::new();
    for &(li, t) in src.edges(pivot) {
        let (li, t) = (li as usize, t as usize);
        if t == pivot {
            return Some(vec![letters[li].clone()]);
        }
        if parent[t].is_none() {
            parent[t] = Some((pivot, li));
            queue.push_back(t);
        }
    }
    while let Some(s) = queue.pop_front() {
        for &(li, t) in src.edges(s) {
            let (li, t) = (li as usize, t as usize);
            if t == pivot {
                // Reconstruct pivot -> ... -> s, then s -> pivot.
                let mut out = vec![letters[li].clone()];
                let mut cur = s;
                while let Some((p, pli)) = parent[cur] {
                    out.push(letters[pli].clone());
                    if p == pivot {
                        break;
                    }
                    cur = p;
                }
                out.reverse();
                return Some(out);
            }
            if parent[t].is_none() {
                parent[t] = Some((s, li));
                queue.push_back(t);
            }
        }
    }
    None
}

/// [`find_accepting_lasso`] over any [`SuccessorSource`]. Lazy sources are
/// only expanded along the frontier the search actually reaches.
pub fn find_accepting_lasso_in<S: SuccessorSource>(src: &mut S) -> Option<Lasso<S::L>> {
    let letters = src.alphabet().to_vec();
    let inits = src.inits().to_vec();
    let from_init = bfs(src, &inits);
    for f in 0..src.num_states() {
        if !src.is_accepting(f) || from_init[f].is_none() {
            continue;
        }
        if let Some(cycle) = cycle_through(src, &letters, f) {
            let prefix = path_letters(&letters, &from_init, f);
            return Some(Lasso::new(prefix, cycle));
        }
    }
    None
}

/// Decides emptiness of the NBA. Returns an accepting lasso if the language
/// is non-empty, `None` otherwise.
pub fn find_accepting_lasso<L: Letter>(nba: &Nba<L>) -> Option<Lasso<L>> {
    find_accepting_lasso_in(&mut NbaSource::new(nba))
}

/// Whether the NBA's language is empty.
pub fn is_empty<L: Letter>(nba: &Nba<L>) -> bool {
    find_accepting_lasso(nba).is_none()
}

/// Enumerates up to `max_lassos` *distinct* accepting lassos: for each
/// reachable accepting state, simple cycles through it (length ≤
/// `max_cycle_len`) are enumerated by DFS, each paired with a shortest
/// prefix from the initial states.
///
/// The decision procedures of `rega-analysis` search this family (plus
/// pumped variants) for a lasso whose induced constraint structure is
/// consistent; enumerating *simple* cycles is the right granularity because
/// any accepted ω-word is a shuffle of simple cycles.
pub fn enumerate_accepting_lassos<L: Letter>(
    nba: &Nba<L>,
    max_lassos: usize,
    max_cycle_len: usize,
) -> Vec<Lasso<L>> {
    enumerate_accepting_lassos_budgeted(nba, max_lassos, max_cycle_len, 500_000)
}

/// [`enumerate_accepting_lassos`] with an explicit bound on the number of
/// DFS expansions — large or dense automata (e.g. verification products)
/// would otherwise explode combinatorially. When the budget is hit, the
/// lassos found so far are returned; shortest cycles are explored first, so
/// small witnesses are found even under tight budgets.
pub fn enumerate_accepting_lassos_budgeted<L: Letter>(
    nba: &Nba<L>,
    max_lassos: usize,
    max_cycle_len: usize,
    max_steps: usize,
) -> Vec<Lasso<L>> {
    enumerate_accepting_lassos_abortable(nba, max_lassos, max_cycle_len, max_steps, &mut || false)
}

/// [`enumerate_accepting_lassos_budgeted`] with an external abort hook,
/// polled once per accepting pivot and once per DFS expansion. When `abort`
/// returns `true` the search stops immediately and the lassos found so far
/// are returned. This is how higher layers (which this crate cannot see)
/// plug deadline/cancellation governance into the search: the hook calls
/// their budget's tick and reports whether it tripped.
pub fn enumerate_accepting_lassos_abortable<L: Letter>(
    nba: &Nba<L>,
    max_lassos: usize,
    max_cycle_len: usize,
    max_steps: usize,
    abort: &mut dyn FnMut() -> bool,
) -> Vec<Lasso<L>> {
    for_each_accepting_lasso(
        &mut NbaSource::new(nba),
        max_lassos,
        max_cycle_len,
        max_steps,
        abort,
        &mut |_| false,
    )
}

/// The enumeration engine behind [`enumerate_accepting_lassos_abortable`],
/// generic over the source and streaming each lasso to `sink` as it is
/// found.
///
/// Lassos are produced in the same order, with the same `same_word` dedup
/// and the same budget accounting, as the materialized enumeration — the
/// sink cannot influence *which* lassos appear, only when to stop. `sink`
/// is called once per newly-found lasso; returning `true` stops the search
/// immediately (the triggering lasso is still included in the result). This
/// is the hook for on-the-fly interleaving: try an expensive per-lasso
/// check (e.g. a witness-run construction) as soon as a candidate appears
/// and stop on first success, instead of materializing the automaton and
/// the full candidate list first.
pub fn for_each_accepting_lasso<S: SuccessorSource>(
    src: &mut S,
    max_lassos: usize,
    max_cycle_len: usize,
    max_steps: usize,
    abort: &mut dyn FnMut() -> bool,
    sink: &mut dyn FnMut(&Lasso<S::L>) -> bool,
) -> Vec<Lasso<S::L>> {
    let letters = src.alphabet().to_vec();
    let inits = src.inits().to_vec();
    let from_init = bfs(src, &inits);
    let mut out: Vec<Lasso<S::L>> = Vec::new();
    // Phase 1: the shortest cycle through each reachable accepting state.
    // Cheap (one BFS per accepting state) and diverse, this guarantees
    // dense automata still yield candidates before the budget is consumed.
    for f in 0..src.num_states() {
        if out.len() >= max_lassos || abort() {
            return out;
        }
        if !src.is_accepting(f) || from_init[f].is_none() {
            continue;
        }
        if let Some(cycle) = cycle_through(src, &letters, f) {
            let lasso = Lasso::new(path_letters(&letters, &from_init, f), cycle);
            if !out.iter().any(|l| l.same_word(&lasso)) {
                let stop = sink(&lasso);
                out.push(lasso);
                if stop {
                    return out;
                }
            }
        }
    }
    // Phase 2: exhaustive simple-cycle enumeration under the step budget
    // (complete for small automata, best-effort for large ones).
    let mut steps = 0usize;
    for f in 0..src.num_states() {
        if out.len() >= max_lassos || steps >= max_steps || abort() {
            break;
        }
        if !src.is_accepting(f) || from_init[f].is_none() {
            continue;
        }
        let prefix = path_letters(&letters, &from_init, f);
        // BFS (shortest-first) over simple paths from f back to f.
        // Queue entries: (current state, letters so far, visited set).
        let mut stack: VecDeque<(usize, Vec<S::L>, Vec<bool>)> = VecDeque::new();
        let mut visited0 = vec![false; src.num_states()];
        visited0[f] = true;
        stack.push_back((f, Vec::new(), visited0));
        while let Some((s, cur, visited)) = stack.pop_front() {
            if out.len() >= max_lassos || steps >= max_steps || abort() {
                break;
            }
            steps += 1;
            for &(li, t) in src.edges(s) {
                let (li, t) = (li as usize, t as usize);
                let mut cycle = cur.clone();
                cycle.push(letters[li].clone());
                if t == f {
                    if out.len() >= max_lassos {
                        continue;
                    }
                    let lasso = Lasso::new(prefix.clone(), cycle);
                    if !out.iter().any(|l| l.same_word(&lasso)) {
                        let stop = sink(&lasso);
                        out.push(lasso);
                        if stop {
                            return out;
                        }
                    }
                } else if !visited[t] && cycle.len() < max_cycle_len {
                    let mut v2 = visited.clone();
                    v2[t] = true;
                    stack.push_back((t, cycle, v2));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inf_ones() -> Nba<u8> {
        let mut a = Nba::new(vec![0, 1], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 1);
        a.add_transition(1, &0, 0);
        a.add_transition(1, &1, 1);
        a
    }

    #[test]
    fn nonempty_produces_valid_lasso() {
        let a = inf_ones();
        let lasso = find_accepting_lasso(&a).expect("non-empty");
        assert!(a.accepts_lasso(&lasso));
    }

    #[test]
    fn empty_when_accepting_unreachable() {
        let mut a = Nba::new(vec![0u8], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 0);
        // state 1 unreachable
        a.add_transition(1, &0, 1);
        assert!(is_empty(&a));
    }

    #[test]
    fn empty_when_accepting_not_on_cycle() {
        let mut a = Nba::new(vec![0u8], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 1);
        // state 1 is a dead end
        assert!(is_empty(&a));
    }

    #[test]
    fn self_loop_lasso() {
        let mut a = Nba::new(vec![0u8, 1], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 1);
        a.add_transition(1, &1, 1);
        let lasso = find_accepting_lasso(&a).unwrap();
        assert_eq!(lasso.prefix, vec![0]);
        assert_eq!(lasso.cycle, vec![1]);
        assert!(a.accepts_lasso(&lasso));
    }

    #[test]
    fn intersection_emptiness() {
        // inf-ones ∩ only-zeros = empty
        let mut zeros = Nba::new(vec![0u8, 1], 1);
        zeros.set_init(0);
        zeros.set_accepting(0, true);
        zeros.add_transition(0, &0, 0);
        let product = inf_ones().intersect(&zeros);
        assert!(is_empty(&product));
    }

    #[test]
    fn longer_cycle_extraction() {
        // accepting state on a 3-cycle: 0 ->a 1 ->b 2 ->c 0, accept at 2,
        // init 0. Lasso: prefix "ab", cycle "cab" (or rotation).
        let mut a = Nba::new(vec![0u8, 1, 2], 3);
        a.set_init(0);
        a.set_accepting(2, true);
        a.add_transition(0, &0, 1);
        a.add_transition(1, &1, 2);
        a.add_transition(2, &2, 0);
        let lasso = find_accepting_lasso(&a).unwrap();
        assert!(a.accepts_lasso(&lasso));
        assert_eq!(lasso.cycle.len(), 3);
    }
}

#[cfg(test)]
mod enumerate_tests {
    use super::*;
    use crate::arena::NbaSource;

    #[test]
    fn enumerates_multiple_cycles() {
        // 0 -a-> 0, 0 -b-> 1 -c-> 0; accept 0. Cycles through 0: "a", "bc".
        let mut a = Nba::new(vec![0u8, 1, 2], 2);
        a.set_init(0);
        a.set_accepting(0, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 1);
        a.add_transition(1, &2, 0);
        let lassos = enumerate_accepting_lassos(&a, 10, 5);
        assert_eq!(lassos.len(), 2);
        for l in &lassos {
            assert!(a.accepts_lasso(l), "lasso {l} must be accepted");
        }
    }

    #[test]
    fn respects_limits() {
        let mut a = Nba::new(vec![0u8, 1], 1);
        a.set_init(0);
        a.set_accepting(0, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 0);
        // Many simple cycles of length 1 and... only 2 (letters a and b).
        let lassos = enumerate_accepting_lassos(&a, 1, 5);
        assert_eq!(lassos.len(), 1);
    }

    #[test]
    fn empty_automaton_enumerates_nothing() {
        let mut a = Nba::new(vec![0u8], 2);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 0);
        assert!(enumerate_accepting_lassos(&a, 10, 10).is_empty());
    }

    #[test]
    fn sink_streams_in_enumeration_order_and_stops_early() {
        // 0 -a-> 0, 0 -b-> 1 -c-> 0; accept 0: lassos "a", "bc".
        let mut a = Nba::new(vec![0u8, 1, 2], 2);
        a.set_init(0);
        a.set_accepting(0, true);
        a.add_transition(0, &0, 0);
        a.add_transition(0, &1, 1);
        a.add_transition(1, &2, 0);
        let full = enumerate_accepting_lassos(&a, 10, 5);
        // Streaming without stopping yields the full list in order.
        let mut seen = Vec::new();
        let streamed = for_each_accepting_lasso(
            &mut NbaSource::new(&a),
            10,
            5,
            500_000,
            &mut || false,
            &mut |l| {
                seen.push(l.clone());
                false
            },
        );
        assert_eq!(streamed, full);
        assert_eq!(seen, full);
        // Stopping at the first lasso returns a prefix of the full list,
        // including the triggering lasso.
        let stopped = for_each_accepting_lasso(
            &mut NbaSource::new(&a),
            10,
            5,
            500_000,
            &mut || false,
            &mut |_| true,
        );
        assert_eq!(stopped, full[..1]);
    }

    #[test]
    fn lazy_source_expands_only_reachable_frontier() {
        // 0 -a-> 1 (accept, self-loop) plus unreachable tail 2 -a-> 3.
        let mut a = Nba::new(vec![0u8, 1], 4);
        a.set_init(0);
        a.set_accepting(1, true);
        a.add_transition(0, &0, 1);
        a.add_transition(1, &1, 1);
        a.add_transition(2, &0, 3);
        let mut src = NbaSource::new(&a);
        let lasso = find_accepting_lasso_in(&mut src).unwrap();
        assert!(a.accepts_lasso(&lasso));
        // States 2 and 3 were never expanded.
        assert!(!src.arena().is_expanded(2));
        assert!(!src.arena().is_expanded(3));
        assert!(src.arena().nodes_expanded() <= 2);
    }
}
