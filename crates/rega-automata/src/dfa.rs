//! Total deterministic finite automata over explicit finite alphabets.
//!
//! DFAs are used throughout the library as compiled *constraint monitors*:
//! the regular expressions of an extended automaton's global constraints are
//! compiled to DFAs over the automaton's state set, and run incrementally
//! along symbolic and concrete traces.

use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::Letter;
use std::collections::HashMap;

/// A total DFA over the explicit alphabet `alphabet`. Transitions are stored
/// densely: `trans[state][letter_index]`.
#[derive(Clone, Debug)]
pub struct Dfa<L> {
    alphabet: Vec<L>,
    letter_index: HashMap<L, usize>,
    init: usize,
    accepting: Vec<bool>,
    trans: Vec<Vec<usize>>,
}

impl<L: Letter> Dfa<L> {
    /// Builds a DFA from raw parts. `trans` must be total: one row per
    /// state, one entry per alphabet letter.
    pub fn from_parts(
        alphabet: Vec<L>,
        init: usize,
        accepting: Vec<bool>,
        trans: Vec<Vec<usize>>,
    ) -> Self {
        debug_assert_eq!(accepting.len(), trans.len());
        debug_assert!(trans.iter().all(|row| row.len() == alphabet.len()));
        let letter_index = alphabet
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i))
            .collect();
        Dfa {
            alphabet,
            letter_index,
            init,
            accepting,
            trans,
        }
    }

    /// Compiles a regular expression to a minimal total DFA over `alphabet`.
    pub fn from_regex(regex: &Regex<L>, alphabet: &[L]) -> Self {
        Nfa::from_regex(regex).determinize(alphabet).minimize()
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &[L] {
        &self.alphabet
    }

    /// The initial state.
    pub fn init(&self) -> usize {
        self.init
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: usize) -> bool {
        self.accepting[s]
    }

    /// The index of a letter in the alphabet, if present.
    pub fn letter_index(&self, letter: &L) -> Option<usize> {
        self.letter_index.get(letter).copied()
    }

    /// One transition step. Panics if the letter is not in the alphabet.
    pub fn step(&self, s: usize, letter: &L) -> usize {
        let li = self.letter_index[letter];
        self.trans[s][li]
    }

    /// One transition step by letter index.
    pub fn step_idx(&self, s: usize, letter_idx: usize) -> usize {
        self.trans[s][letter_idx]
    }

    /// Runs the DFA on a word from a state.
    pub fn run_from(&self, mut s: usize, word: &[L]) -> usize {
        for letter in word {
            s = self.step(s, letter);
        }
        s
    }

    /// Whether the DFA accepts the word.
    pub fn accepts(&self, word: &[L]) -> bool {
        self.accepting[self.run_from(self.init, word)]
    }

    /// Whether the accepted language is empty.
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.init];
        seen[self.init] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s] {
                return false;
            }
            for &t in &self.trans[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Complement (flips acceptance; the DFA is total).
    pub fn complement(&self) -> Dfa<L> {
        let mut c = self.clone();
        for a in &mut c.accepting {
            *a = !*a;
        }
        c
    }

    /// Product of two DFAs over the same alphabet, combining acceptance with
    /// `combine` (e.g. `&&` for intersection, `||` for union).
    pub fn product(&self, other: &Dfa<L>, combine: impl Fn(bool, bool) -> bool) -> Dfa<L> {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = vec![(self.init, other.init)];
        index.insert((self.init, other.init), 0);
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let (a, b) = pairs[i];
            i += 1;
            let mut row = Vec::with_capacity(self.alphabet.len());
            for li in 0..self.alphabet.len() {
                let next = (self.trans[a][li], other.trans[b][li]);
                let id = *index.entry(next).or_insert_with(|| {
                    pairs.push(next);
                    pairs.len() - 1
                });
                row.push(id);
            }
            trans.push(row);
        }
        let accepting = pairs
            .iter()
            .map(|&(a, b)| combine(self.accepting[a], other.accepting[b]))
            .collect();
        Dfa::from_parts(self.alphabet.clone(), 0, accepting, trans)
    }

    /// Intersection.
    pub fn intersect(&self, other: &Dfa<L>) -> Dfa<L> {
        self.product(other, |a, b| a && b)
    }

    /// Union.
    pub fn union(&self, other: &Dfa<L>) -> Dfa<L> {
        self.product(other, |a, b| a || b)
    }

    /// Language equivalence test (via minimization-free product check).
    pub fn equivalent(&self, other: &Dfa<L>) -> bool {
        self.product(other, |a, b| a != b).is_empty()
    }

    /// Moore's partition-refinement minimization (also removes unreachable
    /// states).
    pub fn minimize(&self) -> Dfa<L> {
        // Restrict to reachable states first.
        let mut reach = vec![false; self.num_states()];
        let mut stack = vec![self.init];
        reach[self.init] = true;
        while let Some(s) = stack.pop() {
            for &t in &self.trans[s] {
                if !reach[t] {
                    reach[t] = true;
                    stack.push(t);
                }
            }
        }
        let reachable: Vec<usize> = (0..self.num_states()).filter(|&s| reach[s]).collect();
        let mut old_to_new: Vec<usize> = vec![usize::MAX; self.num_states()];
        for (i, &s) in reachable.iter().enumerate() {
            old_to_new[s] = i;
        }

        // Initial partition: accepting vs non-accepting.
        let mut class: Vec<usize> = reachable
            .iter()
            .map(|&s| usize::from(self.accepting[s]))
            .collect();
        loop {
            // Signature: (class, classes of successors).
            let mut sig_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut new_class = vec![0usize; reachable.len()];
            for (i, &s) in reachable.iter().enumerate() {
                let succ: Vec<usize> = self.trans[s]
                    .iter()
                    .map(|&t| class[old_to_new[t]])
                    .collect();
                let key = (class[i], succ);
                let next_id = sig_index.len();
                let id = *sig_index.entry(key).or_insert(next_id);
                new_class[i] = id;
            }
            let stable = new_class == class;
            class = new_class;
            if stable {
                break;
            }
        }

        let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
        let mut trans = vec![Vec::new(); num_classes];
        let mut accepting = vec![false; num_classes];
        let mut done = vec![false; num_classes];
        for (i, &s) in reachable.iter().enumerate() {
            let c = class[i];
            if done[c] {
                continue;
            }
            done[c] = true;
            accepting[c] = self.accepting[s];
            trans[c] = self.trans[s]
                .iter()
                .map(|&t| class[old_to_new[t]])
                .collect();
        }
        let init = class[old_to_new[self.init]];
        Dfa::from_parts(self.alphabet.clone(), init, accepting, trans)
    }

    /// Re-bases the DFA onto a new alphabet: each new letter `m` behaves
    /// like the old letter `f(m)`. Used when automaton states are refined
    /// (e.g. the state-driven construction maps `Q × X → Q`).
    pub fn rebase_alphabet<M: Letter>(&self, new_alphabet: Vec<M>, f: impl Fn(&M) -> L) -> Dfa<M> {
        let trans = self
            .trans
            .iter()
            .map(|_| Vec::with_capacity(new_alphabet.len()))
            .collect::<Vec<_>>();
        let mut dfa = Dfa {
            letter_index: new_alphabet
                .iter()
                .enumerate()
                .map(|(i, l)| (l.clone(), i))
                .collect(),
            alphabet: new_alphabet,
            init: self.init,
            accepting: self.accepting.clone(),
            trans,
        };
        for s in 0..self.trans.len() {
            for m in dfa.alphabet.clone() {
                let old = f(&m);
                let li = self.letter_index[&old];
                let t = self.trans[s][li];
                dfa.trans[s].push(t);
            }
        }
        dfa
    }

    /// All states reachable from the initial state.
    pub fn reachable_states(&self) -> Vec<usize> {
        let mut reach = vec![false; self.num_states()];
        let mut stack = vec![self.init];
        reach[self.init] = true;
        while let Some(s) = stack.pop() {
            for &t in &self.trans[s] {
                if !reach[t] {
                    reach[t] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.num_states()).filter(|&s| reach[s]).collect()
    }

    /// Whether some accepting state is reachable from `s`.
    pub fn can_accept_from(&self, s: usize) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            if self.accepting[u] {
                return true;
            }
            for &t in &self.trans[u] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(s: &str) -> Option<u32> {
        s.strip_prefix('p').and_then(|n| n.parse().ok())
    }

    fn dfa(expr: &str) -> Dfa<u32> {
        let r = Regex::parse(expr, resolve).unwrap();
        Dfa::from_regex(&r, &[1, 2, 3])
    }

    #[test]
    fn from_regex_accepts() {
        let d = dfa("p1 p2* p1");
        assert!(d.accepts(&[1, 1]));
        assert!(d.accepts(&[1, 2, 2, 1]));
        assert!(!d.accepts(&[1, 2]));
        assert!(!d.accepts(&[1, 3, 1]));
    }

    #[test]
    fn complement_flips() {
        let d = dfa("p1*");
        let c = d.complement();
        assert!(d.accepts(&[1, 1]));
        assert!(!c.accepts(&[1, 1]));
        assert!(!d.accepts(&[2]));
        assert!(c.accepts(&[2]));
    }

    #[test]
    fn intersection_and_union() {
        let a = dfa("p1* p2");
        let b = dfa("(p1 p1)* p2");
        let i = a.intersect(&b);
        assert!(i.accepts(&[1, 1, 2]));
        assert!(!i.accepts(&[1, 2]));
        let u = a.union(&b);
        assert!(u.accepts(&[1, 2]));
        assert!(u.accepts(&[1, 1, 2]));
        assert!(!u.accepts(&[3]));
    }

    #[test]
    fn equivalence() {
        let a = dfa("p1 p1*");
        let b = dfa("p1* p1");
        assert!(a.equivalent(&b));
        let c = dfa("p1*");
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn minimize_reduces() {
        // (p1|p2|p3)* has a 1-state minimal DFA.
        let d = dfa("(p1|p2|p3)*");
        assert_eq!(d.minimize().num_states(), 1);
    }

    #[test]
    fn minimize_preserves_language() {
        let d = dfa("p1 (p2 p1)* p3");
        let m = d.minimize();
        for word in [
            vec![1, 3],
            vec![1, 2, 1, 3],
            vec![1, 2, 3],
            vec![3],
            vec![],
            vec![1, 2, 1, 2, 1, 3],
        ] {
            assert_eq!(d.accepts(&word), m.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn emptiness() {
        let d = dfa("p1");
        assert!(!d.is_empty());
        // p1 ∩ p2 is empty
        let e = dfa("p1").intersect(&dfa("p2"));
        assert!(e.is_empty());
    }

    #[test]
    fn rebase_alphabet() {
        // Over {1,2}: language p1 p2. Rebase to pairs (letter, flag).
        let r = Regex::parse("p1 p2", resolve).unwrap();
        let d = Dfa::from_regex(&r, &[1, 2]);
        let new_alpha: Vec<(u32, bool)> = vec![(1, false), (1, true), (2, false), (2, true)];
        let d2 = d.rebase_alphabet(new_alpha, |&(l, _)| l);
        assert!(d2.accepts(&[(1, true), (2, false)]));
        assert!(!d2.accepts(&[(2, true), (1, false)]));
    }

    #[test]
    fn can_accept_from_states() {
        let d = dfa("p1 p2");
        assert!(d.can_accept_from(d.init()));
        let dead = d.step(d.init(), &3);
        assert!(!d.can_accept_from(dead));
    }
}
