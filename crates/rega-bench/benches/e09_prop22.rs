//! E9 (Proposition 22): the streaming enforcement engine — peak slot usage
//! versus the `2M² + 1` budget on LR-bounded input, and its growth on the
//! non-LR-bounded Example 16 𝒜′.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::paper;
use rega_core::run::{Config, LassoRun};
use rega_core::{StateId, TransId};
use rega_data::Value;
use rega_views::prop22::enforce_lasso;

fn alternating_run() -> LassoRun {
    LassoRun::new(
        vec![
            Config::new(StateId(0), vec![Value(1)]),
            Config::new(StateId(0), vec![Value(2)]),
        ],
        vec![TransId(0), TransId(0)],
        0,
    )
}

fn main() {
    let mut c: Criterion = rega_bench::criterion();

    println!("e09: peak slots vs horizon (paper: bounded case fits 2M²+1; unbounded grows)");
    println!("e09: horizon  bounded_peak (budget 9)  unbounded_peak (budget 9)");
    let bounded = paper::example16_a();
    let unbounded = paper::example16_a_prime();
    let p = unbounded.ra().state_by_name("p").unwrap();
    let t_pp = unbounded
        .ra()
        .outgoing(p)
        .iter()
        .copied()
        .find(|&t| unbounded.ra().transition(t).to == p)
        .unwrap();
    let p_run = LassoRun::new(
        vec![
            Config::new(p, vec![Value(1)]),
            Config::new(p, vec![Value(2)]),
        ],
        vec![t_pp, t_pp],
        0,
    );
    let a_run = alternating_run();
    for horizon in [8usize, 16, 32, 64] {
        let rb = enforce_lasso(&bounded, &a_run, 2, horizon).unwrap();
        let ru = enforce_lasso(&unbounded, &p_run, 2, horizon).unwrap();
        println!(
            "e09: {:>7}  {:>22}  {:>24}",
            horizon, rb.peak_slots, ru.peak_slots
        );
        c.bench_with_input(
            BenchmarkId::new("e09/enforce_bounded", horizon),
            &horizon,
            |b, &h| b.iter(|| enforce_lasso(black_box(&bounded), &a_run, 2, h).unwrap()),
        );
        c.bench_with_input(
            BenchmarkId::new("e09/enforce_unbounded", horizon),
            &horizon,
            |b, &h| b.iter(|| enforce_lasso(black_box(&unbounded), &p_run, 2, h).unwrap()),
        );
    }
    c.final_summary();
}
