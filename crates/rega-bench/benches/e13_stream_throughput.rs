//! E13: streaming engine throughput on the reviewing workflow — events/sec
//! as a function of shard count and worker count.
//!
//! Workload: many concurrent sessions of the abstract reviewing-workflow
//! automaton (Section 5's running example), each a legal trace
//! `start → submitted → (under_review … revising …)* → accepted`,
//! interleaved round-robin into one stream. One iteration = submit the
//! whole stream + clean shutdown, so the measured time covers queueing,
//! demultiplexing, transition checking, and constraint monitoring.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_data::{Database, Schema, Value};
use rega_stream::{CompiledSpec, Engine, EngineConfig, Event, SessionStatus};
use rega_workflow::abstract_model;
use std::sync::Arc;
use std::time::Instant;

const SESSIONS: usize = 256;
const REVIEW_ROUNDS: usize = 3;

/// A legal event trace for one paper: ids are disjoint across sessions.
fn session_events(id: usize) -> Vec<Event> {
    let session = format!("paper-{id}");
    let base = (id as u64) * 8;
    let (p, a, r1, r2) = (base, base + 1, base + 2, base + 3);
    let step = |state: &str, regs: [u64; 3]| Event::Step {
        session: session.clone(),
        state: state.to_string(),
        regs: regs.iter().map(|&v| Value(v)).collect(),
    };
    let mut out = vec![step("start", [p, a, p]), step("submitted", [p, a, p])];
    for round in 0..REVIEW_ROUNDS {
        let reviewer = if round % 2 == 0 { r1 } else { r2 };
        out.push(step("under_review", [p, a, reviewer]));
        out.push(step("under_review", [p, a, reviewer]));
        if round + 1 < REVIEW_ROUNDS {
            out.push(step("revising", [p, a, p]));
        }
    }
    out.push(step("accepted", [p, a, r1]));
    out.push(Event::End { session });
    out
}

/// The interleaved multi-session stream.
fn build_stream() -> Vec<Event> {
    let per_session: Vec<Vec<Event>> = (0..SESSIONS).map(session_events).collect();
    let longest = per_session.iter().map(Vec::len).max().unwrap_or(0);
    let mut stream = Vec::new();
    for pos in 0..longest {
        for events in &per_session {
            if let Some(e) = events.get(pos) {
                stream.push(e.clone());
            }
        }
    }
    stream
}

fn run_stream(spec: &Arc<CompiledSpec>, config: EngineConfig, stream: &[Event]) -> usize {
    let mut engine = Engine::start(Arc::clone(spec), config);
    for event in stream {
        engine.submit(event.clone()).expect("submit");
    }
    let report = engine.finish();
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.status == SessionStatus::Ended),
        "the workload must be a legal trace for every session"
    );
    report.outcomes.len()
}

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let workflow = abstract_model();
    let ext = rega_core::ExtendedAutomaton::new(workflow.automaton.clone());
    let db = Database::new(Schema::empty());
    let spec = Arc::new(CompiledSpec::compile(ext, db, None).expect("compiles"));
    let stream = build_stream();

    println!(
        "e13: streaming throughput, reviewing workflow, {} sessions, {} events/iteration",
        SESSIONS,
        stream.len()
    );

    let config = |shards: usize, workers: usize| EngineConfig {
        shards,
        workers,
        queue_capacity: 1024,
        max_view_frontier: 64,
        ..EngineConfig::default()
    };

    // Sweep 1: workers at fixed shard count (8).
    for workers in [1usize, 2, 4, 8] {
        c.bench_with_input(
            BenchmarkId::new("e13/workers@8shards", workers),
            &workers,
            |b, &w| b.iter(|| run_stream(black_box(&spec), config(8, w), &stream)),
        );
    }
    // Sweep 2: shards with one worker per shard.
    for shards in [1usize, 2, 4, 8] {
        c.bench_with_input(
            BenchmarkId::new("e13/shards=workers", shards),
            &shards,
            |b, &s| b.iter(|| run_stream(black_box(&spec), config(s, s), &stream)),
        );
    }

    // Direct events/sec table (medians over a few full runs) for the
    // EXPERIMENTS.md scaling claim.
    println!("e13: events/sec (median of 5 runs)");
    for (label, shards, workers) in [
        ("1 worker / 8 shards", 8, 1),
        ("2 workers / 8 shards", 8, 2),
        ("4 workers / 8 shards", 8, 4),
        ("8 workers / 8 shards", 8, 8),
        ("1 shard / 1 worker", 1, 1),
        ("4 shards / 4 workers", 4, 4),
    ] {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                run_stream(&spec, config(shards, workers), &stream);
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let eps = stream.len() as f64 / times[2];
        println!("  {label:<24} {:>12.0} events/sec", eps);
    }
    c.final_summary();
}
