//! E5 (Example 8): state traces of extended automata are quasi-regular but
//! not ω-regular — the longest `p`-block tracks the database size, a
//! non-regular dependence. Prints the measured block bounds per `|P|`.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::simulate::SearchLimits;
use rega_views::counterexamples::example8_longest_p_block;

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let limits = SearchLimits {
        max_nodes: 2_000_000,
        max_runs: 500_000,
    };

    println!("e05: Example 8 — longest pure-p prefix vs |P| (paper: block bound = |P|)");
    println!("e05: |P|  longest_prefix (= |P| + dangling position)");
    for n in 1..=4usize {
        let best = example8_longest_p_block(n, limits);
        println!("e05: {n:>3}  {best}");
        c.bench_with_input(BenchmarkId::new("e05/p_block_bound", n), &n, |b, &n| {
            b.iter(|| example8_longest_p_block(black_box(n), limits))
        });
    }
    c.final_summary();
}
