//! E16: tracing overhead — e13's streaming throughput workload with the
//! observability layer in its three states:
//!
//! * **no sink** (the default): `is_active()` is one relaxed atomic load,
//!   span/event macros early-out before evaluating their fields;
//! * **in-memory sink**: every span/event is recorded to a `Vec` behind a
//!   mutex — the upper bound a cheap sink can cost;
//! * **JSONL sink**: every record is serialized and written through a
//!   buffered file handle — the production trace configuration.
//!
//! The acceptance bar (ISSUE/E16): the JSONL sink must cost < 3% of e13
//! throughput. Spans are batch-granular in the engine (one per drained
//! shard burst, not one per event), which is what keeps the bill small.

use rega_data::{Database, Schema, Value};
use rega_stream::{CompiledSpec, Engine, EngineConfig, Event, SessionStatus};
use rega_workflow::abstract_model;
use std::sync::Arc;
use std::time::Instant;

const SESSIONS: usize = 256;
const REVIEW_ROUNDS: usize = 3;
const RUNS: usize = 15;
/// Engine runs per timed sample: one run is only a few milliseconds, so a
/// single spawn/teardown would drown the measurement in scheduler noise.
const ITERS_PER_SAMPLE: usize = 8;

fn session_events(id: usize) -> Vec<Event> {
    let session = format!("paper-{id}");
    let base = (id as u64) * 8;
    let (p, a, r1, r2) = (base, base + 1, base + 2, base + 3);
    let step = |state: &str, regs: [u64; 3]| Event::Step {
        session: session.clone(),
        state: state.to_string(),
        regs: regs.iter().map(|&v| Value(v)).collect(),
    };
    let mut out = vec![step("start", [p, a, p]), step("submitted", [p, a, p])];
    for round in 0..REVIEW_ROUNDS {
        let reviewer = if round % 2 == 0 { r1 } else { r2 };
        out.push(step("under_review", [p, a, reviewer]));
        out.push(step("under_review", [p, a, reviewer]));
        if round + 1 < REVIEW_ROUNDS {
            out.push(step("revising", [p, a, p]));
        }
    }
    out.push(step("accepted", [p, a, r1]));
    out.push(Event::End { session });
    out
}

fn build_stream() -> Vec<Event> {
    let per_session: Vec<Vec<Event>> = (0..SESSIONS).map(session_events).collect();
    let longest = per_session.iter().map(Vec::len).max().unwrap_or(0);
    let mut stream = Vec::new();
    for pos in 0..longest {
        for events in &per_session {
            if let Some(e) = events.get(pos) {
                stream.push(e.clone());
            }
        }
    }
    stream
}

fn run_stream(spec: &Arc<CompiledSpec>, stream: &[Event]) -> usize {
    // One worker: on the small CI-class machines this repo targets, a
    // multi-worker sweep measures the kernel scheduler, not the tracer —
    // e13 covers scaling; here the variable under test is the sink.
    let config = EngineConfig {
        shards: 2,
        workers: 1,
        queue_capacity: 1024,
        max_view_frontier: 64,
        ..EngineConfig::default()
    };
    let mut engine = Engine::start(Arc::clone(spec), config);
    for event in stream {
        engine.submit(event.clone()).expect("submit");
    }
    let report = engine.finish();
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.status == SessionStatus::Ended),
        "the workload must be a legal trace for every session"
    );
    report.outcomes.len()
}

/// One timed sample ([`ITERS_PER_SAMPLE`] runs of the workload), seconds.
fn timed_run(spec: &Arc<CompiledSpec>, stream: &[Event]) -> f64 {
    let t = Instant::now();
    for _ in 0..ITERS_PER_SAMPLE {
        run_stream(spec, stream);
    }
    t.elapsed().as_secs_f64() / ITERS_PER_SAMPLE as f64
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|x, y| x.partial_cmp(y).unwrap());
    times[times.len() / 2]
}

fn main() {
    let workflow = abstract_model();
    let ext = rega_core::ExtendedAutomaton::new(workflow.automaton.clone());
    let db = Database::new(Schema::empty());
    let spec = Arc::new(CompiledSpec::compile(ext, db, None).expect("compiles"));
    let stream = build_stream();

    println!(
        "e16: tracing overhead on the e13 workload, {} sessions, {} events/iteration, \
         2 shards / 1 worker, median of {} interleaved rounds",
        SESSIONS,
        stream.len(),
        RUNS
    );

    // Warm up caches/allocator so the first configuration isn't penalized.
    run_stream(&spec, &stream);

    // Interleave the three configurations round-robin so machine drift
    // (thermal, cohabiting load) hits all of them equally rather than
    // whichever configuration happens to run last.
    let trace_path = std::env::temp_dir().join(format!("e16_trace_{}.jsonl", std::process::id()));
    let mut none_t = Vec::with_capacity(RUNS);
    let mut memory_t = Vec::with_capacity(RUNS);
    let mut jsonl_t = Vec::with_capacity(RUNS);
    let mut trace_bytes = 0;
    for _ in 0..RUNS {
        none_t.push(timed_run(&spec, &stream));
        {
            let (_sink, _guard) = rega_obs::install_memory();
            memory_t.push(timed_run(&spec, &stream));
        }
        {
            let _guard = rega_obs::install_jsonl(&trace_path).expect("trace file");
            jsonl_t.push(timed_run(&spec, &stream));
        }
        trace_bytes = std::fs::metadata(&trace_path).map(|m| m.len()).unwrap_or(0);
    }
    let _ = std::fs::remove_file(&trace_path);

    let eps = |t: f64| stream.len() as f64 / t;
    let base = eps(median(&mut none_t));
    let memory = eps(median(&mut memory_t));
    let jsonl = eps(median(&mut jsonl_t));
    println!("  no sink                  {base:>12.0} events/sec  (baseline)");
    println!(
        "  in-memory sink           {memory:>12.0} events/sec  ({:+.2}%)",
        (memory / base - 1.0) * 100.0
    );
    println!(
        "  JSONL sink               {jsonl:>12.0} events/sec  ({:+.2}%, {} KiB trace/run)",
        (jsonl / base - 1.0) * 100.0,
        trace_bytes / 1024 / ITERS_PER_SAMPLE as u64
    );
    println!(
        "e16: JSONL-sink overhead {:.2}% (acceptance bar: < 3%)",
        (1.0 - jsonl / base) * 100.0
    );
}
