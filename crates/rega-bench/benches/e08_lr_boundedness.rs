//! E8 (Definition 15 / Theorem 18): LR-boundedness decisions on the
//! paper's example pair and on random extended automata; timing versus
//! automaton size.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_analysis::lr::{is_lr_bounded, LrOptions};
use rega_core::generate::{random_extended, GenParams};
use rega_core::paper;

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let opts = LrOptions::default();

    println!("e08: LR-boundedness verdicts (paper: 𝒜 bounded, 𝒜′ and Example 7 unbounded)");
    for (name, ext) in [
        ("example16_A", paper::example16_a()),
        ("example16_A'", paper::example16_a_prime()),
        ("example7", paper::example7()),
        ("example5", paper::example5()),
    ] {
        let v = is_lr_bounded(&ext, &opts).unwrap();
        println!("e08:   {name}: bounded={} bound={}", v.bounded, v.bound);
        c.bench_function(format!("e08/{name}"), |b| {
            b.iter(|| is_lr_bounded(black_box(&ext), &opts).unwrap())
        });
    }

    for states in [2usize, 3, 4] {
        let params = GenParams {
            states,
            k: 2,
            out_degree: 2,
            literals_per_type: 2,
            unary_relations: 0,
            relational_probability: 0.0,
        };
        let ext = random_extended(&params, 2, 21);
        c.bench_with_input(
            BenchmarkId::new("e08/random_states", states),
            &ext,
            |b, e| b.iter(|| is_lr_bounded(black_box(e), &opts).unwrap()),
        );
    }
    c.final_summary();
}
