//! E15: σ-type interning + satisfiability cache — `scontrol_nba` and
//! `check_emptiness` on the E4 (paper-example emptiness), E7 (projection
//! view) and E10 (database-hiding view) workloads, direct path (a fresh
//! cache per call, the pre-interning behaviour) versus a persistent warm
//! [`SatCache`]. Emits the machine-readable artifact `BENCH_e15.json` at
//! the repository root alongside the human-readable log.

use rega_analysis::emptiness::{check_emptiness, check_emptiness_cached, EmptinessOptions};
use rega_bench::{fmt_secs, measure_pair, write_bench_json, Measured};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::symbolic::{scontrol_nba, scontrol_nba_cached};
use rega_core::{paper, ExtendedAutomaton};
use rega_data::SatCache;
use rega_views::prop20::project_register_automaton;
use rega_views::thm24::{project_hiding_database, Thm24Options};
use serde_json::json;

const SAMPLES: usize = 12;

struct Workload {
    group: &'static str,
    name: &'static str,
    ext: ExtendedAutomaton,
}

fn workloads() -> Vec<Workload> {
    let mut w = Vec::new();
    // E4: the emptiness suite over the paper's examples.
    for (name, ext) in [
        ("example1", ExtendedAutomaton::new(paper::example1().0)),
        ("example5", paper::example5()),
        ("example7", paper::example7()),
        ("example8", paper::example8()),
        ("example23", ExtendedAutomaton::new(paper::example23())),
    ] {
        w.push(Workload {
            group: "e04",
            name,
            ext,
        });
    }
    // E7: projection views (Prop 20) — the view automata the projection
    // pipeline feeds back into the decision procedures.
    let gen = |states: usize, seed: u64| {
        random_automaton(
            &GenParams {
                states,
                k: 2,
                out_degree: 2,
                literals_per_type: 2,
                unary_relations: 0,
                relational_probability: 0.0,
            },
            seed,
        )
    };
    w.push(Workload {
        group: "e07",
        name: "view(example1, m=1)",
        ext: project_register_automaton(&paper::example1().0, 1)
            .unwrap()
            .view,
    });
    w.push(Workload {
        group: "e07",
        name: "view(random-3s-2k, m=1)",
        ext: project_register_automaton(&gen(3, 5), 1).unwrap().view,
    });
    // E10: Theorem 24's database-hiding construction on Example 23.
    w.push(Workload {
        group: "e10",
        name: "example23 (raw)",
        ext: ExtendedAutomaton::new(paper::example23()),
    });
    w.push(Workload {
        group: "e10",
        name: "thm24-view(example23, m=1)",
        ext: project_hiding_database(&paper::example23(), 1, &Thm24Options::default())
            .unwrap()
            .view
            .ext()
            .clone(),
    });
    w
}

fn speedup(direct: &Measured, cached: &Measured) -> f64 {
    direct.median_secs / cached.median_secs.max(1e-12)
}

fn main() {
    let opts = EmptinessOptions::default();
    let mut entries = Vec::new();
    let mut scontrol_speedups = Vec::new();
    let mut emptiness_speedups = Vec::new();

    println!("e15: σ-type interning — direct vs warm-cached, median per call");
    println!(
        "e15: {:<5} {:<27} {:>12} {:>12} {:>8}   {:>12} {:>12} {:>8}",
        "group",
        "workload",
        "sctl-direct",
        "sctl-cached",
        "speedup",
        "empt-direct",
        "empt-cached",
        "speedup"
    );
    let mut combined_speedups = Vec::new();
    for w in workloads() {
        let ra = w.ext.ra();
        // Direct path: the public API builds a fresh cache per call. The
        // seed code memoized within each call (local `type_ids` /
        // `joint_sat` maps, per-build analyses), so this is a faithful
        // before-baseline; the cached path adds cross-call reuse.
        let cache = SatCache::new(ra.schema().clone());
        let (sctl_direct, sctl_cached) = measure_pair(
            SAMPLES,
            || scontrol_nba(ra).unwrap(),
            || scontrol_nba_cached(ra, &cache).unwrap(),
        );
        let (empt_direct, empt_cached) = measure_pair(
            SAMPLES,
            || check_emptiness(&w.ext, &opts).unwrap(),
            || check_emptiness_cached(&w.ext, &opts, &cache).unwrap(),
        );
        // The combined analysis pass every consumer of the symbolic layer
        // runs (verification, chase, monitoring startup): SControl
        // construction followed by the emptiness decision.
        let (comb_direct, comb_cached) = measure_pair(
            SAMPLES,
            || {
                let nba = scontrol_nba(ra).unwrap();
                (nba, check_emptiness(&w.ext, &opts).unwrap())
            },
            || {
                let nba = scontrol_nba_cached(ra, &cache).unwrap();
                (nba, check_emptiness_cached(&w.ext, &opts, &cache).unwrap())
            },
        );
        let stats = cache.stats();

        let s_sctl = speedup(&sctl_direct, &sctl_cached);
        let s_empt = speedup(&empt_direct, &empt_cached);
        let s_comb = speedup(&comb_direct, &comb_cached);
        scontrol_speedups.push(s_sctl);
        emptiness_speedups.push(s_empt);
        combined_speedups.push(s_comb);
        println!(
            "e15: {:<5} {:<27} {:>12} {:>12} {:>7.2}x   {:>12} {:>12} {:>7.2}x",
            w.group,
            w.name,
            fmt_secs(sctl_direct.median_secs),
            fmt_secs(sctl_cached.median_secs),
            s_sctl,
            fmt_secs(empt_direct.median_secs),
            fmt_secs(empt_cached.median_secs),
            s_empt,
        );
        println!(
            "e15:       combined sctl+empt: direct {} cached {} ({:.2}x); \
             cache: {} hits / {} misses (hit rate {:.1}%), {} distinct types",
            fmt_secs(comb_direct.median_secs),
            fmt_secs(comb_cached.median_secs),
            s_comb,
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
            stats.distinct_types
        );
        entries.push(json!({
            "group": w.group,
            "workload": w.name,
            "scontrol_nba": {
                "direct": sctl_direct.to_json(),
                "cached": sctl_cached.to_json(),
                "speedup": s_sctl,
            },
            "check_emptiness": {
                "direct": empt_direct.to_json(),
                "cached": empt_cached.to_json(),
                "speedup": s_empt,
            },
            "combined_scontrol_plus_emptiness": {
                "direct": comb_direct.to_json(),
                "cached": comb_cached.to_json(),
                "speedup": s_comb,
            },
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hit_rate(),
                "distinct_types": stats.distinct_types,
            },
        }));
    }

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let med_sctl = median(&mut scontrol_speedups);
    let med_empt = median(&mut emptiness_speedups);
    let med_comb = median(&mut combined_speedups);
    println!(
        "e15: median speedup — scontrol_nba {med_sctl:.2}x, check_emptiness {med_empt:.2}x, \
         combined {med_comb:.2}x"
    );

    let payload = json!({
        "experiment": "e15_type_interning",
        "samples_per_measurement": SAMPLES,
        "note": "direct = fresh SatCache per call (pre-interning behaviour); \
                 cached = persistent warm SatCache shared across calls; \
                 single-core wall-clock medians, measured in alternating \
                 direct/cached order to cancel clock drift",
        "workloads": entries,
        "summary": {
            "median_speedup_scontrol_nba": med_sctl,
            "median_speedup_check_emptiness": med_empt,
            "median_speedup_combined": med_comb,
        },
    });
    let path = write_bench_json("BENCH_e15", &payload);
    println!("e15: wrote {}", path.display());
}
