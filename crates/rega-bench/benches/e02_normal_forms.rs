//! E2 (§2, Examples 2–3): the blow-ups of the normal forms — completion is
//! exponential in the register count, the state-driven form quadratic in
//! the type count. Prints measured output sizes per `k`.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::transform::{complete, state_driven};

fn main() {
    let mut c: Criterion = rega_bench::criterion();

    println!("e02: completion/state-driven sizes vs k (3 states, 2 transitions/state)");
    println!("e02: k  input_trans  completed_trans  state_driven_states");
    for k in 1..=3u16 {
        let params = GenParams {
            states: 3,
            k,
            out_degree: 2,
            literals_per_type: 1,
            unary_relations: 0,
            relational_probability: 0.0,
        };
        let ra = random_automaton(&params, 42);
        let completed = complete(&ra).unwrap();
        let sd = state_driven(&completed);
        println!(
            "e02: {}  {:>11}  {:>15}  {:>19}",
            k,
            ra.num_transitions(),
            completed.num_transitions(),
            sd.automaton.num_states()
        );
        c.bench_with_input(BenchmarkId::new("e02/complete", k), &ra, |b, ra| {
            b.iter(|| complete(black_box(ra)).unwrap())
        });
        c.bench_with_input(
            BenchmarkId::new("e02/state_driven", k),
            &completed,
            |b, ra| b.iter(|| state_driven(black_box(ra))),
        );
    }
    c.final_summary();
}
