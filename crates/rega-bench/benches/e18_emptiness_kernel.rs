//! E18: the fast symbolic kernel — on-the-fly emptiness (lazy `SControl`
//! expansion into an edge arena, bitset σ-type joint-satisfiability,
//! incremental stabilized class builds, witness construction interleaved
//! with the lasso search) versus the retained reference pipeline
//! (materialized NBA, up-front lasso enumeration, from-scratch class
//! rebuilds per horizon). Both run uncached public entry points, so the
//! comparison isolates the kernel itself rather than cross-call memoization
//! (that axis is E15's subject).
//!
//! Workloads come in two groups. The `paper` group is the E4 suite of the
//! paper's five examples — correctness anchors small enough that both
//! pipelines finish in microseconds and the kernel's gain is modest. The
//! `scaling` group is random automata of growing state count, out-degree,
//! and register count — the regime the kernel targets, where the reference
//! pays for materializing the full symbolic NBA and rebuilding class
//! structures from scratch at every horizon. The two pipelines are timed
//! in alternation (fast / reference / fast / reference) keeping the best
//! median per side, so machine-state drift cannot masquerade as kernel
//! speedup. Verdict identity (and witness-lasso identity on non-empty
//! instances) is asserted before any timing is recorded. Emits
//! `BENCH_e18.json` at the repository root.

use rega_analysis::emptiness::{
    check_emptiness, check_emptiness_reference, EmptinessOptions, EmptinessVerdict,
};
use rega_bench::{fmt_secs, measure_pair, write_bench_json};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::{paper, ExtendedAutomaton};
use serde_json::json;

const SAMPLES: usize = 10;

fn workloads() -> Vec<(String, &'static str, ExtendedAutomaton)> {
    let mut w = vec![
        (
            "example1".to_string(),
            "paper",
            ExtendedAutomaton::new(paper::example1().0),
        ),
        ("example5".to_string(), "paper", paper::example5()),
        ("example7".to_string(), "paper", paper::example7()),
        ("example8".to_string(), "paper", paper::example8()),
        (
            "example23".to_string(),
            "paper",
            ExtendedAutomaton::new(paper::example23()),
        ),
    ];
    // Growing state count at the E4 generator shape.
    for states in [4usize, 8, 12, 16, 20] {
        let ra = random_automaton(
            &GenParams {
                states,
                k: 2,
                out_degree: 2,
                literals_per_type: 2,
                unary_relations: 1,
                relational_probability: 0.4,
            },
            13,
        );
        w.push((
            format!("random-{states}s"),
            "scaling",
            ExtendedAutomaton::new(ra),
        ));
    }
    // Denser transition structure: larger symbolic alphabets per state.
    for (states, out_degree) in [(8usize, 4usize), (12, 4), (16, 6)] {
        let ra = random_automaton(
            &GenParams {
                states,
                k: 2,
                out_degree,
                literals_per_type: 2,
                unary_relations: 1,
                relational_probability: 0.4,
            },
            13,
        );
        w.push((
            format!("dense-{states}s-d{out_degree}"),
            "scaling",
            ExtendedAutomaton::new(ra),
        ));
    }
    // A third register: wider σ-types through the bitset joint-sat path.
    let ra = random_automaton(
        &GenParams {
            states: 8,
            k: 3,
            out_degree: 2,
            literals_per_type: 3,
            unary_relations: 1,
            relational_probability: 0.4,
        },
        13,
    );
    w.push((
        "regs3-8s".to_string(),
        "scaling",
        ExtendedAutomaton::new(ra),
    ));
    w
}

/// Asserts the two pipelines agree exactly on this workload and returns
/// (nonempty, witness-lassos-identical).
fn assert_identical_verdicts(ext: &ExtendedAutomaton, opts: &EmptinessOptions, name: &str) -> bool {
    let fast = check_emptiness(ext, opts).unwrap();
    let refr = check_emptiness_reference(ext, opts).unwrap();
    match (&fast, &refr) {
        (EmptinessVerdict::Empty, EmptinessVerdict::Empty) => false,
        (EmptinessVerdict::NonEmpty(wf), EmptinessVerdict::NonEmpty(wr)) => {
            assert_eq!(
                wf.control, wr.control,
                "e18: {name}: pipelines accepted different witness lassos"
            );
            true
        }
        _ => panic!(
            "e18: {name}: verdict mismatch — fast={} reference={}",
            fast.is_nonempty(),
            refr.is_nonempty()
        ),
    }
}

fn main() {
    let opts = EmptinessOptions::default();
    let mut entries = Vec::new();
    let mut speedups = Vec::new();

    let mut group_speedups: Vec<(&'static str, Vec<f64>)> =
        vec![("paper", Vec::new()), ("scaling", Vec::new())];

    println!("e18: on-the-fly emptiness kernel vs retained reference pipeline");
    println!(
        "e18: {:<16} {:<8} {:>8} {:>12} {:>12} {:>8}",
        "workload", "group", "nonempty", "fast", "reference", "speedup"
    );
    for (name, group, ext) in workloads() {
        let nonempty = assert_identical_verdicts(&ext, &opts, &name);
        let (fast, refr) = measure_pair(
            SAMPLES,
            || check_emptiness(&ext, &opts).unwrap(),
            || check_emptiness_reference(&ext, &opts).unwrap(),
        );
        let speedup = refr.median_secs / fast.median_secs.max(1e-12);
        speedups.push(speedup);
        group_speedups
            .iter_mut()
            .find(|(g, _)| *g == group)
            .unwrap()
            .1
            .push(speedup);
        println!(
            "e18: {:<16} {:<8} {:>8} {:>12} {:>12} {:>7.2}x",
            name,
            group,
            nonempty,
            fmt_secs(fast.median_secs),
            fmt_secs(refr.median_secs),
            speedup,
        );
        entries.push(json!({
            "workload": name,
            "group": group,
            "nonempty": nonempty,
            "verdicts_identical": true,
            "fast": fast.to_json(),
            "reference": refr.to_json(),
            "speedup": speedup,
        }));
    }

    let median_of = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let median_speedup = median_of(&mut speedups);
    println!(
        "e18: median speedup {median_speedup:.2}x over {} workloads (min {:.2}x, max {:.2}x)",
        speedups.len(),
        speedups[0],
        speedups[speedups.len() - 1],
    );
    let mut group_medians = Vec::new();
    for (group, mut v) in group_speedups {
        let m = median_of(&mut v);
        println!(
            "e18:   {group} group median {m:.2}x over {} workloads",
            v.len()
        );
        group_medians.push(json!({ "group": group, "median_speedup": m, "workloads": v.len() }));
    }

    let payload = json!({
        "experiment": "e18_emptiness_kernel",
        "note": "fast = on-the-fly kernel (public check_emptiness), reference = retained \
                 materialize-then-enumerate pipeline; alternating best-median timing; \
                 verdicts and witness lassos asserted identical before timing",
        "median_speedup": median_speedup,
        "min_speedup": speedups[0],
        "max_speedup": speedups[speedups.len() - 1],
        "group_medians": group_medians,
        "workloads": entries,
    });
    let path = write_bench_json("BENCH_e18", &payload);
    println!("e18: wrote {}", path.display());
}
