//! E3 (Proposition 6): eliminating global equality constraints with extra
//! registers — measures the construction time and the register/state
//! growth versus the number of constraints.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::generate::{random_extended_equalities, GenParams};
use rega_views::prop6::eliminate_global_equalities;

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    println!("e03: prop6 growth vs number of equality constraints");
    println!("e03: n_constraints  k_in  k_out  states_in  states_out");
    for n in 0..=3usize {
        let params = GenParams {
            states: 3,
            k: 2,
            out_degree: 2,
            literals_per_type: 1,
            unary_relations: 0,
            relational_probability: 0.0,
        };
        let ext = random_extended_equalities(&params, n, 7);
        let r = eliminate_global_equalities(&ext).unwrap();
        println!(
            "e03: {:>13}  {:>4}  {:>5}  {:>9}  {:>10}",
            n,
            ext.k(),
            r.automaton.k(),
            ext.ra().num_states(),
            r.automaton.ra().num_states()
        );
        c.bench_with_input(BenchmarkId::new("e03/eliminate", n), &ext, |b, ext| {
            b.iter(|| eliminate_global_equalities(black_box(ext)).unwrap())
        });
    }
    c.final_summary();
}
