//! E12 (ablation): incremental constraint monitoring versus naive
//! re-checking from scratch — the "streaming" claim behind Section 5.
//!
//! The incremental monitor advances DFA runs per position (amortized
//! O(active states)); the naive baseline re-walks every factor of the
//! prefix at every step (O(n²) DFA steps per run).

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::extended::ConstraintKind;
use rega_core::monitor::ConstraintMonitor;
use rega_core::{paper, ExtendedAutomaton, StateId};
use rega_data::Value;

/// Naive baseline: at each new position, re-check every factor ending
/// anywhere in the prefix against every constraint.
fn naive_check(ext: &ExtendedAutomaton, states: &[StateId], values: &[Value]) -> bool {
    for end in 0..states.len() {
        for c in ext.constraints() {
            for n in 0..=end {
                let mut s = c.dfa().init();
                for (m, q) in states.iter().enumerate().take(end + 1).skip(n) {
                    s = c.dfa().step(s, q);
                    if c.dfa().is_accepting(s) {
                        let ok = match c.kind {
                            ConstraintKind::Equal => values[n] == values[m],
                            ConstraintKind::NotEqual => values[n] != values[m],
                        };
                        if !ok {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

fn incremental_check(ext: &ExtendedAutomaton, states: &[StateId], values: &[Value]) -> bool {
    let mut monitor = ConstraintMonitor::new(ext);
    for (s, v) in states.iter().zip(values.iter()) {
        if monitor.step(ext, *s, &[*v]).is_some() {
            return false;
        }
    }
    true
}

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    // Example 5's equality constraint as the monitored workload; a long
    // legal trace alternating p1 p2 p2 …
    let ext = paper::example5();
    let p1 = ext.ra().state_by_name("p1").unwrap();
    let p2 = ext.ra().state_by_name("p2").unwrap();

    println!("e12: incremental vs naive constraint checking (Example 5's e=11)");
    for len in [16usize, 64, 256] {
        let mut states = Vec::with_capacity(len);
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            if i % 3 == 0 {
                states.push(p1);
                values.push(Value(1));
            } else {
                states.push(p2);
                values.push(Value(100 + i as u64));
            }
        }
        assert!(naive_check(&ext, &states, &values));
        assert!(incremental_check(&ext, &states, &values));
        c.bench_with_input(
            BenchmarkId::new("e12/incremental", len),
            &(states.clone(), values.clone()),
            |b, (s, v)| b.iter(|| incremental_check(black_box(&ext), s, v)),
        );
        c.bench_with_input(
            BenchmarkId::new("e12/naive", len),
            &(states, values),
            |b, (s, v)| b.iter(|| naive_check(black_box(&ext), s, v)),
        );
    }

    // Guard for the per-step cost of `ConstraintMonitor::step` itself: one
    // warm monitor driven over a long trace, reusing its buffers. The
    // single-predecessor set moves mean steady-state steps should not
    // allocate; a regression here shows up directly in the per-step time.
    let len = 4096usize;
    let mut states = Vec::with_capacity(len);
    let mut values = Vec::with_capacity(len);
    for i in 0..len {
        if i % 3 == 0 {
            states.push(p1);
            values.push(Value(1));
        } else {
            states.push(p2);
            values.push(Value(100 + i as u64));
        }
    }
    c.bench_function("e12/monitor_step_warm", |b| {
        b.iter(|| {
            let mut monitor = ConstraintMonitor::new(&ext);
            let mut ok = true;
            for (s, v) in states.iter().zip(values.iter()) {
                ok &= monitor.step(black_box(&ext), *s, &[*v]).is_none();
            }
            ok
        })
    });
    c.final_summary();
}
