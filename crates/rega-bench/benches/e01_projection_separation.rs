//! E1 (Examples 1, 4, 5): register automata are not closed under
//! projection; extended automata are.
//!
//! Measures: (a) the time to refute the unconstrained candidate view and to
//! confirm Example 5 / the constructed view; (b) the probe-lasso membership
//! checks that carry the semantic argument. Prints the separation verdicts
//! recorded in EXPERIMENTS.md.

use criterion::black_box;
use rega_automata::Lasso;
use rega_core::simulate::{self, SearchLimits};
use rega_core::{paper, ExtendedAutomaton};
use rega_data::{Database, Schema, SigmaType, Value};
use rega_views::counterexamples::refute_view_candidate;
use rega_views::prop20::project_register_automaton;

fn limits() -> SearchLimits {
    SearchLimits {
        max_nodes: 2_000_000,
        max_runs: 500_000,
    }
}

fn free_candidate() -> ExtendedAutomaton {
    let mut ra = rega_core::RegisterAutomaton::new(1, Schema::empty());
    let p1 = ra.add_state("p1");
    let p2 = ra.add_state("p2");
    ra.set_initial(p1);
    ra.set_accepting(p1);
    for (a, b) in [(p1, p2), (p2, p2), (p2, p1)] {
        ra.add_transition(a, SigmaType::empty(1), b).unwrap();
    }
    ExtendedAutomaton::new(ra)
}

fn main() {
    let mut c: criterion::Criterion = rega_bench::criterion();
    let pool = vec![Value(1), Value(2)];

    // Report the verdicts (the "table" this experiment reproduces).
    let free = free_candidate();
    let ex5 = paper::example5();
    let constructed = project_register_automaton(&paper::example1().0, 1)
        .unwrap()
        .view;
    println!("e01: candidate refuted?");
    for (name, cand) in [
        ("unconstrained-RA", &free),
        ("example5-extended", &ex5),
        ("prop20-constructed", &constructed),
    ] {
        let refuted = refute_view_candidate(cand, 4, &pool, limits()).unwrap();
        println!("e01:   {name}: {refuted}");
    }

    c.bench_function("e01/refute_unconstrained", |b| {
        b.iter(|| refute_view_candidate(black_box(&free), 4, &pool, limits()).unwrap())
    });
    c.bench_function("e01/confirm_example5", |b| {
        b.iter(|| refute_view_candidate(black_box(&ex5), 4, &pool, limits()).unwrap())
    });

    // Probe-lasso membership (the infinite-horizon argument).
    let db = Database::new(Schema::empty());
    let original = ExtendedAutomaton::new(paper::example1().0);
    let vanishing = Lasso::new(vec![vec![Value(1)]], vec![vec![Value(2)], vec![Value(2)]]);
    c.bench_function("e01/probe_lasso_membership", |b| {
        b.iter(|| {
            simulate::find_lasso_with_projection(
                black_box(&original),
                &db,
                &vanishing,
                &pool,
                12,
                limits(),
            )
            .unwrap()
        })
    });
    c.final_summary();
}
