//! E7 (Theorem 13 / Proposition 20): projection-view construction — output
//! automaton sizes versus input sizes, and construction time; registers
//! projected one by one.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::paper;
use rega_views::prop20::project_register_automaton;
use rega_views::thm13::project_extended;

fn main() {
    let mut c: Criterion = rega_bench::criterion();

    println!("e07: projection view sizes (prop20), input -> output");
    println!("e07: input            in_states  in_trans  view_states  view_trans  constraints");
    let inputs: Vec<(&str, rega_core::RegisterAutomaton)> = vec![
        ("example1", paper::example1().0),
        (
            "random-2s-2k",
            random_automaton(
                &GenParams {
                    states: 2,
                    k: 2,
                    out_degree: 2,
                    literals_per_type: 2,
                    unary_relations: 0,
                    relational_probability: 0.0,
                },
                3,
            ),
        ),
        (
            "random-3s-2k",
            random_automaton(
                &GenParams {
                    states: 3,
                    k: 2,
                    out_degree: 2,
                    literals_per_type: 2,
                    unary_relations: 0,
                    relational_probability: 0.0,
                },
                5,
            ),
        ),
    ];
    for (name, ra) in &inputs {
        let proj = project_register_automaton(ra, 1).unwrap();
        println!(
            "e07: {:<16} {:>9}  {:>8}  {:>11}  {:>10}  {:>11}",
            name,
            ra.num_states(),
            ra.num_transitions(),
            proj.view.ra().num_states(),
            proj.view.ra().num_transitions(),
            proj.view.constraints().len()
        );
        c.bench_with_input(BenchmarkId::new("e07/prop20", name), ra, |b, ra| {
            b.iter(|| project_register_automaton(black_box(ra), 1).unwrap())
        });
    }

    // Theorem 13 on an extended input (Example 5): through Proposition 6.
    let ext = paper::example5();
    let t13 = project_extended(&ext, 1).unwrap();
    println!(
        "e07: thm13(example5): intermediate k = {}, view states = {}, constraints = {}",
        t13.intermediate_k,
        t13.view.ra().num_states(),
        t13.view.constraints().len()
    );
    c.bench_function("e07/thm13_example5", |b| {
        b.iter(|| project_extended(black_box(&ext), 1).unwrap())
    });
    c.final_summary();
}
