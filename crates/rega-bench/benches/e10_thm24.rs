//! E10 (Theorem 24 / Example 23): the database-hiding projection —
//! construction time and output constraint counts, plus the enhanced
//! lasso check (tuple constraints enumerated per candidate run).

use criterion::{black_box, Criterion};
use rega_core::paper;
use rega_core::run::{Config, LassoRun};
use rega_data::{Database, Schema, Value};
use rega_views::thm24::{project_hiding_database, Thm24Options};

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let a = paper::example23();
    let opts = Thm24Options::default();

    let proj = project_hiding_database(&a, 1, &opts).unwrap();
    println!(
        "e10: thm24(example23): view states={}, ext constraints={}, finiteness={}, tuple={}",
        proj.view.ext().ra().num_states(),
        proj.view.ext().constraints().len(),
        proj.view.finiteness_constraints().len(),
        proj.view.tuple_inequalities().len()
    );
    c.bench_function("e10/construct", |b| {
        b.iter(|| project_hiding_database(black_box(&a), 1, &opts).unwrap())
    });

    // Enhanced lasso check: a legal alternating run.
    let ra2 = proj.view.ext().ra();
    let empty_db = Database::new(Schema::empty());
    let p_state = ra2
        .states()
        .find(|&s| ra2.is_initial(s) && !ra2.outgoing(s).is_empty())
        .unwrap();
    let t1 = ra2.outgoing(p_state)[0];
    let q_state = ra2.transition(t1).to;
    if let Some(t2) = ra2
        .outgoing(q_state)
        .iter()
        .copied()
        .find(|&t| ra2.transition(t).to == p_state)
    {
        let run = LassoRun::new(
            vec![
                Config::new(p_state, vec![Value(0)]),
                Config::new(q_state, vec![Value(1)]),
            ],
            vec![t1, t2],
            0,
        );
        let accepted = proj.view.check_lasso_run(&empty_db, &run, Some(10)).is_ok();
        println!("e10: alternating run accepted by the enhanced view: {accepted}");
        c.bench_function("e10/enhanced_check", |b| {
            b.iter(|| {
                proj.view
                    .check_lasso_run(&empty_db, black_box(&run), Some(10))
            })
        });
    }
    c.final_summary();
}
