//! E4 (Theorem 9 / Corollary 10): emptiness of extended automata — timing
//! on the paper's examples and on random automata of growing size; witness
//! database sizes. Also emits the machine-readable artifact
//! `BENCH_e04.json` at the repository root.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_analysis::emptiness::{check_emptiness, EmptinessOptions, EmptinessVerdict};
use rega_bench::{measure, write_bench_json};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::{paper, ExtendedAutomaton};
use serde_json::json;

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let opts = EmptinessOptions::default();
    let mut entries = Vec::new();

    println!("e04: emptiness verdicts and witness sizes on the paper's examples");
    println!("e04: example   nonempty  periodic_run  witness_db_facts");
    for (name, ext) in [
        ("example1", ExtendedAutomaton::new(paper::example1().0)),
        ("example5", paper::example5()),
        ("example7", paper::example7()),
        ("example8", paper::example8()),
        ("example23", ExtendedAutomaton::new(paper::example23())),
    ] {
        let v = check_emptiness(&ext, &opts).unwrap();
        let (nonempty, periodic, facts) = match &v {
            EmptinessVerdict::NonEmpty(w) => {
                println!(
                    "e04: {:<9} {:>8}  {:>12}  {:>16}",
                    name,
                    true,
                    w.lasso_run.is_some(),
                    w.database.total_facts()
                );
                (true, w.lasso_run.is_some(), w.database.total_facts())
            }
            EmptinessVerdict::Empty => {
                println!("e04: {name:<9} {:>8}", false);
                (false, false, 0)
            }
        };
        c.bench_function(format!("e04/{name}"), |b| {
            b.iter(|| check_emptiness(black_box(&ext), &opts).unwrap())
        });
        let m = measure(10, || check_emptiness(&ext, &opts).unwrap());
        entries.push(json!({
            "workload": name,
            "nonempty": nonempty,
            "periodic_run": periodic,
            "witness_db_facts": facts,
            "check_emptiness": m.to_json(),
        }));
    }

    // Scaling with automaton size.
    for states in [2usize, 4, 6, 8] {
        let params = GenParams {
            states,
            k: 2,
            out_degree: 2,
            literals_per_type: 2,
            unary_relations: 1,
            relational_probability: 0.4,
        };
        let ext = ExtendedAutomaton::new(random_automaton(&params, 13));
        c.bench_with_input(
            BenchmarkId::new("e04/random_states", states),
            &ext,
            |b, ext| b.iter(|| check_emptiness(black_box(ext), &opts).unwrap()),
        );
        let m = measure(10, || check_emptiness(&ext, &opts).unwrap());
        entries.push(json!({
            "workload": format!("random_states/{states}"),
            "check_emptiness": m.to_json(),
        }));
    }
    c.final_summary();

    let payload = json!({
        "experiment": "e04_emptiness",
        "note": "single-core wall-clock medians via the rega-bench measure helper",
        "workloads": entries,
    });
    let path = write_bench_json("BENCH_e04", &payload);
    println!("e04: wrote {}", path.display());
}
