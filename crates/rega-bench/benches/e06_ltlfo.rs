//! E6 (Theorem 12): LTL-FO verification time versus formula size and
//! automaton size, on the reviewing workflow, with both verdicts.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_analysis::verify::{verify, VerifyOptions};
use rega_core::ExtendedAutomaton;
use rega_data::{Qf, QfTerm};
use rega_logic::LtlFo;
use rega_workflow::abstract_model;

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let ext = ExtendedAutomaton::new(abstract_model().automaton);
    let opts = VerifyOptions::default();

    let stable = |i: u16| Qf::Eq(QfTerm::x(i), QfTerm::y(i));
    let formulas: Vec<(&str, LtlFo)> = vec![
        (
            "G-1prop (holds)",
            LtlFo::new("X (G p)", [("p", stable(0))]).unwrap(),
        ),
        (
            "G-1prop (fails)",
            LtlFo::new("X (G p)", [("p", stable(2))]).unwrap(),
        ),
        (
            "nested-FG (holds)",
            LtlFo::new(
                "F (G (p & q & r))",
                [("p", stable(0)), ("q", stable(1)), ("r", stable(2))],
            )
            .unwrap(),
        ),
        (
            "global-var (holds)",
            LtlFo::new(
                "X (G (a -> (b | u)))",
                [
                    ("a", Qf::Eq(QfTerm::x(1), QfTerm::z(0))),
                    ("b", Qf::neq(QfTerm::x(2), QfTerm::z(0))),
                    ("u", Qf::Eq(QfTerm::x(2), QfTerm::x(0))),
                ],
            )
            .unwrap(),
        ),
        (
            "global-var (fails)",
            LtlFo::new(
                "X (G (a -> b))",
                [
                    ("a", Qf::Eq(QfTerm::x(0), QfTerm::z(0))),
                    ("b", Qf::neq(QfTerm::x(2), QfTerm::z(0))),
                ],
            )
            .unwrap(),
        ),
    ];

    println!("e06: verification verdicts on the workflow");
    for (name, phi) in &formulas {
        let holds = verify(&ext, phi, &opts).unwrap().holds();
        println!("e06:   {name}: holds={holds}");
        c.bench_with_input(BenchmarkId::new("e06/verify", name), phi, |b, phi| {
            b.iter(|| verify(black_box(&ext), phi, &opts).unwrap())
        });
    }
    c.final_summary();
}
