//! E17: resource-governor overhead — every exponential construction now
//! routes through [`Budget::tick`] at loop granularity, so the question is
//! what that costs when nothing trips. Two states of the same code path:
//!
//! * **unarmed** ([`Budget::unlimited`]): the budget handle is empty; a
//!   tick is a single branch on an `Option` — this is the hot path every
//!   pre-existing `*_cached` entry point takes;
//! * **armed** (generous limits nothing in the workload approaches): a
//!   tick is a relaxed load/compare/store on the node counter plus a
//!   stride-amortized (every 64th tick) deadline/cancellation check.
//!
//! The acceptance bar (ISSUE 5): armed-vs-unarmed must stay within the
//! ±5% noise floor of this harness on the construction workloads below —
//! the governor is bookkeeping, not a second algorithm.

use rega_analysis::emptiness::{check_emptiness_governed, EmptinessOptions};
use rega_bench::{fmt_secs, write_bench_json};
use rega_core::generate::{random_automaton, GenParams};
use rega_core::symbolic::scontrol_nba_governed;
use rega_core::{paper, Budget, BudgetSpec, ExtendedAutomaton};
use rega_data::{SatCache, Schema};
use rega_views::{project_extended_governed, project_register_automaton_governed};
use serde_json::json;
use std::time::Instant;

const RUNS: usize = 15;
/// Minimum length of one timed sample: the micro workloads finish in a
/// handful of microseconds on the warm cache, so iterations per sample
/// are sized to keep each sample above this floor and out of
/// scheduler-jitter territory.
const SAMPLE_FLOOR_SECS: f64 = 5e-3;

/// Limits far above anything the workloads reach, so the armed budget
/// exercises the full tick bookkeeping without ever tripping.
fn generous() -> Budget {
    Budget::start(&BudgetSpec {
        deadline_ms: Some(3_600_000),
        max_nodes: Some(u64::MAX >> 1),
        max_types: None,
    })
}

type Workload = (&'static str, Box<dyn Fn(&Budget)>);

/// The governed constructions under test. Each closure owns a warm
/// [`SatCache`]: with satisfiability memoized, per-iteration work is
/// dominated by the governed loops themselves, which makes the measured
/// tick overhead a *worst case* relative to cold-cache runs.
fn workloads() -> Vec<Workload> {
    let mut out: Vec<Workload> = Vec::new();
    for (name, ext) in [
        (
            "emptiness/example1",
            ExtendedAutomaton::new(paper::example1().0),
        ),
        ("emptiness/example5", paper::example5()),
        ("emptiness/example8", paper::example8()),
        (
            "emptiness/random8",
            ExtendedAutomaton::new(random_automaton(
                &GenParams {
                    states: 8,
                    k: 2,
                    out_degree: 2,
                    literals_per_type: 2,
                    unary_relations: 1,
                    relational_probability: 0.4,
                },
                13,
            )),
        ),
    ] {
        let cache = SatCache::new(ext.ra().schema().clone());
        let opts = EmptinessOptions::default();
        out.push((
            name,
            Box::new(move |b: &Budget| {
                check_emptiness_governed(&ext, &opts, &cache, b).unwrap();
            }),
        ));
    }

    let flat = random_automaton(
        &GenParams {
            states: 6,
            k: 2,
            out_degree: 2,
            literals_per_type: 2,
            unary_relations: 0,
            relational_probability: 0.0,
        },
        7,
    );
    let cache = SatCache::new(Schema::empty());
    out.push((
        "views/prop20_random6",
        Box::new(move |b: &Budget| {
            project_register_automaton_governed(&flat, 1, &cache, b).unwrap();
        }),
    ));

    let ext1 = ExtendedAutomaton::new(paper::example1().0);
    let cache = SatCache::new(Schema::empty());
    out.push((
        "views/thm13_example1",
        Box::new(move |b: &Budget| {
            project_extended_governed(&ext1, 1, &cache, b).unwrap();
        }),
    ));

    let ra5 = paper::example5().ra().clone();
    let cache = SatCache::new(ra5.schema().clone());
    out.push((
        "symbolic/scontrol_example5",
        Box::new(move |b: &Budget| {
            scontrol_nba_governed(&ra5, &cache, b).unwrap();
        }),
    ));
    out
}

/// One timed sample (`iters` construction runs), seconds per run.
fn timed_run(work: &dyn Fn(&Budget), budget: &Budget, iters: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        work(budget);
    }
    t.elapsed().as_secs_f64() / iters as f64
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|x, y| x.partial_cmp(y).unwrap());
    times[times.len() / 2]
}

/// The headline estimator. On this single-core container, cohabiting
/// load inflates individual samples by tens of percent; noise only ever
/// *adds* time, so the minimum over interleaved rounds is the best
/// available estimate of the undisturbed runtime, and the min-vs-min
/// delta the cleanest estimate of the true tick cost. Medians are kept
/// in the JSON artifact for the skeptical reader.
fn minimum(times: &[f64]) -> f64 {
    times.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    println!(
        "e17: governor tick overhead, armed (generous limits) vs unarmed \
         (Budget::unlimited), min over {RUNS} interleaved rounds, \
         samples sized to >= {:.0} ms",
        SAMPLE_FLOOR_SECS * 1e3
    );
    println!(
        "e17: {:<28} {:>12} {:>12} {:>9}",
        "workload", "unarmed", "armed", "delta"
    );

    let mut entries = Vec::new();
    let mut worst = 0.0f64;
    for (name, work) in workloads() {
        let unlimited = Budget::unlimited();
        // Warm the caches so neither arm pays the one-time saturation
        // bill, and size iterations so a sample clears the jitter floor.
        work(&unlimited);
        let est_start = Instant::now();
        work(&unlimited);
        let est = est_start.elapsed().as_secs_f64();
        let iters = ((SAMPLE_FLOOR_SECS / est.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

        // Interleave the two arms round-robin so machine drift (thermal,
        // cohabiting load) hits both equally rather than whichever runs
        // last.
        let mut unarmed_t = Vec::with_capacity(RUNS);
        let mut armed_t = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            unarmed_t.push(timed_run(work.as_ref(), &unlimited, iters));
            // A fresh armed budget per sample: node counts accumulate on
            // the handle, and the deadline clock must not creep toward
            // its (generous) limit across the whole bench.
            let armed = generous();
            armed_t.push(timed_run(work.as_ref(), &armed, iters));
        }
        let base = minimum(&unarmed_t);
        let armed = minimum(&armed_t);
        let delta_pct = (armed / base - 1.0) * 100.0;
        worst = worst.max(delta_pct);
        println!(
            "e17: {:<28} {:>12} {:>12} {:>+8.2}%",
            name,
            fmt_secs(base),
            fmt_secs(armed),
            delta_pct
        );
        entries.push(json!({
            "workload": name,
            "unarmed_min_ns": base * 1e9,
            "armed_min_ns": armed * 1e9,
            "unarmed_median_ns": median(&mut unarmed_t) * 1e9,
            "armed_median_ns": median(&mut armed_t) * 1e9,
            "delta_pct": delta_pct,
            "samples": RUNS,
            "iters_per_sample": iters,
        }));
    }

    println!(
        "e17: worst armed-vs-unarmed delta {worst:+.2}% \
         (acceptance bar: within the ±5% noise floor; see EXPERIMENTS.md)"
    );
    let path = write_bench_json(
        "BENCH_e17",
        &json!({
            "experiment": "e17_govern_overhead",
            "runs": RUNS,
            "sample_floor_ms": SAMPLE_FLOOR_SECS * 1e3,
            "entries": entries,
        }),
    );
    println!("e17: wrote {}", path.display());
}
