//! E11 (§1): end-to-end workflow throughput — run simulation over a
//! generated database, runtime view computation, and the specification-view
//! construction.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_core::simulate::{self, SearchLimits};
use rega_core::ExtendedAutomaton;
use rega_workflow::{abstract_model, database_model, sample_database, views};

fn main() {
    let mut c: Criterion = rega_bench::criterion();

    let wf = database_model();
    for size in [2usize, 4, 8] {
        let db = sample_database(&wf, size, size, 2, 9);
        let ext = ExtendedAutomaton::new(wf.automaton.clone());
        let pool = simulate::default_pool(&db, 2);
        c.bench_with_input(BenchmarkId::new("e11/simulate_len4", size), &db, |b, db| {
            b.iter(|| {
                simulate::enumerate_prefixes(
                    black_box(&ext),
                    db,
                    4,
                    &pool,
                    SearchLimits {
                        max_nodes: 50_000,
                        max_runs: 500,
                    },
                )
            })
        });
    }

    // Runtime view overhead.
    let db = sample_database(&wf, 3, 4, 2, 9);
    let ext = ExtendedAutomaton::new(wf.automaton.clone());
    let pool = simulate::default_pool(&db, 2);
    let runs = simulate::enumerate_prefixes(
        &ext,
        &db,
        4,
        &pool,
        SearchLimits {
            max_nodes: 50_000,
            max_runs: 200,
        },
    );
    println!("e11: simulated {} runs of length 4", runs.len());
    c.bench_function("e11/runtime_views", |b| {
        b.iter(|| {
            runs.iter()
                .map(|r| views::project_run(black_box(r), &[0, 1]).len())
                .sum::<usize>()
        })
    });

    // Specification-view construction on the abstract model.
    let abs = abstract_model();
    c.bench_function("e11/author_view_construction", |b| {
        b.iter(|| {
            rega_views::prop20::project_register_automaton(black_box(&abs.automaton), 2).unwrap()
        })
    });
    c.final_summary();
}
