//! E14: cost of the determinism and fault-tolerance machinery.
//!
//! Reuses E13's workload (256 reviewing-workflow sessions, interleaved
//! round-robin) and measures three things:
//!
//! 1. **Threaded, no faults** — the same configuration E13 reports as
//!    "1 worker / 8 shards". This doubles as the E13 regression guard:
//!    PR 2 threaded the fault hooks through the hot path (envelope
//!    clone-stash, injector draws), and this number must stay within 10%
//!    of the E13 baseline recorded in EXPERIMENTS.md.
//! 2. **SimScheduler, no faults** — the single-threaded deterministic
//!    scheduler on the identical stream: the price of reproducibility
//!    (RNG-driven interleaving, simulated clock, per-delivery jitter
//!    draws) relative to the threaded engine.
//! 3. **Faults active** — threaded and simulated runs under a lively
//!    plan (panics with respawn, stalls, duplicated terminal events):
//!    what recovery actually costs when it fires.
//!
//! Single-core caveat: the benchmark container exposes one CPU, so the
//! threaded numbers measure the engine's bookkeeping, not parallel
//! speedup; see EXPERIMENTS.md E13/E14.

use criterion::{black_box, BenchmarkId, Criterion};
use rega_data::{Database, Schema, Value};
use rega_stream::{CompiledSpec, Engine, EngineConfig, Event, FaultPlan, SessionStatus};
use rega_workflow::abstract_model;
use std::sync::Arc;
use std::time::Instant;

const SESSIONS: usize = 256;
const REVIEW_ROUNDS: usize = 3;

fn session_events(id: usize) -> Vec<Event> {
    let session = format!("paper-{id}");
    let base = (id as u64) * 8;
    let (p, a, r1, r2) = (base, base + 1, base + 2, base + 3);
    let step = |state: &str, regs: [u64; 3]| Event::Step {
        session: session.clone(),
        state: state.to_string(),
        regs: regs.iter().map(|&v| Value(v)).collect(),
    };
    let mut out = vec![step("start", [p, a, p]), step("submitted", [p, a, p])];
    for round in 0..REVIEW_ROUNDS {
        let reviewer = if round % 2 == 0 { r1 } else { r2 };
        out.push(step("under_review", [p, a, reviewer]));
        out.push(step("under_review", [p, a, reviewer]));
        if round + 1 < REVIEW_ROUNDS {
            out.push(step("revising", [p, a, p]));
        }
    }
    out.push(step("accepted", [p, a, r1]));
    out.push(Event::End { session });
    out
}

fn build_stream() -> Vec<Event> {
    let per_session: Vec<Vec<Event>> = (0..SESSIONS).map(session_events).collect();
    let longest = per_session.iter().map(Vec::len).max().unwrap_or(0);
    let mut stream = Vec::new();
    for pos in 0..longest {
        for events in &per_session {
            if let Some(e) = events.get(pos) {
                stream.push(e.clone());
            }
        }
    }
    stream
}

/// A lively but survivable plan: every respawn succeeds and the
/// quarantine budget is never exhausted, so verdicts stay Ended.
fn fault_plan() -> FaultPlan {
    FaultPlan {
        seed: 42,
        panic_prob: 0.001,
        stall_prob: 0.001,
        stall_ns: 50_000,
        dup_end_prob: 0.05,
        ..FaultPlan::none()
    }
}

fn config(fault: FaultPlan, quarantine_cap: u64) -> EngineConfig {
    EngineConfig {
        shards: 8,
        workers: 1,
        queue_capacity: 1024,
        max_view_frontier: 64,
        quarantine_cap,
        fault,
        ..EngineConfig::default()
    }
}

fn run_threaded(spec: &Arc<CompiledSpec>, config: EngineConfig, stream: &[Event]) -> usize {
    let mut engine = Engine::start(Arc::clone(spec), config);
    for event in stream {
        engine.submit(event.clone()).expect("submit");
    }
    finish_checked(engine)
}

fn run_sim(spec: &Arc<CompiledSpec>, config: EngineConfig, seed: u64, stream: &[Event]) -> usize {
    let mut engine = Engine::start_sim(Arc::clone(spec), config, seed);
    for event in stream {
        engine.submit(event.clone()).expect("submit");
    }
    finish_checked(engine)
}

fn finish_checked(engine: Engine) -> usize {
    let report = engine.finish();
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| o.status == SessionStatus::Ended),
        "the workload must survive as a legal trace for every session"
    );
    report.outcomes.len()
}

fn main() {
    let mut c: Criterion = rega_bench::criterion();
    let workflow = abstract_model();
    let ext = rega_core::ExtendedAutomaton::new(workflow.automaton.clone());
    let db = Database::new(Schema::empty());
    let spec = Arc::new(CompiledSpec::compile(ext, db, None).expect("compiles"));
    let stream = build_stream();

    println!(
        "e14: determinism/fault-machinery overhead, {} sessions, {} events/iteration",
        SESSIONS,
        stream.len()
    );

    c.bench_with_input(
        BenchmarkId::new("e14/threaded", "no-faults"),
        &(),
        |b, _| b.iter(|| run_threaded(black_box(&spec), config(FaultPlan::none(), 0), &stream)),
    );
    c.bench_with_input(BenchmarkId::new("e14/sim", "no-faults"), &(), |b, _| {
        b.iter(|| run_sim(black_box(&spec), config(FaultPlan::none(), 0), 7, &stream))
    });
    c.bench_with_input(BenchmarkId::new("e14/threaded", "faults"), &(), |b, _| {
        b.iter(|| run_threaded(black_box(&spec), config(fault_plan(), 1_000_000), &stream))
    });
    c.bench_with_input(BenchmarkId::new("e14/sim", "faults"), &(), |b, _| {
        b.iter(|| {
            run_sim(
                black_box(&spec),
                config(fault_plan(), 1_000_000),
                7,
                &stream,
            )
        })
    });

    // Direct events/sec table (median of 5 runs) for EXPERIMENTS.md. The
    // first row reuses E13's "1 worker / 8 shards" configuration verbatim
    // and is the regression guard: within 10% of the E13 baseline.
    println!("e14: events/sec (median of 5 runs)");
    type Runner = Box<dyn Fn() -> usize>;
    let mut table: Vec<(&str, Runner)> = Vec::new();
    let (s1, s2, s3, s4) = (spec.clone(), spec.clone(), spec.clone(), spec.clone());
    let (t1, t2, t3, t4) = (
        stream.clone(),
        stream.clone(),
        stream.clone(),
        stream.clone(),
    );
    table.push((
        "threaded, no faults (=e13)",
        Box::new(move || run_threaded(&s1, config(FaultPlan::none(), 0), &t1)),
    ));
    table.push((
        "sim, no faults",
        Box::new(move || run_sim(&s2, config(FaultPlan::none(), 0), 7, &t2)),
    ));
    table.push((
        "threaded, faults active",
        Box::new(move || run_threaded(&s3, config(fault_plan(), 1_000_000), &t3)),
    ));
    table.push((
        "sim, faults active",
        Box::new(move || run_sim(&s4, config(fault_plan(), 1_000_000), 7, &t4)),
    ));
    for (label, run) in &table {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                run();
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let eps = stream.len() as f64 / times[2];
        println!("  {label:<28} {:>12.0} events/sec", eps);
    }
    c.final_summary();
}
