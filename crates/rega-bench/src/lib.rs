//! Shared helpers for the benchmark harness (experiments E1–E18; see
//! EXPERIMENTS.md for the experiment index and recorded outcomes).

use criterion::Criterion;
use serde_json::{json, Value as Json};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A Criterion instance tuned for the CI-scale experiment runs: small
/// sample counts, short measurement windows.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
        .configure_from_args()
}

/// A direct measurement: per-iteration wall-clock statistics over a fixed
/// number of samples. The vendored criterion stub keeps its statistics
/// private, so experiments that need machine-readable output (the
/// `BENCH_*.json` artifacts) measure through this helper instead.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Median of the per-sample mean iteration times, in seconds.
    pub median_secs: f64,
    /// Fastest sample mean.
    pub min_secs: f64,
    /// Slowest sample mean.
    pub max_secs: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample (sized so a sample is long enough to time).
    pub iters_per_sample: u64,
}

impl Measured {
    /// The measurement as a JSON object (times in nanoseconds for
    /// readability at the scales involved).
    pub fn to_json(&self) -> Json {
        json!({
            "median_ns": self.median_secs * 1e9,
            "min_ns": self.min_secs * 1e9,
            "max_ns": self.max_secs * 1e9,
            "samples": self.samples,
            "iters_per_sample": self.iters_per_sample,
        })
    }
}

/// Times `routine` over `samples` samples, sizing iterations per sample so
/// each sample runs at least ~10 ms (fast routines are batched).
pub fn measure<O>(samples: usize, mut routine: impl FnMut() -> O) -> Measured {
    assert!(samples > 0);
    // One throwaway call for warm-up, then estimate the iteration cost.
    std::hint::black_box(routine());
    let est_start = Instant::now();
    std::hint::black_box(routine());
    let est = est_start.elapsed().as_secs_f64();
    let target = Duration::from_millis(10).as_secs_f64();
    let iters = ((target / est.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        means.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measured {
        median_secs: means[means.len() / 2],
        min_secs: means[0],
        max_secs: means[means.len() - 1],
        samples,
        iters_per_sample: iters,
    }
}

/// Times two routines in alternation (`A B A B`), keeping the best median
/// per side. The interleaving cancels slow machine-state drift (thermal
/// throttling, cache pressure from a neighbouring process) that would
/// otherwise bias whichever routine happens to run second.
pub fn measure_pair<O1, O2>(
    samples: usize,
    mut a: impl FnMut() -> O1,
    mut b: impl FnMut() -> O2,
) -> (Measured, Measured) {
    let a1 = measure(samples, &mut a);
    let b1 = measure(samples, &mut b);
    let a2 = measure(samples, &mut a);
    let b2 = measure(samples, &mut b);
    let best = |x: Measured, y: Measured| if x.median_secs <= y.median_secs { x } else { y };
    (best(a1, a2), best(b1, b2))
}

/// Formats seconds the way the criterion stub does (`ns`/`µs`/`ms`/`s`).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Writes a machine-readable benchmark artifact `<file_stem>.json` at the
/// repository root (next to EXPERIMENTS.md) and returns its path.
pub fn write_bench_json(file_stem: &str, payload: &Json) -> PathBuf {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("{file_stem}.json"));
    let text = serde_json::to_string_pretty(payload).expect("serializable payload");
    std::fs::write(&path, text + "\n").expect("writable repository root");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_statistics() {
        let m = measure(3, || std::hint::black_box(21u64 * 2));
        assert_eq!(m.samples, 3);
        assert!(m.min_secs <= m.median_secs && m.median_secs <= m.max_secs);
        assert!(m.iters_per_sample >= 1);
        let j = m.to_json();
        assert!(j["median_ns"].as_f64().unwrap() > 0.0);
    }
}
