//! Shared helpers for the benchmark harness (experiments E1–E12; see
//! EXPERIMENTS.md for the experiment index and recorded outcomes).

use criterion::Criterion;

/// A Criterion instance tuned for the CI-scale experiment runs: small
/// sample counts, short measurement windows.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
        .configure_from_args()
}
