//! Proposition 20 / Theorem 13 for plain register automata: the projection
//! view `Π_m(Reg(A))` of a register automaton without a database, expressed
//! as an (LR-bounded) extended register automaton.
//!
//! This is the library's workhorse: given the workflow automaton and the
//! set of registers a user is allowed to see, it produces the automaton
//! describing exactly the user's view.
//!
//! Construction: normalize `A` (complete, then state-driven), restrict
//! every transition type to the first `m` registers, and attach the global
//! constraints `e=ᵢⱼ` / `e≠ᵢⱼ` from Lemma 21 for `i, j ∈ [m]` — these
//! capture every (in)equality that the hidden registers force on the
//! visible ones. Proposition 20 additionally shows the result is LR-bounded
//! (with vertex covers bounded by `k`), which the tests verify through the
//! Theorem 18 checker.

use crate::lemma21;
use rega_core::extended::ConstraintKind;
use rega_core::transform::{complete_governed, state_driven_governed};
use rega_core::{Budget, CoreError, ExtendedAutomaton, RegisterAutomaton};
use rega_data::{RegIdx, SatCache};

/// A projection view of a register automaton.
#[derive(Clone, Debug)]
pub struct Projection {
    /// The extended automaton describing `Π_m(Reg(A))`.
    pub view: ExtendedAutomaton,
    /// The normalized (complete, state-driven) version of the input whose
    /// states the view shares.
    pub normalized: RegisterAutomaton,
    /// The number of visible registers.
    pub m: u16,
}

/// Projects a register automaton without a database onto its first `m`
/// registers (Proposition 20).
pub fn project_register_automaton(ra: &RegisterAutomaton, m: u16) -> Result<Projection, CoreError> {
    let cache = SatCache::new(ra.schema().clone());
    project_register_automaton_cached(ra, m, &cache)
}

/// [`project_register_automaton`] sharing a caller-supplied σ-type cache
/// across the completion, state-driven wiring, joint-satisfiability
/// pruning and register restriction.
pub fn project_register_automaton_cached(
    ra: &RegisterAutomaton,
    m: u16,
    cache: &SatCache,
) -> Result<Projection, CoreError> {
    project_register_automaton_governed(ra, m, cache, &Budget::unlimited())
}

/// [`project_register_automaton_cached`] under a [`Budget`]: the completion,
/// state-driven wiring, per-transition restriction and the `m²` Lemma 21
/// constraint builds all check the deadline/ceilings at loop granularity.
pub fn project_register_automaton_governed(
    ra: &RegisterAutomaton,
    m: u16,
    cache: &SatCache,
    budget: &Budget,
) -> Result<Projection, CoreError> {
    if !ra.has_no_database() {
        return Err(CoreError::SchemaNotEmpty);
    }
    if m > ra.k() {
        return Err(CoreError::UnsupportedProjection(format!(
            "cannot keep {m} registers: the automaton has only {}",
            ra.k()
        )));
    }
    let _span = rega_obs::span!("views.prop20", keep = m, states = ra.num_states());
    let normalized =
        state_driven_governed(&complete_governed(ra, cache, budget)?, cache, budget)?.automaton;

    // The view: same states, types restricted to the first m registers.
    let mut view = RegisterAutomaton::new(m, ra.schema().clone());
    for s in normalized.states() {
        let s2 = view.add_state(normalized.state_name(s));
        debug_assert_eq!(s, s2);
        if normalized.is_initial(s) {
            view.set_initial(s);
        }
        if normalized.is_accepting(s) {
            view.set_accepting(s);
        }
    }
    for t in normalized.transition_ids() {
        budget.tick("views.prop20.restrict")?;
        let tr = normalized.transition(t);
        // Drop successions whose types conflict on *hidden* registers: the
        // restriction would hide the conflict and admit traces the original
        // automaton cannot produce. (The state-driven construction wires
        // every (q, δ) to every (q', δ'); only jointly satisfiable pairs
        // occur in real runs.)
        if let Some(next_ty) = normalized.state_type(tr.to) {
            if !cache.jointly_satisfiable(&tr.ty, next_ty) {
                continue;
            }
        }
        let restricted = cache.restrict_registers(&tr.ty, m)?;
        // Distinct completions may restrict identically; the automaton
        // dedupes nothing itself, so skip exact duplicates.
        let dup = view
            .outgoing(tr.from)
            .iter()
            .any(|&u| view.transition(u).to == tr.to && view.transition(u).ty == *restricted);
        if !dup {
            view.add_transition(tr.from, (*restricted).clone(), tr.to)?;
        }
    }

    let mut view = ExtendedAutomaton::new(view);
    for i in 0..m {
        for j in 0..m {
            budget.tick("views.prop20.lemma21")?;
            let eq = lemma21::eq_dfa(&normalized, RegIdx(i), RegIdx(j))?;
            view.add_constraint_dfa(ConstraintKind::Equal, RegIdx(i), RegIdx(j), eq)?;
            let neq = lemma21::neq_dfa(&normalized, RegIdx(i), RegIdx(j))?;
            view.add_constraint_dfa(ConstraintKind::NotEqual, RegIdx(i), RegIdx(j), neq)?;
        }
    }
    rega_obs::event!(
        "views.prop20_built",
        view_states = view.ra().num_states(),
        view_transitions = view.ra().num_transitions(),
        types_interned = cache.stats().distinct_types
    );
    Ok(Projection {
        view,
        normalized,
        m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_analysis::lr::{is_lr_bounded, LrOptions};
    use rega_core::paper;
    use rega_core::simulate::{self, SearchLimits};
    use rega_data::{Database, Schema, Value};

    fn big_limits() -> SearchLimits {
        SearchLimits {
            max_nodes: 2_000_000,
            max_runs: 500_000,
        }
    }

    /// The central differential test: the projected prefix-trace sets of
    /// the original automaton and of the constructed view agree.
    fn assert_projection_faithful(ra: &RegisterAutomaton, m: u16, len: usize, pool: &[Value]) {
        let db = Database::new(Schema::empty());
        let original = ExtendedAutomaton::new(ra.clone());
        let proj = project_register_automaton(ra, m).unwrap();
        // Settled traces: the view enforces constraints at position arrival
        // (one transition of lookahead relative to raw prefixes), so the
        // dangling final position is excluded from the comparison.
        let want =
            simulate::projected_settled_traces(&original, &db, len, m as usize, pool, big_limits());
        let got = simulate::projected_settled_traces(
            &proj.view,
            &db,
            len,
            m as usize,
            pool,
            big_limits(),
        );
        assert_eq!(want, got, "projection view differs at length {len}");
    }

    #[test]
    fn example1_projection_matches_original() {
        let (ra, _) = paper::example1();
        let pool = vec![Value(1), Value(2)];
        for len in 1..=4 {
            assert_projection_faithful(&ra, 1, len, &pool);
        }
    }

    #[test]
    fn example1_projection_is_lr_bounded() {
        let (ra, _) = paper::example1();
        let proj = project_register_automaton(&ra, 1).unwrap();
        let v = is_lr_bounded(&proj.view, &LrOptions::default()).unwrap();
        assert!(v.bounded, "Proposition 20: projections are LR-bounded");
    }

    #[test]
    fn example1_projection_enforces_q1_equalities() {
        // The view must force the q1-position values to be equal — the
        // non-ω-regular property of Example 4, via the e=11 constraint.
        let (ra, _) = paper::example1();
        let proj = project_register_automaton(&ra, 1).unwrap();
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        let runs = simulate::enumerate_prefixes(&proj.view, &db, 5, &pool, big_limits());
        assert!(!runs.is_empty());
        let mut saw_two_q1 = false;
        for run in &runs {
            let q1_vals: Vec<Value> = run
                .configs
                .iter()
                .filter(|c| proj.view.ra().state_name(c.state).starts_with("q1"))
                .map(|c| c.regs[0])
                .collect();
            if q1_vals.len() >= 2 {
                saw_two_q1 = true;
            }
            for w in q1_vals.windows(2) {
                assert_eq!(w[0], w[1], "q1-positions must carry one value");
            }
        }
        assert!(
            saw_two_q1,
            "need prefixes revisiting q1 for the test to bite"
        );
    }

    #[test]
    fn projecting_all_registers_is_identity_like() {
        // m = k: the view keeps everything; traces match trivially.
        let (ra, _) = paper::example1();
        let pool = vec![Value(1), Value(2)];
        assert_projection_faithful(&ra, 2, 3, &pool);
    }

    #[test]
    fn projecting_to_zero_registers() {
        // m = 0: the view is a finite-state automaton; every original trace
        // projects to the empty-tuple trace.
        let (ra, _) = paper::example1();
        let proj = project_register_automaton(&ra, 0).unwrap();
        assert_eq!(proj.view.k(), 0);
        assert!(proj.view.constraints().is_empty());
        let db = Database::new(Schema::empty());
        let runs = simulate::enumerate_prefixes(&proj.view, &db, 3, &[Value(1)], big_limits());
        assert!(!runs.is_empty());
    }

    #[test]
    fn database_automata_rejected() {
        let ra = paper::example23();
        assert!(matches!(
            project_register_automaton(&ra, 1),
            Err(CoreError::SchemaNotEmpty)
        ));
    }

    /// A two-register shuttle: register 2 alternates between two fixed
    /// values; register 1 copies register 2 every step. The projection to
    /// register 1 must force values to alternate with period 2.
    #[test]
    fn shuttle_projection() {
        use rega_data::{Literal, SigmaType, Term};
        let mut ra = RegisterAutomaton::new(2, Schema::empty());
        let a = ra.add_state("a");
        let b = ra.add_state("b");
        ra.set_initial(a);
        ra.set_accepting(a);
        // a → b: x1 = x2 (visible copies hidden), y2 ≠ x2 (hidden moves),
        // b → a: x1 = x2, y2 = … make it return: hidden register returns to
        // its previous value is inexpressible locally; instead keep it
        // simple: hidden changes at every step, visible equals hidden.
        let ty = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::neq(Term::x(1), Term::y(1)),
            ],
        );
        ra.add_transition(a, ty.clone(), b).unwrap();
        ra.add_transition(b, ty, a).unwrap();
        let pool = vec![Value(1), Value(2), Value(3)];
        for len in 1..=3 {
            assert_projection_faithful(&ra, 1, len, &pool);
        }
        // Consecutive visible values must differ (forced through hidden).
        let proj = project_register_automaton(&ra, 1).unwrap();
        let db = Database::new(Schema::empty());
        let runs = simulate::enumerate_prefixes(&proj.view, &db, 3, &pool, big_limits());
        assert!(!runs.is_empty());
        for run in &runs {
            for w in run.configs.windows(2) {
                assert_ne!(w[0].regs[0], w[1].regs[0]);
            }
        }
    }
}
