//! Executable versions of the paper's separating examples, with the trace
//! families that witness each separation. The automata themselves live in
//! [`rega_core::paper`]; this module packages each example together with
//! the *distinguishing argument*, executable as assertions, for use by the
//! experiment suite (E1, E5, E8).

use rega_core::paper;
use rega_core::run::FiniteRun;
use rega_core::simulate::{self, SearchLimits};
use rega_core::{CoreError, ExtendedAutomaton};
use rega_data::{Database, Schema, Value};

/// **Example 4's argument, executably.** For any candidate 1-register
/// automaton claiming to express `Π₁(Reg(A))` of Example 1, the paper
/// derives a contradiction from a pumping swap. This function runs the
/// *semantic core* of that argument against a candidate: it checks whether
/// the candidate accepts a prefix in which the initial value recurs and
/// also a swapped prefix in which it does not — no correct view may accept
/// the latter.
///
/// Returns `Ok(true)` if the candidate is refuted (accepts an illegal
/// swapped trace or rejects a legal one), `Ok(false)` if it survives this
/// particular test family.
pub fn refute_view_candidate(
    candidate: &ExtendedAutomaton,
    len: usize,
    pool: &[Value],
    limits: SearchLimits,
) -> Result<bool, CoreError> {
    if candidate.k() != 1 {
        return Err(CoreError::RegisterCountMismatch {
            expected: 1,
            got: candidate.k(),
        });
    }
    let db = Database::new(Schema::empty());
    let (ra, _) = paper::example1();
    let original = ExtendedAutomaton::new(ra);
    // Finite horizon: settled prefix-trace sets must agree.
    let legal = simulate::projected_settled_traces(&original, &db, len, 1, pool, limits);
    let claimed = simulate::projected_settled_traces(candidate, &db, len, 1, pool, limits);
    if legal != claimed {
        return Ok(true);
    }
    // Infinite horizon — the actual Example 4 argument: probe ultimately
    // periodic traces whose initial value does or does not recur. The
    // legal view accepts a trace iff the value at every revisit of the
    // initial control point equals the initial value.
    let probes = [
        // initial value recurs forever: legal.
        rega_automata::Lasso::periodic(vec![vec![Value(1)], vec![Value(2)]]),
        // initial value occurs only once: illegal (Example 4's swap).
        rega_automata::Lasso::new(vec![vec![Value(1)]], vec![vec![Value(2)], vec![Value(2)]]),
    ];
    for probe in &probes {
        let reference =
            simulate::find_lasso_with_projection(&original, &db, probe, pool, 12, limits)?
                .is_some();
        let candidate_accepts =
            simulate::find_lasso_with_projection(candidate, &db, probe, pool, 12, limits)?
                .is_some();
        if reference != candidate_accepts {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The legal projected traces of Example 1 at a given prefix length — the
/// reference language for E1.
pub fn example1_projection_traces(
    len: usize,
    pool: &[Value],
    limits: SearchLimits,
) -> std::collections::BTreeSet<Vec<Vec<Value>>> {
    let db = Database::new(Schema::empty());
    let (ra, _) = paper::example1();
    let original = ExtendedAutomaton::new(ra);
    simulate::projected_settled_traces(&original, &db, len, 1, pool, limits)
}

/// **Example 7/17's argument**: all-distinct register traces exist as
/// prefixes of every length, but no lasso run exists. Returns the pair
/// (longest all-distinct prefix found, whether a lasso run exists within
/// the budget).
pub fn example7_separation(
    len: usize,
    limits: SearchLimits,
) -> Result<(Option<FiniteRun>, bool), CoreError> {
    let ext = paper::example7();
    let db = Database::new(Schema::empty());
    let pool: Vec<Value> = (0..len as u64 + 1).map(Value).collect();
    let prefixes = simulate::enumerate_prefixes(&ext, &db, len, &pool, limits);
    let lasso = simulate::find_lasso_run(&ext, &db, len, &pool, limits)?;
    Ok((prefixes.into_iter().next(), lasso.is_some()))
}

/// **Example 8's argument**: with `|P| = n`, runs exist whose `p`-blocks
/// have length up to `n` but none longer — the non-ω-regular bound on
/// state traces. Returns the longest pure-`p` *prefix* realizable within
/// the budget; since a prefix's final position is not yet constrained by
/// an outgoing transition, this equals `n + 1` — the bound shifted by the
/// one dangling position.
pub fn example8_longest_p_block(n_values: usize, limits: SearchLimits) -> usize {
    let ext = paper::example8();
    let schema = ext.ra().schema().clone();
    let p_rel = schema.relation("P").expect("declared");
    let mut db = Database::new(schema);
    for v in 0..n_values as u64 {
        db.insert(p_rel, vec![Value(v)]).expect("unary fact");
    }
    let p = ext.ra().state_by_name("p").expect("state p");
    let pool = simulate::default_pool(&db, 1);
    // Longest prefix visiting only p.
    let mut best = 0;
    for len in 1..=n_values + 2 {
        let runs = simulate::enumerate_prefixes(&ext, &db, len, &pool, limits);
        let ok = runs.iter().any(|r| r.configs.iter().all(|c| c.state == p));
        if ok {
            best = len;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop20::project_register_automaton;
    use rega_core::paper;
    use rega_core::RegisterAutomaton;
    use rega_data::SigmaType;

    fn limits() -> SearchLimits {
        SearchLimits {
            max_nodes: 2_000_000,
            max_runs: 500_000,
        }
    }

    #[test]
    fn free_automaton_is_refuted_as_view() {
        // A 1-register automaton with no constraints accepts too much.
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let p1 = ra.add_state("p1");
        let p2 = ra.add_state("p2");
        ra.set_initial(p1);
        ra.set_accepting(p1);
        ra.add_transition(p1, SigmaType::empty(1), p2).unwrap();
        ra.add_transition(p2, SigmaType::empty(1), p2).unwrap();
        ra.add_transition(p2, SigmaType::empty(1), p1).unwrap();
        let candidate = ExtendedAutomaton::new(ra);
        let refuted =
            refute_view_candidate(&candidate, 4, &[Value(1), Value(2)], limits()).unwrap();
        assert!(refuted, "the unconstrained candidate must be refuted");
    }

    #[test]
    fn example5_survives_as_view() {
        // The paper's extended automaton (Example 5) is the correct view.
        let candidate = paper::example5();
        for len in 1..=4 {
            let refuted =
                refute_view_candidate(&candidate, len, &[Value(1), Value(2)], limits()).unwrap();
            assert!(!refuted, "Example 5 is the correct view (length {len})");
        }
    }

    #[test]
    fn constructed_projection_survives_as_view() {
        // So does the Lemma 21-based construction.
        let (ra, _) = paper::example1();
        let proj = project_register_automaton(&ra, 1).unwrap();
        for len in 1..=4 {
            let refuted =
                refute_view_candidate(&proj.view, len, &[Value(1), Value(2)], limits()).unwrap();
            assert!(!refuted, "constructed view must be faithful (length {len})");
        }
    }

    #[test]
    fn example7_prefixes_without_lasso() {
        let (prefix, has_lasso) = example7_separation(5, limits()).unwrap();
        assert!(prefix.is_some(), "all-distinct prefixes exist");
        assert!(!has_lasso, "no ultimately periodic run exists");
    }

    #[test]
    fn example8_blocks_bounded_by_database() {
        for n in 1..=3 {
            let best = example8_longest_p_block(n, limits());
            assert_eq!(
                best,
                n + 1,
                "longest pure-p prefix must equal |P| + 1 = {} (the final position dangles)",
                n + 1
            );
        }
    }
}
