#![warn(missing_docs)]

//! Projection views of register automata — the constructions of *Projection
//! Views of Register Automata* (Segoufin & Vianu, PODS 2020).
//!
//! The paper's motivating question: a register automaton models a workflow;
//! a class of users sees only some of its registers (e.g. authors of a
//! manuscript never see the reviewer registers). Can the *view* — the
//! projected register traces — itself be described by an automaton, so the
//! user has a faithful specification of what they can observe?
//!
//! * [`lemma21`] — the value-flow automata of Lemma 21: for a complete,
//!   state-driven register automaton, regular languages (here: DFAs over
//!   the state alphabet) characterizing `(a,i) ∼ (b,j)` and
//!   `(a,i) ≠ (b,j)` by the factor `q_a … q_b` of the state trace.
//! * [`prop6`] — Proposition 6: global *equality* constraints are
//!   eliminated using extra registers; only inequality constraints remain.
//! * [`prop20`] — Proposition 20 (the "only if" half of Theorem 19, and the
//!   workhorse API): the projection of a register automaton onto its first
//!   `m` registers, as an LR-bounded extended automaton.
//! * [`thm13`] — Theorem 13: closure of extended automata under projection
//!   (no database), by reduction through Proposition 6 to the Lemma 21
//!   machinery.
//! * [`prop22`] — Proposition 22 (the "if" half of Theorem 19): LR-bounded
//!   extended automata are projections of register automata; implemented as
//!   the streaming enforcement engine with the `2M² + 1` register budget.
//! * [`thm24`] — Theorem 24: hiding some registers *and the entire
//!   database*, as an enhanced automaton with finiteness and
//!   tuple-inequality constraints.
//! * [`counterexamples`] — executable versions of the paper's separating
//!   examples (4, 7, 8, 16, 17, 23), used by the experiment suite.

pub mod counterexamples;
pub mod lemma21;
pub mod observer;
pub mod prop20;
pub mod prop22;
pub mod prop6;
pub mod thm13;
pub mod thm24;

pub use observer::{ObserverSnapshot, Verdict, ViewObserver};
pub use prop20::{
    project_register_automaton, project_register_automaton_cached,
    project_register_automaton_governed, Projection,
};
pub use prop6::eliminate_global_equalities;
pub use thm13::{project_extended, project_extended_cached, project_extended_governed};
pub use thm24::{
    project_hiding_database, project_hiding_database_cached, project_hiding_database_governed,
};
