//! The value-flow automata of Lemma 21.
//!
//! For a *complete, state-driven* register automaton `A` (so a state `q`
//! determines its outgoing type `δ_q`), Lemma 21 gives regular languages
//! over the state alphabet characterizing the derived (in)equalities of a
//! run by factors of the state trace:
//!
//! * `e=ᵢⱼ`: the factor `q_a … q_b` is accepted iff `(a,i) ∼ (b,j)` — the
//!   value of register `i` at the factor's start provably flows to register
//!   `j` at its end. The automaton tracks the *set* of registers currently
//!   holding the tracked value (a subset construction).
//! * `e≠ᵢⱼ`: accepted iff `(a,i) ≠ (b,j)` — some position `c` of the factor
//!   carries an inequality literal connecting the class of `(a,i)` to a
//!   class that flows on to `(b,j)`. (Completeness of the types makes every
//!   semantically-forced inequality locally visible at a common live
//!   position, which is what confines the witness to the factor.)
//!
//! The output DFAs plug directly into
//! [`ExtendedAutomaton::add_constraint_dfa`](rega_core::ExtendedAutomaton::add_constraint_dfa).

use rega_automata::{Dfa, Nfa};
use rega_core::{CoreError, RegisterAutomaton, StateId};
use rega_data::{types::TypeAnalysis, RegIdx, Term};
use std::collections::{BTreeSet, HashMap};

/// Precomputed per-state type analyses for a state-driven automaton.
pub struct FlowContext<'a> {
    ra: &'a RegisterAutomaton,
    /// `analysis[q]` — the analysis of state `q`'s unique outgoing type.
    analysis: Vec<Option<TypeAnalysis>>,
}

impl<'a> FlowContext<'a> {
    /// Builds the context; the automaton must be state-driven (each state
    /// one outgoing type). Completeness is the caller's responsibility (the
    /// `e≠` characterization needs it; `e=` is correct regardless).
    pub fn new(ra: &'a RegisterAutomaton) -> Result<Self, CoreError> {
        if !ra.is_state_driven() {
            return Err(CoreError::NotStateDriven);
        }
        let mut analysis = Vec::with_capacity(ra.num_states());
        for q in ra.states() {
            analysis.push(match ra.state_type(q) {
                Some(ty) => Some(ty.analyze(ra.schema())?),
                None => None,
            });
        }
        Ok(FlowContext { ra, analysis })
    }

    fn a(&self, q: StateId) -> Option<&TypeAnalysis> {
        self.analysis[q.idx()].as_ref()
    }

    /// Closure of register set `base` under the x-side equalities of `q`'s
    /// type: all registers `l` with `x_l = x_m` forced for some `m ∈ base`.
    fn close_x(&self, q: StateId, base: &BTreeSet<u16>) -> BTreeSet<u16> {
        let Some(a) = self.a(q) else {
            return base.clone();
        };
        let k = self.ra.k();
        (0..k)
            .filter(|&l| base.iter().any(|&m| a.forced_eq(Term::x(l), Term::x(m))))
            .collect()
    }

    /// Pushes a register set across `q`'s transition: registers `m` with
    /// `x_s = y_m` forced for some `s` in the set.
    fn push_y(&self, q: StateId, set: &BTreeSet<u16>) -> BTreeSet<u16> {
        let Some(a) = self.a(q) else {
            return BTreeSet::new();
        };
        let k = self.ra.k();
        (0..k)
            .filter(|&m| set.iter().any(|&s| a.forced_eq(Term::x(s), Term::y(m))))
            .collect()
    }

    /// The initial tracked set when the factor starts at a `q`-position:
    /// registers x-equal to register `i`.
    fn start_set(&self, q: StateId, i: RegIdx) -> BTreeSet<u16> {
        self.close_x(q, &BTreeSet::from([i.0]))
    }

    /// One flow step: the set at the next position, given the set at a
    /// `q`-position and the next position's state `q'`.
    fn flow(&self, q: StateId, set: &BTreeSet<u16>, q2: StateId) -> BTreeSet<u16> {
        self.close_x(q2, &self.push_y(q, set))
    }

    /// Public variant of the x-equality closure (used by Theorem 24).
    pub fn close_x_public(&self, q: StateId, base: &BTreeSet<u16>) -> BTreeSet<u16> {
        self.close_x(q, base)
    }

    /// Public variant of the y-push (used by Theorem 24).
    pub fn push_y_public(&self, q: StateId, set: &BTreeSet<u16>) -> BTreeSet<u16> {
        self.push_y(q, set)
    }

    /// Public variant of the start set (used by Theorem 24).
    pub fn start_set_public(&self, q: StateId, i: RegIdx) -> BTreeSet<u16> {
        self.start_set(q, i)
    }

    /// Public variant of the flow step (used by Theorem 24).
    pub fn flow_public(&self, q: StateId, set: &BTreeSet<u16>, q2: StateId) -> BTreeSet<u16> {
        self.flow(q, set, q2)
    }
}

/// Builds the `e=ᵢⱼ` DFA of Lemma 21 over the automaton's state alphabet.
pub fn eq_dfa(ra: &RegisterAutomaton, i: RegIdx, j: RegIdx) -> Result<Dfa<StateId>, CoreError> {
    let ctx = FlowContext::new(ra)?;
    let alphabet: Vec<StateId> = ra.states().collect();
    // Deterministic lazy construction. States: Start, Dead, Track(q, S).
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Dead,
        Track(StateId, BTreeSet<u16>),
    }
    let mut index: HashMap<St, usize> = HashMap::new();
    let mut states: Vec<St> = Vec::new();
    fn intern<St: Clone + Eq + std::hash::Hash>(
        s: St,
        index: &mut HashMap<St, usize>,
        states: &mut Vec<St>,
    ) -> usize {
        if let Some(&id) = index.get(&s) {
            return id;
        }
        let id = states.len();
        index.insert(s.clone(), id);
        states.push(s);
        id
    }
    let start = intern(St::Start, &mut index, &mut states);
    debug_assert_eq!(start, 0);
    let mut trans: Vec<Vec<usize>> = Vec::new();
    let mut done = 0usize;
    while done < states.len() {
        let st = states[done].clone();
        done += 1;
        let mut row = Vec::with_capacity(alphabet.len());
        for &q in &alphabet {
            let next = match &st {
                St::Start => {
                    let s0 = ctx.start_set(q, i);
                    if s0.is_empty() {
                        St::Dead
                    } else {
                        St::Track(q, s0)
                    }
                }
                St::Dead => St::Dead,
                St::Track(prev, set) => {
                    let s2 = ctx.flow(*prev, set, q);
                    if s2.is_empty() {
                        St::Dead
                    } else {
                        St::Track(q, s2)
                    }
                }
            };
            row.push(intern(next, &mut index, &mut states));
        }
        trans.push(row);
    }
    let accepting: Vec<bool> = states
        .iter()
        .map(|s| matches!(s, St::Track(_, set) if set.contains(&j.0)))
        .collect();
    Ok(Dfa::from_parts(alphabet, 0, accepting, trans).minimize())
}

/// Builds the `e≠ᵢⱼ` DFA of Lemma 21 (via an NFA with a nondeterministic
/// switch over an inequality literal, then the subset construction).
pub fn neq_dfa(ra: &RegisterAutomaton, i: RegIdx, j: RegIdx) -> Result<Dfa<StateId>, CoreError> {
    let ctx = FlowContext::new(ra)?;
    let alphabet: Vec<StateId> = ra.states().collect();
    let k = ra.k();

    // NFA states: Start, P1(q, S) — tracking the source class,
    // P2(q, T) — tracking a class known-unequal to the source.
    #[derive(Clone, PartialEq, Eq, Hash)]
    enum St {
        Start,
        P1(StateId, BTreeSet<u16>),
        P2(StateId, BTreeSet<u16>),
    }
    let mut index: HashMap<St, usize> = HashMap::new();
    let mut states: Vec<St> = Vec::new();
    let mut nfa = Nfa::new(0);
    fn intern<St: Clone + Eq + std::hash::Hash>(
        s: St,
        index: &mut HashMap<St, usize>,
        states: &mut Vec<St>,
        nfa: &mut Nfa<StateId>,
    ) -> usize {
        if let Some(&id) = index.get(&s) {
            return id;
        }
        let id = nfa.add_state();
        index.insert(s.clone(), id);
        states.push(s);
        id
    }
    let start = intern(St::Start, &mut index, &mut states, &mut nfa);
    nfa.set_init(start);

    // Switch targets from a P1-set at a `q`-position: classes forced apart
    // from the tracked class by an x-x inequality at `q`.
    let xx_switch = |q: StateId, set: &BTreeSet<u16>| -> Vec<BTreeSet<u16>> {
        let Some(a) = ctx.a(q) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for m in 0..k {
            let hit = set.iter().any(|&l| a.forced_neq(Term::x(l), Term::x(m)));
            if hit {
                let t = ctx.close_x(q, &BTreeSet::from([m]));
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    };
    // x-y switch: at a `q`-position with tracked set `set`, registers `m`
    // with `x_l ≠ y_m` forced start an unequal class at the *next* position.
    let xy_switch = |q: StateId, set: &BTreeSet<u16>| -> BTreeSet<u16> {
        let Some(a) = ctx.a(q) else {
            return BTreeSet::new();
        };
        (0..k)
            .filter(|&m| set.iter().any(|&l| a.forced_neq(Term::x(l), Term::y(m))))
            .collect()
    };

    let mut done = 0usize;
    while done < states.len() {
        let st = states[done].clone();
        let sid = index[&st];
        done += 1;
        for &q in &alphabet {
            match &st {
                St::Start => {
                    let s0 = ctx.start_set(q, i);
                    if !s0.is_empty() {
                        let t = intern(St::P1(q, s0.clone()), &mut index, &mut states, &mut nfa);
                        nfa.add_transition(sid, q, t);
                    }
                    // Immediate x-x switch at the first position.
                    for tset in xx_switch(q, &s0) {
                        let t = intern(St::P2(q, tset), &mut index, &mut states, &mut nfa);
                        nfa.add_transition(sid, q, t);
                    }
                }
                St::P1(prev, set) => {
                    let s2 = ctx.flow(*prev, set, q);
                    if !s2.is_empty() {
                        let t = intern(St::P1(q, s2.clone()), &mut index, &mut states, &mut nfa);
                        nfa.add_transition(sid, q, t);
                    }
                    // x-x switch at the new position.
                    for tset in xx_switch(q, &s2) {
                        let t = intern(St::P2(q, tset), &mut index, &mut states, &mut nfa);
                        nfa.add_transition(sid, q, t);
                    }
                    // x-y switch across the transition from `prev`.
                    let ym = xy_switch(*prev, set);
                    if !ym.is_empty() {
                        let tset = ctx.close_x(q, &ym);
                        if !tset.is_empty() {
                            let t = intern(St::P2(q, tset), &mut index, &mut states, &mut nfa);
                            nfa.add_transition(sid, q, t);
                        }
                    }
                }
                St::P2(prev, set) => {
                    let s2 = ctx.flow(*prev, set, q);
                    if !s2.is_empty() {
                        let t = intern(St::P2(q, s2), &mut index, &mut states, &mut nfa);
                        nfa.add_transition(sid, q, t);
                    }
                }
            }
        }
    }
    for (s, id) in index.iter() {
        if let St::P2(_, set) = s {
            if set.contains(&j.0) {
                nfa.set_accepting(*id, true);
            }
        }
    }
    Ok(nfa.determinize(&alphabet).minimize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::transform::{complete, state_driven};

    /// Example 1 normalized (complete + state-driven) with names resolved.
    fn example1_normalized() -> RegisterAutomaton {
        let (ra, _) = paper::example1();
        state_driven(&complete(&ra).unwrap()).automaton
    }

    /// The state at a given position of the canonical Example 1 trace
    /// (q1 q2 q2 q2)^ω realized in the normalized automaton: find states by
    /// their origin prefix in the display name.
    fn states_with_prefix(ra: &RegisterAutomaton, prefix: &str) -> Vec<StateId> {
        ra.states()
            .filter(|&s| ra.state_name(s).starts_with(prefix))
            .collect()
    }

    #[test]
    fn eq_dfa_register2_flows_everywhere() {
        // In Example 1, register 2 carries one value forever: e=22 accepts
        // every legal factor (on the states of real traces).
        let ra = example1_normalized();
        let dfa = eq_dfa(&ra, RegIdx(1), RegIdx(1)).unwrap();
        // Pick any states and a plausible trace factor: since every type
        // forces x2 = y2, the set {2} persists along *any* state word.
        let qs: Vec<StateId> = ra.states().collect();
        assert!(dfa.accepts(&[qs[0]]));
        assert!(dfa.accepts(&[qs[0], qs[1 % qs.len()]]));
        assert!(dfa.accepts(&qs.clone()));
    }

    #[test]
    fn eq_dfa_register1_at_q1_positions() {
        // e=11 over Example 1: register 1 flows from a q1-position through
        // register 2 back to register 1 at the next q1-position, because δ1
        // forces x1 = x2 and δ3 copies back (y1 = y2).
        let ra = example1_normalized();
        let dfa = eq_dfa(&ra, RegIdx(0), RegIdx(0)).unwrap();
        let q1s = states_with_prefix(&ra, "q1");
        let q2s = states_with_prefix(&ra, "q2");
        assert!(!q1s.is_empty() && !q2s.is_empty());
        // Factor q1 … q1: need the intermediate q2-states whose types are
        // δ2-like until a δ3-like state returns to q1. Try all 2-step and
        // 3-step factors from q1 to q1 and require at least one accepted.
        let mut found = false;
        for &a in &q1s {
            for &b in &q2s {
                for &c in &q2s {
                    for &d in &q1s {
                        if dfa.accepts(&[a, b, c, d]) {
                            found = true;
                        }
                    }
                }
            }
        }
        assert!(
            found,
            "some q1 → q2 → q2 → q1 factor must preserve register 1"
        );
    }

    #[test]
    fn eq_dfa_register1_not_preserved_one_step() {
        // Register 1 is freshly nondeterministic at q2-positions: a factor
        // q1 q2 cannot force (a,1) ∼ (a+1,1) … except through completions
        // that happen to force y1 = x1-class. Check that at least one
        // q1 → q2 factor does *not* preserve register 1.
        let ra = example1_normalized();
        let dfa = eq_dfa(&ra, RegIdx(0), RegIdx(0)).unwrap();
        let q1s = states_with_prefix(&ra, "q1");
        let q2s = states_with_prefix(&ra, "q2");
        let mut some_rejected = false;
        for &a in &q1s {
            for &b in &q2s {
                if !dfa.accepts(&[a, b]) {
                    some_rejected = true;
                }
            }
        }
        assert!(some_rejected);
    }

    #[test]
    fn neq_dfa_on_all_distinct_automaton() {
        // Example 16's 𝒜: single state, x1 ≠ y1. Complete+state-driven.
        let ext = paper::example16_a();
        let norm = state_driven(&complete(ext.ra()).unwrap()).automaton;
        let dfa = neq_dfa(&norm, RegIdx(0), RegIdx(0)).unwrap();
        let qs: Vec<StateId> = norm.states().collect();
        // Consecutive positions differ: factor of length 2 accepted for the
        // state whose type is x1 ≠ y1 ∧ x1 ≠ ... some completion. The
        // completion splits into y1-related variants; all start q-states
        // force x1 ≠ y1, so any 2-letter factor is accepted.
        for &a in &qs {
            for &b in &qs {
                assert!(dfa.accepts(&[a, b]), "consecutive positions differ");
            }
        }
        // Single positions: x1 ≠ x1 never: rejected.
        for &a in &qs {
            assert!(!dfa.accepts(&[a]));
        }
    }

    #[test]
    fn neq_dfa_distance_two_through_completion() {
        // In the all-distinct automaton completed, one completion forces
        // y1 ≠ x1 only (distance 1). At distance 2 the inequality is NOT
        // forced (values may return), so some factor of length 3 must be
        // rejected.
        let ext = paper::example16_a();
        let norm = state_driven(&complete(ext.ra()).unwrap()).automaton;
        let dfa = neq_dfa(&norm, RegIdx(0), RegIdx(0)).unwrap();
        let qs: Vec<StateId> = norm.states().collect();
        let mut some_rejected = false;
        for &a in &qs {
            for &b in &qs {
                for &c in &qs {
                    if !dfa.accepts(&[a, b, c]) {
                        some_rejected = true;
                    }
                }
            }
        }
        assert!(some_rejected, "distance-2 inequality is not always forced");
    }

    #[test]
    fn flow_context_requires_state_driven() {
        let (ra, _) = paper::example1();
        assert!(matches!(
            FlowContext::new(&ra),
            Err(CoreError::NotStateDriven)
        ));
    }
}
