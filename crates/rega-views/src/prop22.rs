//! Proposition 22: LR-bounded extended automata are projections of register
//! automata — implemented as the *streaming enforcement engine* with the
//! proof's `2M² + 1` register budget.
//!
//! The theorem's operational content: if the inequality obligations of an
//! extended automaton `ℬ` admit vertex covers of size `≤ N` at every
//! position (Definition 15), then a register automaton with `2M² + 1` extra
//! registers (`M = N + 1`) can check all of `ℬ`'s global inequality
//! constraints *in a streaming fashion*, holding at each moment only:
//!
//! * `R_a` slots — values of high-out-degree positions (degree `> M` in the
//!   paper's graph `Ĝ_h`), kept until all their partners have passed; the
//!   vertex-cover bound caps these at `M`;
//! * `R_b` slots — for low-out-degree positions, the (guessed; here taken
//!   from the trace being checked) values of their future partners, checked
//!   `≠` at storage time and consumed on arrival; capped at `M²`.
//!
//! [`enforce_lasso`] replays this strategy over a concrete ultimately
//! periodic run and reports the verdict together with the peak number of
//! occupied slots — the experiment suite (E9) verifies the `2M² + 1` budget
//! on LR-bounded automata and its violation on unbounded ones
//! (Example 16's `𝒜′`).

use rega_analysis::classes::ClassStructure;
use rega_core::extended::ConstraintKind;
use rega_core::run::LassoRun;
use rega_core::{CoreError, ExtendedAutomaton};
use rega_data::Value;
use std::collections::BTreeMap;

/// The report of a streaming enforcement replay.
#[derive(Clone, Debug)]
pub struct EnforcementReport {
    /// Whether all inequality obligations were satisfied (must agree with
    /// `ExtendedAutomaton::check_lasso_run`).
    pub accepted: bool,
    /// Peak number of simultaneously occupied value slots.
    pub peak_slots: usize,
    /// The register budget `2M² + 1` for the given `M`.
    pub budget: usize,
    /// Whether the replay stayed within the budget. On LR-bounded automata
    /// with `M ≥ N + 1`, Proposition 22 guarantees this.
    pub within_budget: bool,
    /// Number of inequality obligations (normal-form edges) processed.
    pub edges_checked: usize,
}

/// Replays the Proposition 22 strategy over a concrete lasso run.
///
/// `m_bound` is the paper's `M = N + 1` (`N` from the LR-boundedness
/// check); `horizon` bounds the analyzed unfolding (obligations between
/// positions `< horizon` are enforced; on an ultimately periodic run the
/// obligation pattern repeats, so a few periods suffice to exhibit the peak
/// memory).
pub fn enforce_lasso(
    ext: &ExtendedAutomaton,
    run: &LassoRun,
    m_bound: usize,
    horizon: usize,
) -> Result<EnforcementReport, CoreError> {
    // The obligations come from the constraint structure of the control
    // trace; compute them on the bounded unfolding.
    let control = run.control_trace();
    let s = ClassStructure::build(ext, &control, horizon)?;

    // Normal-form edges: one representative (position, register) pair per
    // ≠-related class pair (values within a class coincide on any valid
    // run, so one check per pair suffices — the paper's normal form).
    let mut edges: Vec<((usize, u16), (usize, u16))> = Vec::new();
    for &(c1, c2) in &s.neq {
        let m1 = &s.classes[c1].members;
        let m2 = &s.classes[c2].members;
        if m1.is_empty() || m2.is_empty() {
            continue;
        }
        // Earliest anchor n from the earlier class, then the first member
        // of the other class at or after n; orient source before target.
        let (a, b) = if m1[0] <= m2[0] { (m1, m2) } else { (m2, m1) };
        let n = a[0];
        let m = match b.iter().find(|&&(p, _)| p >= n.0) {
            Some(&p) => p,
            None => continue,
        };
        edges.push((n, m));
    }
    edges.sort();
    edges.dedup();

    // Out-degree per source position-slot (the paper's deg(h) in Ĝ_h).
    let mut out_deg: BTreeMap<(usize, u16), usize> = BTreeMap::new();
    for &(src, _) in &edges {
        *out_deg.entry(src).or_insert(0) += 1;
    }
    let mut by_source: BTreeMap<(usize, u16), Vec<(usize, u16)>> = BTreeMap::new();
    for &(src, tgt) in &edges {
        by_source.entry(src).or_default().push(tgt);
    }

    // Replay.
    #[derive(Debug)]
    enum Slot {
        /// R_a: the source value, checked against each arriving partner.
        Source {
            src: (usize, u16),
            value: Value,
            remaining: usize,
        },
        /// R_b: a claimed partner value (already checked ≠ source).
        Claim { value: Value, target: (usize, u16) },
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut peak = 0usize;
    let mut accepted = true;
    let value_at = |(p, r): (usize, u16)| run.config_at(p).regs[r as usize];

    for pos in 0..horizon {
        for reg in 0..s.k as u16 {
            let here = (pos, reg);
            let v_here = value_at(here);
            // 1. Arriving obligations.
            let mut i = 0;
            while i < slots.len() {
                let mut drop_slot = false;
                match &mut slots[i] {
                    Slot::Source {
                        src,
                        value,
                        remaining,
                    } => {
                        if by_source[&*src].contains(&here) {
                            if *value == v_here {
                                accepted = false;
                            }
                            *remaining -= 1;
                            if *remaining == 0 {
                                drop_slot = true;
                            }
                        }
                    }
                    Slot::Claim { value, target } => {
                        if *target == here {
                            if *value != v_here {
                                // The claim named a different value than the
                                // actual one — impossible when claiming from
                                // the trace itself; kept for safety.
                                accepted = false;
                            }
                            drop_slot = true;
                        }
                    }
                }
                if drop_slot {
                    slots.swap_remove(i);
                } else {
                    i += 1;
                }
            }

            // 2. Departing obligations: this position-slot is a source.
            if let Some(targets) = by_source.get(&here) {
                let deg = out_deg[&here];
                if deg > m_bound {
                    // R_a strategy: store our value.
                    slots.push(Slot::Source {
                        src: here,
                        value: v_here,
                        remaining: deg,
                    });
                } else {
                    // R_b strategy: claim the partners' future values,
                    // checking ≠ now.
                    for &tgt in targets {
                        let v_tgt = value_at(tgt);
                        if v_tgt == v_here {
                            accepted = false;
                        }
                        slots.push(Slot::Claim {
                            value: v_tgt,
                            target: tgt,
                        });
                    }
                }
            }
            peak = peak.max(slots.len());
        }
    }

    let budget = 2 * m_bound * m_bound + 1;
    Ok(EnforcementReport {
        accepted: accepted && s.consistent,
        peak_slots: peak,
        budget,
        within_budget: peak <= budget,
        edges_checked: edges.len(),
    })
}

/// Convenience: runs the LR-boundedness check first and replays with the
/// derived `M = N + 1`.
pub fn enforce_with_derived_bound(
    ext: &ExtendedAutomaton,
    run: &LassoRun,
    horizon: usize,
) -> Result<(EnforcementReport, bool), CoreError> {
    let lr = rega_analysis::lr::is_lr_bounded(ext, &rega_analysis::lr::LrOptions::default())?;
    let m = lr.bound + 1;
    let report = enforce_lasso(ext, run, m, horizon)?;
    Ok((report, lr.bounded))
}

/// Helper for the tests and experiments: whether the automaton has only
/// inequality constraints (the Prop 22 setting after Prop 6).
pub fn has_only_inequalities(ext: &ExtendedAutomaton) -> bool {
    ext.constraints()
        .iter()
        .all(|c| c.kind == ConstraintKind::NotEqual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::run::Config;
    use rega_core::StateId;
    use rega_core::TransId;
    use rega_data::{Database, Schema};

    /// A valid lasso run of Example 16's 𝒜 (x1 ≠ y1): alternate two values.
    fn alternating_run() -> LassoRun {
        let q = StateId(0);
        LassoRun::new(
            vec![
                Config::new(q, vec![Value(1)]),
                Config::new(q, vec![Value(2)]),
            ],
            vec![TransId(0), TransId(0)],
            0,
        )
    }

    #[test]
    fn lr_bounded_case_stays_within_budget() {
        let ext = paper::example16_a();
        let run = alternating_run();
        let db = Database::new(Schema::empty());
        assert!(ext.check_lasso_run(&db, &run).is_ok());
        let (report, bounded) = enforce_with_derived_bound(&ext, &run, 12).unwrap();
        assert!(bounded);
        assert!(report.accepted);
        assert!(
            report.within_budget,
            "peak {} must fit budget {}",
            report.peak_slots, report.budget
        );
        assert!(report.edges_checked > 0);
    }

    #[test]
    fn rejecting_run_detected() {
        // Same automaton, but a constant run violating x1 ≠ y1.
        let ext = paper::example16_a();
        let q = StateId(0);
        let run = LassoRun::new(vec![Config::new(q, vec![Value(1)])], vec![TransId(0)], 0);
        let report = enforce_lasso(&ext, &run, 2, 8).unwrap();
        assert!(!report.accepted, "x1 ≠ y1 violated by the constant run");
    }

    #[test]
    fn unbounded_case_blows_past_any_fixed_budget() {
        // Example 16's 𝒜′ starting in p: all-distinct. Peak slots grow with
        // the horizon, so a fixed budget is eventually exceeded —
        // exactly the dichotomy of Theorem 19. (The values of the replayed
        // run are irrelevant for the *memory* accounting: obligations come
        // from the control trace alone.)
        let ext = paper::example16_a_prime();
        let p = ext.ra().state_by_name("p").unwrap();
        let t_pp = ext
            .ra()
            .outgoing(p)
            .iter()
            .copied()
            .find(|&t| ext.ra().transition(t).to == p)
            .unwrap();
        let run = LassoRun::new(
            vec![
                Config::new(p, vec![Value(1)]),
                Config::new(p, vec![Value(2)]),
            ],
            vec![t_pp, t_pp],
            0,
        );
        let small = enforce_lasso(&ext, &run, 2, 8).unwrap();
        let large = enforce_lasso(&ext, &run, 2, 32).unwrap();
        assert!(
            large.peak_slots > small.peak_slots,
            "peak memory must grow with the horizon on non-LR-bounded input"
        );
        assert!(!large.within_budget, "2M²+1 cannot hold all-distinct");
    }

    #[test]
    fn agreement_with_reference_monitor() {
        // For a batch of candidate runs of Example 16's 𝒜, the enforcement
        // verdict agrees with the exact checker.
        let ext = paper::example16_a();
        let db = Database::new(Schema::empty());
        let q = StateId(0);
        let candidates = vec![
            LassoRun::new(
                vec![
                    Config::new(q, vec![Value(1)]),
                    Config::new(q, vec![Value(2)]),
                ],
                vec![TransId(0), TransId(0)],
                0,
            ),
            LassoRun::new(
                vec![
                    Config::new(q, vec![Value(1)]),
                    Config::new(q, vec![Value(2)]),
                    Config::new(q, vec![Value(3)]),
                ],
                vec![TransId(0), TransId(0), TransId(0)],
                0,
            ),
        ];
        for run in &candidates {
            let reference = ext.check_lasso_run(&db, run).is_ok();
            let report = enforce_lasso(&ext, run, 2, 12).unwrap();
            assert_eq!(reference, report.accepted, "run {run}");
        }
    }

    #[test]
    fn only_inequalities_helper() {
        assert!(has_only_inequalities(&paper::example7()));
        assert!(!has_only_inequalities(&paper::example5()));
    }
}
