//! Proposition 6: elimination of global *equality* constraints.
//!
//! For each equality constraint `e=ᵢⱼ` with (minimal) DFA `E`, the new
//! automaton tracks, in its control state, the set of `E`-states of the
//! constraint runs spawned at every earlier position, and stores each run's
//! source value `d_n[i]` in a dedicated extra register — one per live
//! `E`-state, since runs converging on the same state must carry the same
//! value anyway (the transition type enforces it, which is exactly the
//! convergence argument of the paper's proof). When a run reaches an
//! accepting state after reading `q_m`, a local literal equates the stored
//! register with `x_j` — the constraint has become *streaming*.
//!
//! The result has only inequality constraints (lifted through the state
//! projection) and satisfies `Reg(D, 𝒜) = Π_k(Reg(D, ℬ))` for every `D`.

use rega_core::extended::ConstraintKind;
use rega_core::{CoreError, ExtendedAutomaton, RegisterAutomaton, StateId};
use rega_data::{Literal, RegIdx, Term};
use std::collections::{BTreeSet, HashMap};

/// The result of the elimination.
#[derive(Clone, Debug)]
pub struct Prop6Result {
    /// The equality-free extended automaton `ℬ`.
    pub automaton: ExtendedAutomaton,
    /// The number of registers of the input automaton (`Π` back onto these).
    pub original_k: u16,
    /// For each new state, the original state it simulates.
    pub state_map: Vec<StateId>,
}

/// Eliminates all global equality constraints, adding registers
/// (Proposition 6).
pub fn eliminate_global_equalities(ext: &ExtendedAutomaton) -> Result<Prop6Result, CoreError> {
    let ra = ext.ra();
    let k = ra.k();

    // Partition the constraints.
    let eq_constraints: Vec<usize> = (0..ext.constraints().len())
        .filter(|&c| ext.constraints()[c].kind == ConstraintKind::Equal)
        .collect();
    if eq_constraints.is_empty() {
        // Nothing to do; return a copy with an identity state map.
        let mut out = ExtendedAutomaton::new(ra.clone());
        for c in ext.constraints() {
            out.add_lifted_constraint(c, |s| s)?;
        }
        return Ok(Prop6Result {
            automaton: out,
            original_k: k,
            state_map: ra.states().collect(),
        });
    }

    // Register layout: for each equality constraint, one register per DFA
    // state that can still fire a *future* check — i.e. some successor is
    // alive. A run entering an accepting state has its check enforced
    // inline by the transition's literals; if no further acceptance is
    // reachable, its value need not be stored at all. (This keeps the
    // register count minimal, which matters downstream: Theorem 13
    // completes the resulting automaton, exponentially in the register
    // count.)
    let mut next_reg = k;
    let mut reg_of: Vec<HashMap<usize, u16>> = Vec::new();
    for &ci in &eq_constraints {
        let c = &ext.constraints()[ci];
        let dfa = c.dfa();
        let mut map = HashMap::new();
        for s in 0..dfa.num_states() {
            let future = ra.states().any(|q| c.is_alive(dfa.step(s, &q)));
            if c.is_alive(s) && future {
                map.insert(s, next_reg);
                next_reg += 1;
            }
        }
        reg_of.push(map);
    }
    let new_k = next_reg;

    // Lazy product construction over (original state, active-state vector).
    type Active = Vec<BTreeSet<usize>>;
    let mut out = RegisterAutomaton::new(new_k, ra.schema().clone());
    let mut index: HashMap<(StateId, Active), StateId> = HashMap::new();
    let mut states: Vec<(StateId, Active)> = Vec::new();
    let empty_active: Active = eq_constraints.iter().map(|_| BTreeSet::new()).collect();
    fn intern(
        ra: &RegisterAutomaton,
        index: &mut HashMap<(StateId, Vec<BTreeSet<usize>>), StateId>,
        q: StateId,
        act: Vec<BTreeSet<usize>>,
        out: &mut RegisterAutomaton,
        states: &mut Vec<(StateId, Vec<BTreeSet<usize>>)>,
    ) -> StateId {
        *index.entry((q, act.clone())).or_insert_with(|| {
            let name = format!("{}_{}", ra.state_name(q), states.len());
            let id = out.add_state(&name);
            if ra.is_initial(q) && act.iter().all(|a| a.is_empty()) {
                out.set_initial(id);
            }
            if ra.is_accepting(q) {
                out.set_accepting(id);
            }
            states.push((q, act));
            id
        })
    }
    for q in ra.states().filter(|&q| ra.is_initial(q)) {
        intern(
            ra,
            &mut index,
            q,
            empty_active.clone(),
            &mut out,
            &mut states,
        );
    }

    let mut done = 0usize;
    while done < states.len() {
        let (q, act) = states[done].clone();
        let sid = index[&(q, act.clone())];
        done += 1;
        for &t in ra.outgoing(q) {
            let tr = ra.transition(t);
            let mut ty = tr.ty.with_k(new_k);
            let mut next_act: Active = Vec::with_capacity(eq_constraints.len());
            let mut ok = true;
            for (pos, &ci) in eq_constraints.iter().enumerate() {
                let c = &ext.constraints()[ci];
                let dfa = c.dfa();
                let regs = &reg_of[pos];
                // Advance existing runs and spawn the new one (the spawned
                // run's value is x_i; existing runs' values are in their
                // registers).
                // targets: dfa_state -> source terms (x-registers or x_i).
                let mut targets: HashMap<usize, Vec<Term>> = HashMap::new();
                for &s in &act[pos] {
                    let s2 = dfa.step(s, &q);
                    if regs.contains_key(&s2) {
                        targets
                            .entry(s2)
                            .or_default()
                            .push(Term::X(RegIdx(regs[&s])));
                    }
                    // Acceptance of an advanced run: factor matched ending
                    // here; stored value must equal x_j *at this position*.
                    if dfa.is_accepting(s2) {
                        ty.add(Literal::eq(Term::X(RegIdx(regs[&s])), Term::X(c.j)));
                    }
                }
                let s0 = dfa.step(dfa.init(), &q);
                if regs.contains_key(&s0) {
                    targets.entry(s0).or_default().push(Term::X(c.i));
                }
                if dfa.is_accepting(s0) {
                    // Single-position factor: x_i = x_j at this position.
                    ty.add(Literal::eq(Term::X(c.i), Term::X(c.j)));
                }
                // Move values; enforce convergence.
                let mut new_set = BTreeSet::new();
                for (s2, sources) in &targets {
                    let dst = Term::Y(RegIdx(regs[s2]));
                    for (n, src) in sources.iter().enumerate() {
                        if n == 0 {
                            ty.add(Literal::eq(dst, *src));
                        } else {
                            ty.add(Literal::eq(*src, sources[0]));
                        }
                    }
                    new_set.insert(*s2);
                }
                next_act.push(new_set);
                // The added equalities might be unsatisfiable with the
                // base type — then this transition variant cannot fire.
                if !ty.is_satisfiable(ra.schema()) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let tid = intern(ra, &mut index, tr.to, next_act, &mut out, &mut states);
            out.add_transition(sid, ty, tid)?;
        }
    }

    // Only initial product states with the empty active vector are initial:
    // enforced in `intern`. Lift the inequality constraints.
    let state_map: Vec<StateId> = states.iter().map(|&(q, _)| q).collect();
    let mut out = ExtendedAutomaton::new(out);
    for c in ext.constraints() {
        if c.kind == ConstraintKind::NotEqual {
            out.add_lifted_constraint(c, |s| state_map[s.idx()])?;
        }
    }
    Ok(Prop6Result {
        automaton: out,
        original_k: k,
        state_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::simulate::{self, SearchLimits};
    use rega_data::{Database, Schema, Value};

    #[test]
    fn example5_equalities_become_registers() {
        let ext = paper::example5();
        let r = eliminate_global_equalities(&ext).unwrap();
        assert!(r
            .automaton
            .constraints()
            .iter()
            .all(|c| c.kind == ConstraintKind::NotEqual));
        assert!(r.automaton.k() > 1, "extra registers added");
        assert_eq!(r.original_k, 1);
    }

    #[test]
    fn example5_projection_preserves_prefix_traces() {
        // Π₁ of the eliminated automaton's prefix traces equals the prefix
        // traces of the original extended automaton.
        let ext = paper::example5();
        let r = eliminate_global_equalities(&ext).unwrap();
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        let len = 4;
        let original =
            simulate::projected_settled_traces(&ext, &db, len, 1, &pool, SearchLimits::default());
        let eliminated = simulate::projected_settled_traces(
            &r.automaton,
            &db,
            len,
            1,
            &pool,
            SearchLimits {
                max_nodes: 500_000,
                max_runs: 100_000,
            },
        );
        assert_eq!(
            original, eliminated,
            "projected traces must agree (len {len})"
        );
    }

    #[test]
    fn no_equalities_is_identity_modulo_copy() {
        let ext = paper::example7(); // only an inequality constraint
        let r = eliminate_global_equalities(&ext).unwrap();
        assert_eq!(r.automaton.k(), 1);
        assert_eq!(r.automaton.ra().num_states(), ext.ra().num_states());
        assert_eq!(r.automaton.constraints().len(), 1);
    }

    #[test]
    fn eliminated_automaton_enforces_equality_locally() {
        // A run of the eliminated Example 5 that changes the p1-value must
        // not exist even as a prefix (the stored register forces equality
        // when the constraint DFA accepts).
        let ext = paper::example5();
        let r = eliminate_global_equalities(&ext).unwrap();
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        // All prefixes of length 4: check that every one whose state trace
        // visits p1 twice holds the same register-1 value there.
        let runs = simulate::enumerate_prefixes(
            &r.automaton,
            &db,
            5,
            &pool,
            SearchLimits {
                max_nodes: 500_000,
                max_runs: 100_000,
            },
        );
        assert!(!runs.is_empty());
        for run in &runs {
            // Settled positions only: the check for a factor ending at the
            // final position fires on that position's outgoing transition,
            // which a prefix has not fired yet.
            let p1_vals: Vec<Value> = run.configs[..run.configs.len() - 1]
                .iter()
                .filter(|c| r.automaton.ra().state_name(c.state).starts_with("p1"))
                .map(|c| c.regs[0])
                .collect();
            for w in p1_vals.windows(2) {
                assert_eq!(w[0], w[1], "p1-positions must share one value");
            }
        }
    }
}
