//! Online observation of a projection view: does an observed stream of
//! visible register tuples stay consistent with the view automaton?
//!
//! The view produced by [`prop20`](crate::prop20) (or
//! [`thm13`](crate::thm13)) is a *nondeterministic* extended automaton over
//! the visible registers. The observer runs the standard online subset
//! simulation: it maintains a frontier of possible configurations — pairs
//! of a view control state and the incremental
//! [`ConstraintMonitor`](rega_core::monitor::ConstraintMonitor) state for
//! the view's global constraints — and advances every configuration on each
//! observed tuple. Because all of the view's registers are visible, an
//! observed tuple fully determines the register contents; the only
//! nondeterminism is in the control state and the constraint bookkeeping.
//!
//! The check is **safety-only** (prefix consistency): an empty frontier
//! proves no run of the view produces the observed prefix; a non-empty
//! frontier means some finite run does. Büchi acceptance of infinite
//! continuations is *not* decided here — that is the lasso checker's job.
//!
//! Frontiers are deduplicated by (state, monitor fingerprint) and capped;
//! past the cap the observer degrades soundly to three-valued answers
//! (`Unknown` instead of `Violation` once configurations may have been
//! dropped).

use rega_core::monitor::{ConstraintMonitor, ExportedSlots};
use rega_core::{ExtendedAutomaton, StateId};
use rega_data::{Database, Value};
use std::collections::BTreeSet;

/// Default bound on the number of simultaneously tracked view
/// configurations.
pub const DEFAULT_MAX_FRONTIER: usize = 256;

/// Result of feeding one observed tuple to the observer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Some run of the view produces the observed prefix.
    Consistent,
    /// No run of the view produces the observed prefix.
    Violation,
    /// The frontier overflowed earlier and is now empty: the observed
    /// prefix may or may not be producible (dropped configurations could
    /// have survived).
    Unknown,
}

/// Online subset-simulation of a projection view.
///
/// Like the monitor it wraps, the observer owns only its mutable state; the
/// view automaton is borrowed per [`observe`](Self::observe) call, so many
/// observers (one per streaming session) can share one compiled view.
#[derive(Clone, Debug)]
pub struct ViewObserver {
    /// Possible (control state, constraint state) configurations after the
    /// observed prefix.
    frontier: Vec<(StateId, ConstraintMonitor)>,
    /// The previously observed tuple (the view's current register
    /// contents), shared by every frontier configuration.
    last_regs: Option<Vec<Value>>,
    max_frontier: usize,
    overflowed: bool,
    dead: bool,
}

impl ViewObserver {
    /// A fresh observer (no tuple observed yet) with the default frontier
    /// bound.
    pub fn new() -> Self {
        Self::with_max_frontier(DEFAULT_MAX_FRONTIER)
    }

    /// A fresh observer with an explicit frontier bound (≥ 1).
    pub fn with_max_frontier(max_frontier: usize) -> Self {
        ViewObserver {
            frontier: Vec::new(),
            last_regs: None,
            max_frontier: max_frontier.max(1),
            overflowed: false,
            dead: false,
        }
    }

    /// Number of configurations currently tracked.
    pub fn frontier_size(&self) -> usize {
        self.frontier.len()
    }

    /// Whether the frontier bound was ever hit (verdicts degraded to
    /// [`Verdict::Unknown`] on emptiness from then on).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The set of view control states the observed prefix may be in.
    pub fn possible_states(&self) -> BTreeSet<StateId> {
        self.frontier.iter().map(|(s, _)| *s).collect()
    }

    /// Feeds the next observed visible tuple. `view` must be the same
    /// extended automaton on every call and `regs` must have exactly the
    /// view's register count.
    pub fn observe(&mut self, view: &ExtendedAutomaton, db: &Database, regs: &[Value]) -> Verdict {
        assert_eq!(
            regs.len(),
            view.ra().k() as usize,
            "observed tuple arity must match the view's register count"
        );
        if self.dead {
            return self.empty_verdict();
        }
        let ra = view.ra();
        let mut next: Vec<(StateId, ConstraintMonitor)> = Vec::new();
        let mut seen: BTreeSet<(StateId, Vec<u8>)> = BTreeSet::new();
        let mut push = |state: StateId, monitor: ConstraintMonitor| {
            if seen.insert((state, monitor.fingerprint())) {
                next.push((state, monitor));
            }
        };
        match &self.last_regs {
            None => {
                // First observation: any initial state, registers loaded
                // with the observed tuple, monitor consuming position 0.
                for state in ra.initial_states() {
                    let mut monitor = ConstraintMonitor::new(view);
                    if monitor.step(view, state, regs).is_none() {
                        push(state, monitor);
                    }
                }
            }
            Some(prev) => {
                for (state, monitor) in &self.frontier {
                    for &t in ra.outgoing(*state) {
                        let tr = ra.transition(t);
                        if !tr.ty.satisfied_by(db, prev, regs) {
                            continue;
                        }
                        let mut m2 = monitor.clone();
                        if m2.step(view, tr.to, regs).is_none() {
                            push(tr.to, m2);
                        }
                    }
                }
            }
        }
        if next.len() > self.max_frontier {
            next.truncate(self.max_frontier);
            self.overflowed = true;
        }
        self.frontier = next;
        self.last_regs = Some(regs.to_vec());
        if self.frontier.is_empty() {
            self.dead = true;
            self.empty_verdict()
        } else {
            Verdict::Consistent
        }
    }

    fn empty_verdict(&self) -> Verdict {
        if self.overflowed {
            Verdict::Unknown
        } else {
            Verdict::Violation
        }
    }

    /// Exports the observer state as plain data (see [`ObserverSnapshot`]);
    /// the inverse of [`from_snapshot`](Self::from_snapshot).
    pub fn export(&self) -> ObserverSnapshot {
        ObserverSnapshot {
            frontier: self
                .frontier
                .iter()
                .map(|(s, m)| (*s, m.export_slots()))
                .collect(),
            last_regs: self.last_regs.clone(),
            max_frontier: self.max_frontier,
            overflowed: self.overflowed,
            dead: self.dead,
        }
    }

    /// Rebuilds an observer from an exported snapshot against the same view
    /// automaton. Returns `None` when the snapshot does not fit `view`
    /// (out-of-range control state or malformed monitor slots).
    pub fn from_snapshot(view: &ExtendedAutomaton, snap: &ObserverSnapshot) -> Option<Self> {
        let mut frontier = Vec::with_capacity(snap.frontier.len());
        for (state, slots) in &snap.frontier {
            if state.0 as usize >= view.ra().num_states() {
                return None;
            }
            frontier.push((*state, ConstraintMonitor::from_slots(view, slots)?));
        }
        if let Some(regs) = &snap.last_regs {
            if regs.len() != view.ra().k() as usize {
                return None;
            }
        }
        Some(ViewObserver {
            frontier,
            last_regs: snap.last_regs.clone(),
            max_frontier: snap.max_frontier.max(1),
            overflowed: snap.overflowed,
            dead: snap.dead,
        })
    }
}

/// A plain-data export of a [`ViewObserver`]'s state, for snapshot /
/// restore of in-flight streaming sessions. The monitor states use the
/// sparse-slot encoding of
/// [`ConstraintMonitor::export_slots`](rega_core::monitor::ConstraintMonitor::export_slots);
/// serialization to a wire format is the caller's concern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObserverSnapshot {
    /// The tracked (control state, monitor slots) configurations.
    pub frontier: Vec<(StateId, ExportedSlots)>,
    /// The previously observed visible tuple, if any.
    pub last_regs: Option<Vec<Value>>,
    /// The frontier bound.
    pub max_frontier: usize,
    /// Whether the bound was ever hit.
    pub overflowed: bool,
    /// Whether the frontier emptied (verdicts are terminal).
    pub dead: bool,
}

impl Default for ViewObserver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop20::project_register_automaton;
    use rega_core::generate::{random_automaton, GenParams};
    use rega_core::simulate::{self, SearchLimits};
    use rega_core::RegisterAutomaton;
    use rega_data::{Schema, SigmaType, Term};

    /// Two-state automaton over one register: in state `a` the register
    /// must keep its value, moving to `b` changes it arbitrarily.
    fn keep_then_free() -> ExtendedAutomaton {
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let a = ra.add_state("a");
        let b = ra.add_state("b");
        ra.set_initial(a);
        ra.set_accepting(b);
        let keep = SigmaType::new(1, [rega_data::Literal::eq(Term::x(0), Term::y(0))]);
        ra.add_transition(a, keep, a).unwrap();
        ra.add_transition(a, SigmaType::empty(1), b).unwrap();
        ra.add_transition(b, SigmaType::empty(1), b).unwrap();
        ExtendedAutomaton::new(ra)
    }

    #[test]
    fn accepts_consistent_and_rejects_inconsistent_prefixes() {
        let ext = keep_then_free();
        let db = Database::new(Schema::empty());
        let mut obs = ViewObserver::new();
        // a(7) → a(7) → b(9): legal.
        assert_eq!(obs.observe(&ext, &db, &[Value(7)]), Verdict::Consistent);
        assert_eq!(obs.observe(&ext, &db, &[Value(7)]), Verdict::Consistent);
        assert_eq!(obs.observe(&ext, &db, &[Value(9)]), Verdict::Consistent);
        assert!(obs.possible_states().len() == 1); // must be in b
                                                   // Once a value changed we are in b and stay there; anything goes.
        assert_eq!(obs.observe(&ext, &db, &[Value(1)]), Verdict::Consistent);
    }

    #[test]
    fn violation_is_sticky() {
        // One state, register frozen forever: a change is a violation.
        let mut ra = RegisterAutomaton::new(1, Schema::empty());
        let a = ra.add_state("a");
        ra.set_initial(a);
        ra.set_accepting(a);
        let keep = SigmaType::new(1, [rega_data::Literal::eq(Term::x(0), Term::y(0))]);
        ra.add_transition(a, keep, a).unwrap();
        let ext = ExtendedAutomaton::new(ra);
        let db = Database::new(Schema::empty());
        let mut obs = ViewObserver::new();
        assert_eq!(obs.observe(&ext, &db, &[Value(1)]), Verdict::Consistent);
        assert_eq!(obs.observe(&ext, &db, &[Value(2)]), Verdict::Violation);
        // Dead: even a "legal-looking" tuple cannot resurrect the prefix.
        assert_eq!(obs.observe(&ext, &db, &[Value(2)]), Verdict::Violation);
    }

    #[test]
    fn agrees_with_batch_enumeration_on_random_views() {
        // For random projections, every enumerated settled trace of the
        // view must be accepted by the observer, position by position.
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2)];
        let params = GenParams {
            states: 2,
            k: 2,
            out_degree: 2,
            literals_per_type: 2,
            unary_relations: 0,
            relational_probability: 0.0,
        };
        let limits = SearchLimits {
            max_nodes: 200_000,
            max_runs: 50_000,
        };
        for seed in 0..8 {
            let ra = random_automaton(&params, seed);
            let Ok(proj) = project_register_automaton(&ra, 1) else {
                continue;
            };
            for len in 1..=3 {
                let traces =
                    simulate::projected_settled_traces(&proj.view, &db, len, 1, &pool, limits);
                for trace in &traces {
                    let mut obs = ViewObserver::new();
                    for tuple in trace {
                        assert_eq!(
                            obs.observe(&proj.view, &db, tuple),
                            Verdict::Consistent,
                            "seed {seed}: view's own trace rejected"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_round_trips_and_resumes_identically() {
        let ext = keep_then_free();
        let db = Database::new(Schema::empty());
        let mut obs = ViewObserver::new();
        assert_eq!(obs.observe(&ext, &db, &[Value(7)]), Verdict::Consistent);
        assert_eq!(obs.observe(&ext, &db, &[Value(7)]), Verdict::Consistent);
        let snap = obs.export();
        let mut restored = ViewObserver::from_snapshot(&ext, &snap).expect("round-trip");
        assert_eq!(restored.frontier_size(), obs.frontier_size());
        assert_eq!(restored.possible_states(), obs.possible_states());
        // Both must answer identically from here on, including a violation.
        for v in [9u64, 9, 3] {
            assert_eq!(
                obs.observe(&ext, &db, &[Value(v)]),
                restored.observe(&ext, &db, &[Value(v)]),
                "restored observer diverged"
            );
        }
        // A snapshot naming a state the view does not have is rejected.
        let mut bad = snap.clone();
        bad.frontier.push((StateId(999), Vec::new()));
        assert!(ViewObserver::from_snapshot(&ext, &bad).is_none());
    }

    #[test]
    fn tiny_frontier_cap_degrades_to_unknown() {
        let ext = keep_then_free();
        let db = Database::new(Schema::empty());
        let mut obs = ViewObserver::with_max_frontier(1);
        assert_eq!(obs.observe(&ext, &db, &[Value(7)]), Verdict::Consistent);
        // A repeated value can stay in a or move to b: two configurations,
        // and the cap of 1 drops one of them.
        assert_eq!(obs.observe(&ext, &db, &[Value(7)]), Verdict::Consistent);
        assert!(obs.overflowed());
        // From here on an empty frontier is inconclusive, never Violation.
        let mut saw_unknown = false;
        for v in [7u64, 8, 8, 9] {
            if obs.observe(&ext, &db, &[Value(v)]) == Verdict::Unknown {
                saw_unknown = true;
            }
        }
        let _ = saw_unknown; // frontier may survive; verdict must never be Violation
    }
}
