//! Theorem 24: projections that hide some registers **and the entire
//! database**, expressed as enhanced automata.
//!
//! Given a register automaton `A` over schema `σ` with `k` registers, and
//! `m ≤ k`, the construction produces an enhanced automaton `ℬ` with `m`
//! registers and *no database* such that
//! `Reg(ℬ) = ⋃_D Π_m(Reg(D, A))` — the traces a user sees who observes
//! only the first `m` registers and knows nothing about the database.
//!
//! Following the paper's proof, `ℬ` consists of:
//!
//! * the transition skeleton of (the equality-completed, state-driven) `A`
//!   with types restricted to the visible registers' equality literals;
//! * the global equality and inequality constraints of Lemma 21 on the
//!   visible registers (value flow and equality-type-derived inequalities
//!   through the hidden registers);
//! * **finiteness constraints** `φ^i_fin`: the values of register `i` at
//!   positions whose `∼`-class touches a positive relational literal (the
//!   active-domain positions) must form a finite set — mirroring the
//!   finiteness of the hidden database;
//! * **tuple inequality constraints** `ψ^R_{E,F}`: whenever a negative
//!   literal `¬R(s̄)` at some position `n` and a positive literal `R(r̄)` at
//!   some `n′` agree (via `∼`) on the argument positions in `E`, the value
//!   tuples flowing out of the remaining positions `F` to visible registers
//!   must differ — otherwise the hidden database would have to both contain
//!   and omit one fact.
//!
//! ## Implementation notes and supported fragment
//!
//! * Types are completed *on equality atoms only* — full completion is
//!   doubly exponential in the presence of relations; the relational atoms
//!   are precisely what the tuple-inequality constraints re-express, so
//!   equality completion is what the Lemma 21 machinery needs.
//! * Constants in the schema are not supported (the paper handles them by
//!   extending the trace alphabet with the constants' isomorphism type);
//!   [`CoreError::UnsupportedProjection`] is returned.
//! * The tuple-constraint selectors are Büchi automata over marked letters,
//!   built as lazy products of value-flow trackers; a state budget guards
//!   against blow-up for large arities.
//! * The active-domain position selectors cover flows through positive
//!   literals reachable forward from the position and past-tainted values
//!   merging at or after it; adom classes connected only through paths that
//!   dip strictly before the position *and* re-merge later are beyond the
//!   two-component normal form used here (they do not arise in the paper's
//!   examples). Finiteness constraints are vacuous on ultimately periodic
//!   runs either way — see `rega_core::enhanced`.

use crate::lemma21::{self, FlowContext};
use rega_automata::{Dfa, Nba};
use rega_core::enhanced::{
    EnhancedAutomaton, FinitenessConstraint, PositionSelector, TupleInequality,
};
use rega_core::extended::ConstraintKind;
use rega_core::transform::{complete_for_atoms_governed, state_driven_governed};
use rega_core::{Budget, CoreError, ExtendedAutomaton, RegisterAutomaton, StateId};
use rega_data::{Literal, RegIdx, SatCache, Term};
use std::collections::{BTreeSet, HashMap};

/// Budgets and limits for the construction.
#[derive(Clone, Copy, Debug)]
pub struct Thm24Options {
    /// Maximum number of states per tuple-constraint selector automaton.
    pub max_selector_states: usize,
    /// Maximum relation arity supported.
    pub max_arity: usize,
}

impl Default for Thm24Options {
    fn default() -> Self {
        Thm24Options {
            max_selector_states: 200_000,
            max_arity: 3,
        }
    }
}

/// The result of the database-hiding projection.
#[derive(Clone, Debug)]
pub struct DatabaseHidingProjection {
    /// The enhanced automaton `ℬ` over `m` registers, empty schema.
    pub view: EnhancedAutomaton,
    /// The equality-completed, state-driven version of the input whose
    /// states the view shares.
    pub normalized: RegisterAutomaton,
    /// Number of visible registers.
    pub m: u16,
}

/// All equality atoms over the term universe (used for equality-only
/// completion).
fn equality_atoms(k: u16) -> Vec<Literal> {
    let mut terms = Vec::new();
    for i in 0..k {
        terms.push(Term::x(i));
        terms.push(Term::y(i));
    }
    let mut atoms = Vec::new();
    for a in 0..terms.len() {
        for b in (a + 1)..terms.len() {
            atoms.push(Literal::eq(terms[a], terms[b]));
        }
    }
    atoms
}

/// Projects a register automaton onto its first `m` registers, hiding the
/// database entirely (Theorem 24).
pub fn project_hiding_database(
    ra: &RegisterAutomaton,
    m: u16,
    opts: &Thm24Options,
) -> Result<DatabaseHidingProjection, CoreError> {
    let cache = SatCache::new(ra.schema().clone());
    project_hiding_database_cached(ra, m, opts, &cache)
}

/// [`project_hiding_database`] sharing a caller-supplied σ-type cache
/// across the equality completion, state-driven wiring,
/// joint-satisfiability pruning and saturation.
pub fn project_hiding_database_cached(
    ra: &RegisterAutomaton,
    m: u16,
    opts: &Thm24Options,
    cache: &SatCache,
) -> Result<DatabaseHidingProjection, CoreError> {
    project_hiding_database_governed(ra, m, opts, cache, &Budget::unlimited())
}

/// [`project_hiding_database_cached`] under a [`Budget`]: the equality
/// completion, state-driven wiring, saturation/restriction loop, Lemma 21
/// builds, and the selector worklists (which can blow up combinatorially)
/// all check the deadline/ceilings at loop granularity.
pub fn project_hiding_database_governed(
    ra: &RegisterAutomaton,
    m: u16,
    opts: &Thm24Options,
    cache: &SatCache,
    budget: &Budget,
) -> Result<DatabaseHidingProjection, CoreError> {
    if m > ra.k() {
        return Err(CoreError::UnsupportedProjection(format!(
            "cannot keep {m} registers: the automaton has only {}",
            ra.k()
        )));
    }
    let schema = ra.schema().clone();
    if schema.num_constants() > 0 {
        return Err(CoreError::UnsupportedProjection(
            "schemas with constants are not supported by the Theorem 24 construction".into(),
        ));
    }
    for rel in schema.relations() {
        if schema.arity(rel) > opts.max_arity {
            return Err(CoreError::UnsupportedProjection(format!(
                "relation arity {} exceeds the configured maximum {}",
                schema.arity(rel),
                opts.max_arity
            )));
        }
    }
    let _span = rega_obs::span!("views.thm24", keep = m, states = ra.num_states());

    // 1. Equality completion + state-driven normal form.
    let completed = complete_for_atoms_governed(ra, &equality_atoms(ra.k()), cache, budget)?;
    let normalized = state_driven_governed(&completed, cache, budget)?.automaton;

    // 2. The view skeleton: empty schema, equality literals on visible
    // registers, wiring filtered by joint satisfiability.
    let empty = rega_data::Schema::empty();
    let mut view = RegisterAutomaton::new(m, empty.clone());
    for s in normalized.states() {
        let s2 = view.add_state(normalized.state_name(s));
        debug_assert_eq!(s, s2);
        if normalized.is_initial(s) {
            view.set_initial(s);
        }
        if normalized.is_accepting(s) {
            view.set_accepting(s);
        }
    }
    for t in normalized.transition_ids() {
        budget.tick("views.thm24.restrict")?;
        let tr = normalized.transition(t);
        if let Some(next_ty) = normalized.state_type(tr.to) {
            if !cache.jointly_satisfiable(&tr.ty, next_ty) {
                continue;
            }
        }
        let sat = cache.saturate(&tr.ty)?;
        let keep: Vec<Literal> = sat
            .literals()
            .filter(|l| {
                matches!(l, Literal::Eq(..) | Literal::Neq(..))
                    && l.terms().iter().all(|t| match t {
                        Term::X(i) | Term::Y(i) => i.0 < m,
                        Term::Const(_) => false,
                    })
            })
            .cloned()
            .collect();
        let restricted = rega_data::SigmaType::new(m, keep);
        let dup = view
            .outgoing(tr.from)
            .iter()
            .any(|&u| view.transition(u).to == tr.to && view.transition(u).ty == restricted);
        if !dup {
            view.add_transition(tr.from, restricted, tr.to)?;
        }
    }

    // 3. Lemma 21 constraints on the visible registers.
    let mut ext = ExtendedAutomaton::new(view);
    for i in 0..m {
        for j in 0..m {
            budget.tick("views.thm24.lemma21")?;
            let eq = lemma21::eq_dfa(&normalized, RegIdx(i), RegIdx(j))?;
            ext.add_constraint_dfa(ConstraintKind::Equal, RegIdx(i), RegIdx(j), eq)?;
            let neq = lemma21::neq_dfa(&normalized, RegIdx(i), RegIdx(j))?;
            ext.add_constraint_dfa(ConstraintKind::NotEqual, RegIdx(i), RegIdx(j), neq)?;
        }
    }
    let mut enhanced = EnhancedAutomaton::new(ext);

    // 4. Finiteness constraints per visible register.
    for i in 0..m {
        enhanced.add_finiteness(FinitenessConstraint {
            register: RegIdx(i),
            selector: adom_selector(&normalized, RegIdx(i), budget)?,
        });
    }

    // 5. Tuple inequality constraints per relation, partition, and visible
    // register tuples.
    for rel in schema.relations() {
        let arity = schema.arity(rel);
        // Partitions of [arity]: F-membership bitmask (E = complement).
        for f_mask in 0..(1u32 << arity) {
            let f_slots: Vec<usize> = (0..arity).filter(|&l| f_mask & (1 << l) != 0).collect();
            let l = f_slots.len();
            // Visible register tuples ī, j̄ ∈ [m]^l.
            let total = (m as usize).pow(l as u32).max(1);
            if m == 0 && l > 0 {
                continue; // no visible registers to read the F-values from
            }
            for flat in 0..total * total {
                let mut rest = flat;
                let mut i_regs = Vec::with_capacity(l);
                let mut j_regs = Vec::with_capacity(l);
                for _ in 0..l {
                    i_regs.push(RegIdx((rest % m.max(1) as usize) as u16));
                    rest /= m.max(1) as usize;
                }
                for _ in 0..l {
                    j_regs.push(RegIdx((rest % m.max(1) as usize) as u16));
                    rest /= m.max(1) as usize;
                }
                budget.check("views.thm24.tuple_constraints")?;
                if let Some(selector) =
                    tuple_selector(&normalized, rel, &f_slots, &i_regs, &j_regs, opts, budget)?
                {
                    enhanced.add_tuple_inequality(TupleInequality {
                        i_regs: i_regs.clone(),
                        j_regs: j_regs.clone(),
                        selector,
                    });
                }
            }
        }
    }

    rega_obs::event!(
        "views.thm24_built",
        view_states = enhanced.ext().ra().num_states(),
        finiteness = enhanced.finiteness_constraints().len(),
        tuple_inequalities = enhanced.tuple_inequalities().len(),
        types_interned = cache.stats().distinct_types
    );
    Ok(DatabaseHidingProjection {
        view: enhanced,
        normalized,
        m,
    })
}

/// Builds the position selector for "`(h, i)` is an active-domain
/// position": the class of `(h, i)` touches a positive relational literal.
///
/// Components (see module docs): forward flow from `(h, i)` hitting a
/// positive literal, plus — per register `r` — past-tainted values arriving
/// at `h` in register `r` whose flow merges with `(h, i)`'s flow at or
/// after `h`.
fn adom_selector(
    normalized: &RegisterAutomaton,
    i: RegIdx,
    budget: &Budget,
) -> Result<PositionSelector, CoreError> {
    let ctx = FlowContext::new(normalized)?;
    let states: Vec<StateId> = normalized.states().collect();
    let k = normalized.k();

    // Positive-literal register sets per state: x-side and y-side.
    let mut xpos: Vec<BTreeSet<u16>> = Vec::with_capacity(states.len());
    let mut ypos: Vec<BTreeSet<u16>> = Vec::with_capacity(states.len());
    for &q in &states {
        let mut xs = BTreeSet::new();
        let mut ys = BTreeSet::new();
        if let Some(ty) = normalized.state_type(q) {
            for lit in ty.literals() {
                if lit.is_positive_rel() {
                    for t in lit.terms() {
                        match t {
                            Term::X(r) => {
                                xs.insert(r.0);
                            }
                            Term::Y(r) => {
                                ys.insert(r.0);
                            }
                            Term::Const(_) => {}
                        }
                    }
                }
            }
        }
        xpos.push(xs);
        ypos.push(ys);
    }

    // `hit(q, set)`: the tracked flow touches a positive literal at a
    // `q`-position — via an x-slot now, or a y-slot while pushing.
    let hit = |q: StateId, set: &BTreeSet<u16>| -> bool {
        if set.iter().any(|r| xpos[q.idx()].contains(r)) {
            return true;
        }
        let pushed = ctx.push_y_public(q, set);
        pushed.iter().any(|r| ypos[q.idx()].contains(r))
    };

    let trivial_before = {
        let n = states.len();
        Dfa::from_parts(states.clone(), 0, vec![true], vec![vec![0; n]])
    };

    // Component 1: forward tracker from {i}, accepting once a positive
    // literal is hit.
    let comp1_nba = {
        #[derive(Clone, PartialEq, Eq, Hash)]
        enum St {
            Start,
            Track(StateId, BTreeSet<u16>),
            Found,
        }
        let mut nba = Nba::new(states.clone(), 0);
        let mut index: HashMap<St, usize> = HashMap::new();
        let mut work: Vec<St> = Vec::new();
        let intern = |s: St,
                      nba: &mut Nba<StateId>,
                      work: &mut Vec<St>,
                      index: &mut HashMap<St, usize>|
         -> usize {
            if let Some(&id) = index.get(&s) {
                return id;
            }
            let id = nba.add_state();
            index.insert(s.clone(), id);
            work.push(s);
            id
        };
        let start = intern(St::Start, &mut nba, &mut work, &mut index);
        nba.set_init(start);
        let mut done = 0;
        while done < work.len() {
            budget.tick("views.thm24.adom_selector")?;
            let st = work[done].clone();
            let sid = index[&st];
            done += 1;
            match &st {
                St::Found => {
                    nba.set_accepting(sid, true);
                    for &q in &states {
                        let t = intern(St::Found, &mut nba, &mut work, &mut index);
                        nba.add_transition(sid, &q, t);
                    }
                }
                St::Start => {
                    for &q in &states {
                        let s0 = ctx.start_set_public(q, i);
                        let next = if hit(q, &s0) {
                            St::Found
                        } else if s0.is_empty() {
                            continue;
                        } else {
                            St::Track(q, s0)
                        };
                        let t = intern(next, &mut nba, &mut work, &mut index);
                        nba.add_transition(sid, &q, t);
                    }
                }
                St::Track(prev, set) => {
                    for &q in &states {
                        let s2 = ctx.flow_public(*prev, set, q);
                        let next = if hit(q, &s2) {
                            St::Found
                        } else if s2.is_empty() {
                            continue;
                        } else {
                            St::Track(q, s2)
                        };
                        let t = intern(next, &mut nba, &mut work, &mut index);
                        nba.add_transition(sid, &q, t);
                    }
                }
            }
        }
        nba
    };

    let mut components = vec![(trivial_before.clone(), comp1_nba)];

    // Component 2 (per register r): prefix DFA accepting iff `r` is tainted
    // at the position; suffix NBA tracking the {i}-flow and the {r}-flow,
    // accepting when they merge.
    for r in 0..k {
        // Prefix taint DFA: state (q_last or none, raw taint set).
        let before = {
            #[derive(Clone, PartialEq, Eq, Hash)]
            struct St(BTreeSet<u16>);
            let mut index: HashMap<St, usize> = HashMap::new();
            let mut sts: Vec<St> = Vec::new();
            let mut trans: Vec<Vec<usize>> = Vec::new();
            let init = St(BTreeSet::new());
            index.insert(init.clone(), 0);
            sts.push(init);
            let mut done = 0;
            while done < sts.len() {
                budget.tick("views.thm24.adom_selector")?;
                let st = sts[done].clone();
                done += 1;
                let mut row = Vec::with_capacity(states.len());
                for &q in &states {
                    // Arriving taint closed at q, plus q's x-positives.
                    let mut cur = ctx.close_x_public(q, &st.0);
                    cur.extend(ctx.close_x_public(q, &xpos[q.idx()]));
                    let mut next = ctx.push_y_public(q, &cur);
                    next.extend(ypos[q.idx()].iter().copied());
                    let key = St(next);
                    let id = match index.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = sts.len();
                            index.insert(key.clone(), id);
                            sts.push(key);
                            id
                        }
                    };
                    row.push(id);
                }
                trans.push(row);
            }
            let accepting: Vec<bool> = sts.iter().map(|s| s.0.contains(&r)).collect();
            Dfa::from_parts(states.clone(), 0, accepting, trans).minimize()
        };

        // Suffix NBA: double tracker; accept when the two flows merge.
        let from_here = {
            #[derive(Clone, PartialEq, Eq, Hash)]
            enum St {
                Start,
                Track(StateId, BTreeSet<u16>, BTreeSet<u16>),
                Found,
            }
            let mut nba = Nba::new(states.clone(), 0);
            let mut index: HashMap<St, usize> = HashMap::new();
            let mut work: Vec<St> = Vec::new();
            let intern = |s: St,
                          nba: &mut Nba<StateId>,
                          work: &mut Vec<St>,
                          index: &mut HashMap<St, usize>|
             -> usize {
                if let Some(&id) = index.get(&s) {
                    return id;
                }
                let id = nba.add_state();
                index.insert(s.clone(), id);
                work.push(s);
                id
            };
            let start = intern(St::Start, &mut nba, &mut work, &mut index);
            nba.set_init(start);
            let mut done = 0;
            while done < work.len() {
                budget.tick("views.thm24.adom_selector")?;
                let st = work[done].clone();
                let sid = index[&st];
                done += 1;
                match &st {
                    St::Found => {
                        nba.set_accepting(sid, true);
                        for &q in &states {
                            let t = intern(St::Found, &mut nba, &mut work, &mut index);
                            nba.add_transition(sid, &q, t);
                        }
                    }
                    St::Start => {
                        for &q in &states {
                            let s1 = ctx.start_set_public(q, i);
                            let s2 = ctx.start_set_public(q, RegIdx(r));
                            if s1.is_empty() || s2.is_empty() {
                                continue;
                            }
                            let next = if s1.intersection(&s2).next().is_some() {
                                St::Found
                            } else {
                                St::Track(q, s1, s2)
                            };
                            let t = intern(next, &mut nba, &mut work, &mut index);
                            nba.add_transition(sid, &q, t);
                        }
                    }
                    St::Track(prev, a, b) => {
                        for &q in &states {
                            let a2 = ctx.flow_public(*prev, a, q);
                            let b2 = ctx.flow_public(*prev, b, q);
                            if a2.is_empty() || b2.is_empty() {
                                continue;
                            }
                            let next = if a2.intersection(&b2).next().is_some() {
                                St::Found
                            } else {
                                St::Track(q, a2, b2)
                            };
                            let t = intern(next, &mut nba, &mut work, &mut index);
                            nba.add_transition(sid, &q, t);
                        }
                    }
                }
            }
            nba
        };
        components.push((before, from_here));
    }

    Ok(PositionSelector { components })
}

/// Connection endpoint roles for the tuple selector construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ConnState {
    Waiting,
    /// Tracking the value from the first endpoint; fields: previous state
    /// and the register set.
    Tracking,
    Done,
}

/// Builds the marked-word Büchi selector for `ψ^R_{E,F}` with the given
/// visible register tuples. Returns `None` when no transition carries a
/// matching pair of literals (the constraint would be vacuous).
fn tuple_selector(
    normalized: &RegisterAutomaton,
    rel: rega_data::RelSym,
    f_slots: &[usize],
    i_regs: &[RegIdx],
    j_regs: &[RegIdx],
    opts: &Thm24Options,
    budget: &Budget,
) -> Result<Option<Nba<(StateId, u32)>>, CoreError> {
    let ctx = FlowContext::new(normalized)?;
    let states: Vec<StateId> = normalized.states().collect();
    // Flow steps recur constantly across selector states; memoize them.
    let mut flow_cache: HashMap<(StateId, Vec<u16>, StateId), BTreeSet<u16>> = HashMap::new();
    let mut flow = |prev: StateId, set: &BTreeSet<u16>, q: StateId| -> BTreeSet<u16> {
        let key = (prev, set.iter().copied().collect::<Vec<u16>>(), q);
        if let Some(hit) = flow_cache.get(&key) {
            return hit.clone();
        }
        let result = ctx.flow_public(prev, set, q);
        flow_cache.insert(key, result.clone());
        result
    };
    let arity = normalized.schema().arity(rel);
    let l = f_slots.len();
    let e_slots: Vec<usize> = (0..arity).filter(|s| !f_slots.contains(s)).collect();

    // Literal instances per state: negative and positive R-literals with
    // their term vectors (registers; constants unsupported upstream).
    let mut neg_lits: Vec<Vec<Vec<Term>>> = Vec::with_capacity(states.len());
    let mut pos_lits: Vec<Vec<Vec<Term>>> = Vec::with_capacity(states.len());
    for &q in &states {
        let mut negs = Vec::new();
        let mut poss = Vec::new();
        if let Some(ty) = normalized.state_type(q) {
            for lit in ty.literals() {
                if let Literal::Rel {
                    rel: r2,
                    args,
                    positive,
                } = lit
                {
                    if *r2 == rel {
                        if *positive {
                            poss.push(args.clone());
                        } else {
                            negs.push(args.clone());
                        }
                    }
                }
            }
        }
        neg_lits.push(negs);
        pos_lits.push(poss);
    }
    if neg_lits.iter().all(|v| v.is_empty()) || pos_lits.iter().all(|v| v.is_empty()) {
        return Ok(None);
    }

    // Connections: ids 0..|E| connect the n-side and n'-side E-terms;
    // ids |E| + 2t (t-th F slot) connect α_t ↔ n-side term; |E| + 2t + 1
    // connect β_t ↔ n'-side term.
    let n_conns = e_slots.len() + 2 * l;

    // Marked alphabet.
    let mut alphabet: Vec<(StateId, u32)> = Vec::new();
    for &q in &states {
        for mark in 0..(1u32 << (2 * l)) {
            alphabet.push((q, mark));
        }
    }

    /// Per-connection tracking payload: simulated state plus marked regs.
    type Tracker = Option<(StateId, BTreeSet<u16>)>;

    /// Full NBA state.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Sel {
        n_done: bool,
        np_done: bool,
        marks: u32,
        /// Pending y-term events for the next position: (conn, register).
        pending: Vec<(u8, u16)>,
        /// Per connection: state plus tracker data when Tracking.
        conns: Vec<(ConnState, Tracker)>,
        accept: bool,
    }

    let init = Sel {
        n_done: false,
        np_done: false,
        marks: 0,
        pending: Vec::new(),
        conns: vec![(ConnState::Waiting, None); n_conns],
        accept: false,
    };

    let mut nba = Nba::new(alphabet.clone(), 0);
    let mut index: HashMap<Sel, usize> = HashMap::new();
    let mut work: Vec<Sel> = Vec::new();
    let intern = |s: Sel,
                  nba: &mut Nba<(StateId, u32)>,
                  work: &mut Vec<Sel>,
                  index: &mut HashMap<Sel, usize>|
     -> usize {
        if let Some(&id) = index.get(&s) {
            return id;
        }
        let id = nba.add_state();
        index.insert(s.clone(), id);
        work.push(s);
        id
    };
    let start = intern(init, &mut nba, &mut work, &mut index);
    nba.set_init(start);

    let full_marks = (1u32 << (2 * l)) - 1;

    let mut done = 0usize;
    while done < work.len() {
        budget.tick("views.thm24.tuple_selector")?;
        if work.len() > opts.max_selector_states {
            return Err(CoreError::BudgetExceeded(format!(
                "tuple selector exceeded {} states",
                opts.max_selector_states
            )));
        }
        let st = work[done].clone();
        let sid = index[&st];
        done += 1;

        if st.accept {
            nba.set_accepting(sid, true);
            // Sink: loop on unmarked letters only.
            for &q in &states {
                let t = intern(st.clone(), &mut nba, &mut work, &mut index);
                nba.add_transition(sid, &(q, 0), t);
            }
            continue;
        }

        for &q in &states {
            // Events at this position: (conn, register) pairs.
            // 1. Pending y-events from the previous position.
            let base_events: Vec<(u8, u16)> = st.pending.clone();
            // 2. Anchor guesses: none / n here / n' here / both here —
            // independent of the mark, so computed once per state letter.
            // Enumerate literal choices for the guessed anchors.
            // (n guessed here, n' guessed here, n-events, n'-events)
            type Variant = (bool, bool, Vec<(u8, u16)>, Vec<(u8, u16)>);
            let mut variants: Vec<Variant> = vec![(false, false, Vec::new(), Vec::new())];
            {
                if !st.n_done {
                    let mut more = Vec::new();
                    for lit in &neg_lits[q.idx()] {
                        // events from the n-side terms.
                        let mut evs = Vec::new();
                        let mut pend = Vec::new();
                        let mut good = true;
                        for (ci, &slot) in e_slots.iter().enumerate() {
                            match lit[slot] {
                                Term::X(r2) => evs.push((ci as u8, r2.0)),
                                Term::Y(r2) => pend.push((ci as u8, r2.0)),
                                Term::Const(_) => good = false,
                            }
                        }
                        for (t, &slot) in f_slots.iter().enumerate() {
                            let ci = (e_slots.len() + 2 * t) as u8;
                            match lit[slot] {
                                Term::X(r2) => evs.push((ci, r2.0)),
                                Term::Y(r2) => pend.push((ci, r2.0)),
                                Term::Const(_) => good = false,
                            }
                        }
                        if good {
                            more.push((true, false, evs, pend));
                        }
                    }
                    let base = variants.clone();
                    for (n_here, _, evs, pend) in more {
                        for (_, np0, e0, p0) in &base {
                            let mut e = e0.clone();
                            e.extend(evs.iter().copied());
                            let mut p = p0.clone();
                            p.extend(pend.iter().copied());
                            variants.push((n_here, *np0, e, p));
                        }
                    }
                }
                if !st.np_done {
                    let mut more = Vec::new();
                    for lit in &pos_lits[q.idx()] {
                        let mut evs = Vec::new();
                        let mut pend = Vec::new();
                        let mut good = true;
                        for (ci, &slot) in e_slots.iter().enumerate() {
                            match lit[slot] {
                                Term::X(r2) => evs.push((ci as u8, r2.0)),
                                Term::Y(r2) => pend.push((ci as u8, r2.0)),
                                Term::Const(_) => good = false,
                            }
                        }
                        for (t, &slot) in f_slots.iter().enumerate() {
                            let ci = (e_slots.len() + 2 * t + 1) as u8;
                            match lit[slot] {
                                Term::X(r2) => evs.push((ci, r2.0)),
                                Term::Y(r2) => pend.push((ci, r2.0)),
                                Term::Const(_) => good = false,
                            }
                        }
                        if good {
                            more.push((false, true, evs, pend));
                        }
                    }
                    let base = variants.clone();
                    for (_, np_here, evs, pend) in more {
                        for (n0, _, e0, p0) in &base {
                            let mut e = e0.clone();
                            e.extend(evs.iter().copied());
                            let mut p = p0.clone();
                            p.extend(pend.iter().copied());
                            variants.push((*n0, np_here, e, p));
                        }
                    }
                }
            }

            // 3. Mark-driven events, per mark value.
            for mark in 0..(1u32 << (2 * l)) {
                if mark & st.marks != 0 {
                    continue; // a mark may appear only once
                }
                let mut events = base_events.clone();
                for t in 0..l {
                    if mark & (1 << t) != 0 {
                        events.push(((e_slots.len() + 2 * t) as u8, i_regs[t].0));
                    }
                    if mark & (1 << (l + t)) != 0 {
                        events.push(((e_slots.len() + 2 * t + 1) as u8, j_regs[t].0));
                    }
                }

                for (n_here, np_here, anchor_events, anchor_pending) in variants.clone() {
                    // Advance all trackers by q, then fire events.
                    let mut conns = st.conns.clone();
                    let mut reject = false;
                    for c in conns.iter_mut() {
                        if c.0 == ConnState::Tracking {
                            let (prev, set) = c.1.clone().expect("tracking has data");
                            let s2 = flow(prev, &set, q);
                            if s2.is_empty() {
                                reject = true;
                                break;
                            }
                            c.1 = Some((q, s2));
                        }
                    }
                    if reject {
                        continue;
                    }
                    let mut all_events = events.clone();
                    all_events.extend(anchor_events.iter().copied());
                    // Group events per connection (two endpoints may fire
                    // at the same position).
                    let mut per_conn: HashMap<u8, Vec<u16>> = HashMap::new();
                    for &(c, r2) in &all_events {
                        per_conn.entry(c).or_default().push(r2);
                    }
                    for (&c, regs2) in &per_conn {
                        let conn = &mut conns[c as usize];
                        match (conn.0, regs2.len()) {
                            (ConnState::Waiting, 1) => {
                                let s0 = ctx.close_x_public(q, &BTreeSet::from([regs2[0]]));
                                if s0.is_empty() {
                                    reject = true;
                                    break;
                                }
                                *conn = (ConnState::Tracking, Some((q, s0)));
                            }
                            (ConnState::Waiting, 2) => {
                                // Both endpoints now: connected iff x-equal.
                                let s0 = ctx.close_x_public(q, &BTreeSet::from([regs2[0]]));
                                if s0.contains(&regs2[1]) {
                                    *conn = (ConnState::Done, None);
                                } else {
                                    reject = true;
                                    break;
                                }
                            }
                            (ConnState::Tracking, 1) => {
                                let (_, set) = conn.1.as_ref().expect("tracking");
                                if set.contains(&regs2[0]) {
                                    *conn = (ConnState::Done, None);
                                } else {
                                    reject = true;
                                    break;
                                }
                            }
                            _ => {
                                // A third endpoint event or an event on a
                                // completed connection: not this pattern.
                                reject = true;
                                break;
                            }
                        }
                    }
                    if reject {
                        continue;
                    }
                    let mut pending = anchor_pending.clone();
                    pending.sort();
                    let n_done = st.n_done || n_here;
                    let np_done = st.np_done || np_here;
                    let marks = st.marks | mark;
                    let complete = n_done
                        && np_done
                        && marks == full_marks
                        && pending.is_empty()
                        && conns.iter().all(|c| c.0 == ConnState::Done);
                    let next = Sel {
                        n_done,
                        np_done,
                        marks,
                        pending,
                        conns: if complete {
                            vec![(ConnState::Done, None); n_conns]
                        } else {
                            conns
                        },
                        accept: complete,
                    };
                    let t = intern(next, &mut nba, &mut work, &mut index);
                    nba.add_transition(sid, &(q, mark), t);
                }
            }
        }
    }
    Ok(Some(nba))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::simulate::{self, SearchLimits};
    use rega_data::{Database, Schema, Value};

    fn limits() -> SearchLimits {
        SearchLimits {
            max_nodes: 4_000_000,
            max_runs: 1_000_000,
        }
    }

    #[test]
    fn example23_construction_shape() {
        let ra = paper::example23();
        let proj = project_hiding_database(&ra, 1, &Thm24Options::default()).unwrap();
        assert_eq!(proj.view.ext().k(), 1);
        assert!(proj.view.ext().ra().has_no_database());
        assert_eq!(proj.view.finiteness_constraints().len(), 1);
        assert!(
            !proj.view.tuple_inequalities().is_empty(),
            "E/U clashes must generate tuple constraints"
        );
    }

    /// The view's traces must include every Π₁ trace of the original over a
    /// concrete database (soundness direction of Theorem 24).
    #[test]
    fn example23_view_covers_concrete_database_traces() {
        let ra = paper::example23();
        let schema = ra.schema().clone();
        let e = schema.relation("E").unwrap();
        let u = schema.relation("U").unwrap();
        let mut db = Database::new(schema);
        let (c, d0, d1) = (Value(100), Value(0), Value(1));
        db.insert(e, vec![c, d0]).unwrap();
        db.insert(u, vec![d0]).unwrap();
        db.insert(u, vec![d1]).unwrap();
        let original = rega_core::ExtendedAutomaton::new(ra.clone());
        let pool = vec![c, d0, d1];
        // Settled traces: the view's equality completion propagates one step
        // of lookahead (e.g. consecutive visible values must differ because
        // E(c,d) and ¬E(c,d) clash), so the dangling last prefix position
        // is excluded from the comparison.
        let want = simulate::projected_settled_traces(&original, &db, 4, 1, &pool, limits());
        assert!(!want.is_empty());

        let proj = project_hiding_database(&ra, 1, &Thm24Options::default()).unwrap();
        let empty_db = Database::new(Schema::empty());
        let got =
            simulate::projected_settled_traces(proj.view.ext(), &empty_db, 4, 1, &pool, limits());
        for trace in &want {
            assert!(
                got.contains(trace),
                "view must allow trace {trace:?} (it is realizable over a database)"
            );
        }
    }

    /// The view must force consecutive visible values apart: `E(c, d)` at
    /// one position and `¬E(c, d′)` at the next, with the hidden `c`
    /// constant, clash when `d = d′`. This is lookahead the equality
    /// completion internalizes.
    #[test]
    fn example23_view_forces_alternation() {
        let ra = paper::example23();
        let proj = project_hiding_database(&ra, 1, &Thm24Options::default()).unwrap();
        let ra2 = proj.view.ext().ra();
        for t in ra2.transition_ids() {
            let ty = &ra2.transition(t).ty;
            assert!(
                ty.contains(&rega_data::Literal::neq(Term::x(0), Term::y(0))),
                "every surviving transition must force x1 ≠ y1"
            );
        }
    }

    /// The tuple constraints must reject the clash pattern: with the binary
    /// `E`, a value cannot appear at both an "edge" (p) and "non-edge" (q)
    /// position when the hidden register is forced constant (register 2
    /// never changes), since `E(c, d)` and `¬E(c, d)` cannot both hold.
    #[test]
    fn example23_view_rejects_clash() {
        let ra = paper::example23();
        let proj = project_hiding_database(&ra, 1, &Thm24Options::default()).unwrap();
        // A 6-cycle p q p q p q with values 7 8 9 7 10 11: adjacent values
        // differ (so the extended layer accepts), but the value 7 appears
        // both at an even (E-required) position and an odd (E-forbidden)
        // one — the hidden database would need both `E(c,7)` and `¬E(c,7)`.
        // The tuple-inequality layer must reject.
        let view = &proj.view;
        let ra2 = view.ext().ra();
        let vals = [7u64, 8, 9, 7, 10, 11].map(Value);
        let empty_db = Database::new(Schema::empty());
        let mut exercised = false;
        // Follow any wired 6-cycle from an initial state.
        'outer: for p0 in ra2.states().filter(|&s| ra2.is_initial(s)) {
            let mut paths: Vec<Vec<rega_core::TransId>> =
                ra2.outgoing(p0).iter().map(|&t| vec![t]).collect();
            for _ in 1..6 {
                let mut next = Vec::new();
                for path in paths {
                    let cur = ra2.transition(*path.last().unwrap()).to;
                    for &t in ra2.outgoing(cur) {
                        let mut p2 = path.clone();
                        p2.push(t);
                        next.push(p2);
                    }
                }
                paths = next;
            }
            for path in paths {
                if ra2.transition(*path.last().unwrap()).to != p0 {
                    continue;
                }
                let mut configs = vec![rega_core::run::Config::new(p0, vec![vals[0]])];
                for (idx, &t) in path.iter().take(5).enumerate() {
                    configs.push(rega_core::run::Config::new(
                        ra2.transition(t).to,
                        vec![vals[idx + 1]],
                    ));
                }
                let run = rega_core::run::LassoRun::new(configs, path.clone(), 0);
                if view.ext().check_lasso_run(&empty_db, &run).is_ok() {
                    exercised = true;
                    let verdict = view.check_lasso_run(&empty_db, &run, Some(12));
                    assert!(
                        verdict.is_err(),
                        "value 7 at both an edge and a non-edge position must clash"
                    );
                    break 'outer;
                }
            }
        }
        assert!(
            exercised,
            "need at least one candidate run to exercise the clash"
        );
    }

    /// Differential test of the adom position selector against the class
    /// structure oracle: on sampled symbolic traces of Example 23's
    /// normalized automaton, `is_selected(h)` must match "the class of
    /// `(h, 0)` is an active-domain class".
    #[test]
    fn adom_selector_matches_class_structure() {
        use rega_analysis::classes::ClassStructure;
        use rega_core::transform::{complete_for_atoms, state_driven};
        let ra = paper::example23();
        let completed = complete_for_atoms(&ra, &equality_atoms(ra.k())).unwrap();
        let normalized = state_driven(&completed).automaton;
        let selector = adom_selector(&normalized, RegIdx(0), &Budget::unlimited()).unwrap();

        let ext = ExtendedAutomaton::new(normalized.clone());
        let nba = rega_core::symbolic::scontrol_nba(&normalized).unwrap();
        let lassos = rega_automata::emptiness::enumerate_accepting_lassos(&nba, 6, 6);
        assert!(!lassos.is_empty());
        let mut positives = 0usize;
        for control in &lassos {
            let horizon = control.prefix_len() + 6 * control.period();
            let s = ClassStructure::build(&ext, control, horizon).unwrap();
            if !s.consistent {
                continue;
            }
            let states = control.map(|&t| normalized.transition(t).from);
            // Stay away from the horizon boundary (classes there may still
            // grow and gain adom-ness from truncated futures).
            for h in 0..horizon.saturating_sub(2 * control.period()) {
                let oracle = s.classes[s.class_of(h, 0)].adom;
                let got = selector.is_selected(&states, h);
                assert_eq!(
                    got, oracle,
                    "trace {control}, position {h}: selector vs oracle"
                );
                if oracle {
                    positives += 1;
                }
            }
        }
        assert!(positives > 0, "the test must exercise adom positions");
    }

    #[test]
    fn constants_unsupported() {
        let schema = Schema::with(&[("R", 1)], &["c"]);
        let mut ra = RegisterAutomaton::new(1, schema);
        let p = ra.add_state("p");
        ra.set_initial(p);
        ra.set_accepting(p);
        ra.add_transition(p, rega_data::SigmaType::empty(1), p)
            .unwrap();
        assert!(matches!(
            project_hiding_database(&ra, 1, &Thm24Options::default()),
            Err(CoreError::UnsupportedProjection(_))
        ));
    }
}

#[cfg(test)]
mod ternary_tests {
    use super::*;
    use rega_core::paper;
    use rega_core::run::{Config, LassoRun};
    use rega_data::{Database, Schema, Value};

    /// The ternary Example 23: the database-hiding view must generate
    /// arity-2 tuple constraints, and reject a run in which the pair of
    /// consecutive visible values at an even position recurs at an odd one.
    #[test]
    fn ternary_example23_pair_clash() {
        let ra = paper::example23_ternary();
        let proj = project_hiding_database(&ra, 1, &Thm24Options::default()).unwrap();
        assert!(
            proj.view
                .tuple_inequalities()
                .iter()
                .any(|c| c.arity() == 2),
            "ternary E must induce arity-2 tuple constraints"
        );

        // Candidate: 8-cycle where the pair (7, 8) appears starting at an
        // even position and again at an odd one. Adjacent values may repeat
        // (the binary alternation argument does not apply here), but the
        // pair clash must be caught by the arity-2 constraint.
        let view = &proj.view;
        let ra2 = view.ext().ra();
        let empty_db = Database::new(Schema::empty());
        let vals = [7u64, 8, 11, 7, 8, 12, 13, 14].map(Value);
        let mut exercised = false;
        'outer: for p0 in ra2.states().filter(|&s| ra2.is_initial(s)) {
            let mut paths: Vec<Vec<rega_core::TransId>> =
                ra2.outgoing(p0).iter().map(|&t| vec![t]).collect();
            for _ in 1..8 {
                let mut next = Vec::new();
                for path in paths {
                    let cur = ra2.transition(*path.last().unwrap()).to;
                    for &t in ra2.outgoing(cur) {
                        let mut p2 = path.clone();
                        p2.push(t);
                        next.push(p2);
                    }
                }
                paths = next;
            }
            for path in paths {
                if ra2.transition(*path.last().unwrap()).to != p0 {
                    continue;
                }
                let mut configs = vec![Config::new(p0, vec![vals[0]])];
                for (idx, &t) in path.iter().take(7).enumerate() {
                    configs.push(Config::new(ra2.transition(t).to, vec![vals[idx + 1]]));
                }
                let run = LassoRun::new(configs, path.clone(), 0);
                if view.ext().check_lasso_run(&empty_db, &run).is_ok() {
                    exercised = true;
                    let verdict = view.check_lasso_run(&empty_db, &run, Some(16));
                    assert!(
                        verdict.is_err(),
                        "the pair (7,8) at even and odd parity must clash"
                    );
                    break 'outer;
                }
            }
        }
        assert!(
            exercised,
            "need a candidate run passing the plain constraints"
        );
    }
}
