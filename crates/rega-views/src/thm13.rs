//! Theorem 13: closure of extended register automata under projection
//! (no database).
//!
//! Pipeline, following the paper's proof structure:
//!
//! 1. **Proposition 6** eliminates the global equality constraints, adding
//!    registers. All equalities are now *local*, so the derived equivalence
//!    `∼_w` is forward-trackable (each class spans a contiguous interval of
//!    positions) and the Lemma 21 subset automata characterize it.
//! 2. The automaton is completed and made state-driven (the paper's
//!    standing assumptions; completeness confines every derived inequality
//!    witness to a common live position inside the factor).
//! 3. Visible-register types are restricted; the Lemma 21 automata
//!    `e=ᵢⱼ` / `e≠ᵢⱼ` over the kept registers become the constraints of the
//!    view; the remaining global inequality constraints are lifted.
//!
//! ## Supported fragment
//!
//! Global *inequality* constraints whose registers are projected away are
//! not supported: the derived inequalities they induce between visible
//! positions can require witnesses outside the factor, which only the
//! paper's full Lemma 14 refinement (annotating states with global flow
//! information) can internalize. The construction returns
//! [`CoreError::UnsupportedProjection`] in that case. Equality constraints
//! are unrestricted (Proposition 6 removes them first), which in particular
//! covers every projection of a plain register automaton — the case the
//! paper's Theorem 19 revolves around.

use crate::lemma21;
use crate::prop6::eliminate_global_equalities;
use rega_core::extended::ConstraintKind;
use rega_core::transform::{complete_governed, state_driven_governed};
use rega_core::{Budget, CoreError, ExtendedAutomaton, RegisterAutomaton, StateId};
use rega_data::{RegIdx, SatCache};

/// The result of projecting an extended automaton.
#[derive(Clone, Debug)]
pub struct ExtendedProjection {
    /// The view: an extended automaton with `m` registers.
    pub view: ExtendedAutomaton,
    /// Registers of the intermediate (equality-eliminated) automaton; the
    /// hidden ones comprise `m..intermediate_k`.
    pub intermediate_k: u16,
}

/// Projects an extended automaton without a database onto its first `m`
/// registers (Theorem 13; see the module docs for the supported fragment).
pub fn project_extended(ext: &ExtendedAutomaton, m: u16) -> Result<ExtendedProjection, CoreError> {
    let cache = SatCache::new(ext.ra().schema().clone());
    project_extended_cached(ext, m, &cache)
}

/// [`project_extended`] sharing a caller-supplied σ-type cache: the
/// completion, state-driven wiring, joint-satisfiability pruning and
/// register restriction below all hit the same memo tables.
pub fn project_extended_cached(
    ext: &ExtendedAutomaton,
    m: u16,
    cache: &SatCache,
) -> Result<ExtendedProjection, CoreError> {
    project_extended_governed(ext, m, cache, &Budget::unlimited())
}

/// [`project_extended_cached`] under a [`Budget`]: the (exponential)
/// completion after Proposition 6, the state-driven wiring, the
/// per-transition restriction loop and the `m²` Lemma 21 builds all check
/// the deadline/ceilings at loop granularity.
pub fn project_extended_governed(
    ext: &ExtendedAutomaton,
    m: u16,
    cache: &SatCache,
    budget: &Budget,
) -> Result<ExtendedProjection, CoreError> {
    if !ext.ra().has_no_database() {
        return Err(CoreError::SchemaNotEmpty);
    }
    if m > ext.k() {
        return Err(CoreError::UnsupportedProjection(format!(
            "cannot keep {m} registers: the automaton has only {}",
            ext.k()
        )));
    }
    let _span = rega_obs::span!("views.thm13", keep = m, states = ext.ra().num_states());

    // 1. Remove global equalities.
    let eliminated = eliminate_global_equalities(ext)?;
    let inter = &eliminated.automaton;
    let intermediate_k = inter.k();

    // Check the supported fragment: remaining (inequality) constraints must
    // involve only visible registers.
    for c in inter.constraints() {
        if c.i.0 >= m || c.j.0 >= m {
            return Err(CoreError::UnsupportedProjection(format!(
                "global inequality constraint on hidden register {} or {} \
                 (visible registers are 1..={m})",
                c.i.0 + 1,
                c.j.0 + 1,
            )));
        }
    }

    // 2. Normalize. (Completion is exponential in the register count; the
    // k added by Proposition 6 is the price of generality here.)
    let sd = state_driven_governed(
        &complete_governed(inter.ra(), cache, budget)?,
        cache,
        budget,
    )?;
    let normalized = sd.automaton;
    let norm_map: Vec<StateId> = sd.state_map; // normalized -> intermediate states

    // 3. Assemble the view.
    let mut view = RegisterAutomaton::new(m, ext.ra().schema().clone());
    for s in normalized.states() {
        let s2 = view.add_state(normalized.state_name(s));
        debug_assert_eq!(s, s2);
        if normalized.is_initial(s) {
            view.set_initial(s);
        }
        if normalized.is_accepting(s) {
            view.set_accepting(s);
        }
    }
    for t in normalized.transition_ids() {
        budget.tick("views.thm13.restrict")?;
        let tr = normalized.transition(t);
        // Drop successions whose types conflict on *hidden* registers: the
        // restriction would hide the conflict and admit traces the original
        // automaton cannot produce. (The state-driven construction wires
        // every (q, δ) to every (q', δ'); only jointly satisfiable pairs
        // occur in real runs.)
        if let Some(next_ty) = normalized.state_type(tr.to) {
            if !cache.jointly_satisfiable(&tr.ty, next_ty) {
                continue;
            }
        }
        let restricted = cache.restrict_registers(&tr.ty, m)?;
        let dup = view
            .outgoing(tr.from)
            .iter()
            .any(|&u| view.transition(u).to == tr.to && view.transition(u).ty == *restricted);
        if !dup {
            view.add_transition(tr.from, (*restricted).clone(), tr.to)?;
        }
    }
    let mut view = ExtendedAutomaton::new(view);
    for i in 0..m {
        for j in 0..m {
            budget.tick("views.thm13.lemma21")?;
            let eq = lemma21::eq_dfa(&normalized, RegIdx(i), RegIdx(j))?;
            view.add_constraint_dfa(ConstraintKind::Equal, RegIdx(i), RegIdx(j), eq)?;
            let neq = lemma21::neq_dfa(&normalized, RegIdx(i), RegIdx(j))?;
            view.add_constraint_dfa(ConstraintKind::NotEqual, RegIdx(i), RegIdx(j), neq)?;
        }
    }
    // Lift the surviving inequality constraints from the intermediate
    // automaton through the normalization map.
    for c in inter.constraints() {
        view.add_lifted_constraint(c, |s| norm_map[s.idx()])?;
    }
    rega_obs::event!(
        "views.thm13_built",
        view_states = view.ra().num_states(),
        view_transitions = view.ra().num_transitions(),
        intermediate_k = intermediate_k,
        types_interned = cache.stats().distinct_types
    );
    Ok(ExtendedProjection {
        view,
        intermediate_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_core::paper;
    use rega_core::simulate::{self, SearchLimits};
    use rega_data::{Database, Schema, Value};

    fn limits() -> SearchLimits {
        SearchLimits {
            max_nodes: 4_000_000,
            max_runs: 1_000_000,
        }
    }

    fn assert_faithful(ext: &ExtendedAutomaton, m: u16, len: usize, pool: &[Value]) {
        let db = Database::new(Schema::empty());
        let proj = project_extended(ext, m).unwrap();
        let want = simulate::projected_settled_traces(ext, &db, len, m as usize, pool, limits());
        let got =
            simulate::projected_settled_traces(&proj.view, &db, len, m as usize, pool, limits());
        assert_eq!(want, got, "length {len}");
    }

    #[test]
    fn example5_projects_to_itself_semantically() {
        // Projecting Example 5 (1 register, one equality constraint) onto
        // its single register: the view must have the same traces.
        let ext = paper::example5();
        for len in 1..=4 {
            assert_faithful(&ext, 1, len, &[Value(1), Value(2)]);
        }
    }

    #[test]
    fn hidden_inequality_constraint_rejected() {
        // Example 7's constraint is on register 1; projecting it away (m=0)
        // is outside the supported fragment.
        let ext = paper::example7();
        assert!(matches!(
            project_extended(&ext, 0),
            Err(CoreError::UnsupportedProjection(_))
        ));
    }

    #[test]
    fn visible_inequality_constraint_lifted() {
        // Example 7 projected onto its (only) register: the all-distinct
        // constraint survives the round trip.
        let ext = paper::example7();
        let proj = project_extended(&ext, 1).unwrap();
        let db = Database::new(Schema::empty());
        let pool = vec![Value(1), Value(2), Value(3)];
        let runs = simulate::enumerate_prefixes(&proj.view, &db, 3, &pool, limits());
        assert!(!runs.is_empty());
        for run in &runs {
            let mut vals: Vec<Value> = run.configs.iter().map(|c| c.regs[0]).collect();
            vals.sort();
            vals.dedup();
            assert_eq!(vals.len(), run.configs.len(), "values pairwise distinct");
        }
    }

    #[test]
    fn equality_through_hidden_register() {
        // Hide register 2 of Example 1 but with an *extended* input: add a
        // (redundant) equality constraint and check the pipeline end to end.
        let (ra, _) = paper::example1();
        let mut ext = ExtendedAutomaton::new(ra);
        // Redundant constraint: single-position factors with i = j = 2 are
        // trivially equal; exercises Prop 6 plumbing without changing the
        // semantics.
        ext.add_constraint_str(ConstraintKind::Equal, RegIdx(1), RegIdx(1), "q1 | q2")
            .unwrap();
        for len in 1..=3 {
            assert_faithful(&ext, 1, len, &[Value(1), Value(2)]);
        }
    }

    #[test]
    fn database_input_rejected() {
        let ext = paper::example8();
        assert!(matches!(
            project_extended(&ext, 1),
            Err(CoreError::SchemaNotEmpty)
        ));
    }
}
