//! Profiling helper: times the Theorem 24 construction on the ternary
//! Example 23 and prints the selector sizes.

fn main() {
    let t0 = std::time::Instant::now();
    let ra = rega_core::paper::example23_ternary();
    let proj = rega_views::thm24::project_hiding_database(&ra, 1, &Default::default()).unwrap();
    println!("construction: {:?}", t0.elapsed());
    for (i, c) in proj.view.tuple_inequalities().iter().enumerate() {
        println!(
            "  constraint {i}: arity {}, selector {} states",
            c.arity(),
            c.selector.num_states()
        );
    }
}
