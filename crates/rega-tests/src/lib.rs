//! Integration tests live in /tests at the repository root.
