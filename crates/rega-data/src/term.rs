//! Terms appearing in σ-types: register variables and constants.
//!
//! A transition type of a `k`-register automaton speaks about two `k`-tuples
//! of variables: `x₁ … x_k` (register values *before* the transition) and
//! `y₁ … y_k` (register values *after*), plus the constant symbols of the
//! schema.

use crate::schema::ConstSym;
use std::fmt;

/// A register index `i ∈ [k]`, 0-based in code (the paper is 1-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegIdx(pub u16);

impl RegIdx {
    /// The 0-based index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1) // display 1-based, like the paper
    }
}

/// A term of a σ-type: a pre-register variable `x_i`, a post-register
/// variable `y_i`, or a constant symbol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// `x_i` — the value of register `i` before the transition.
    X(RegIdx),
    /// `y_i` — the value of register `i` after the transition.
    Y(RegIdx),
    /// A constant symbol of the schema.
    Const(ConstSym),
}

impl Term {
    /// Convenience constructor for `x_i` with a 0-based index.
    pub fn x(i: u16) -> Term {
        Term::X(RegIdx(i))
    }

    /// Convenience constructor for `y_i` with a 0-based index.
    pub fn y(i: u16) -> Term {
        Term::Y(RegIdx(i))
    }

    /// Convenience constructor for the `c`-th constant.
    pub fn cst(c: u32) -> Term {
        Term::Const(ConstSym(c))
    }

    /// Is this a pre-register variable?
    pub fn is_x(&self) -> bool {
        matches!(self, Term::X(_))
    }

    /// Is this a post-register variable?
    pub fn is_y(&self) -> bool {
        matches!(self, Term::Y(_))
    }

    /// Is this a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Renames `y_i → x_i`, leaving other terms unchanged. This is the
    /// isomorphism used when comparing `δ|ȳ` with `δ′|x̄` in the definition
    /// of symbolic control traces.
    pub fn y_to_x(self) -> Term {
        match self {
            Term::Y(i) => Term::X(i),
            t => t,
        }
    }

    /// Renames `x_i → y_i`, leaving other terms unchanged.
    pub fn x_to_y(self) -> Term {
        match self {
            Term::X(i) => Term::Y(i),
            t => t,
        }
    }

    /// The register index if this is a register variable.
    pub fn register(&self) -> Option<RegIdx> {
        match self {
            Term::X(i) | Term::Y(i) => Some(*i),
            Term::Const(_) => None,
        }
    }

    /// Remaps the register index through `f` (used when adding/removing
    /// registers in automaton constructions); constants are unchanged.
    pub fn map_register(self, f: impl Fn(RegIdx) -> RegIdx) -> Term {
        match self {
            Term::X(i) => Term::X(f(i)),
            Term::Y(i) => Term::Y(f(i)),
            c => c,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::X(i) => write!(f, "x{i}"),
            Term::Y(i) => write!(f, "y{i}"),
            Term::Const(c) => write!(f, "c{}", c.0 + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_y_to_x() {
        assert_eq!(Term::y(3).y_to_x(), Term::x(3));
        assert_eq!(Term::x(3).y_to_x(), Term::x(3));
        assert_eq!(Term::cst(0).y_to_x(), Term::cst(0));
    }

    #[test]
    fn rename_x_to_y() {
        assert_eq!(Term::x(1).x_to_y(), Term::y(1));
        assert_eq!(Term::y(1).x_to_y(), Term::y(1));
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(Term::x(0).to_string(), "x1");
        assert_eq!(Term::y(1).to_string(), "y2");
    }

    #[test]
    fn register_accessor() {
        assert_eq!(Term::x(2).register(), Some(RegIdx(2)));
        assert_eq!(Term::cst(0).register(), None);
    }

    #[test]
    fn map_register_shifts() {
        let t = Term::y(1).map_register(|r| RegIdx(r.0 + 5));
        assert_eq!(t, Term::y(6));
    }
}
