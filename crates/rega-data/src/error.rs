//! Error types for the data substrate.

use crate::govern::GovernError;
use std::fmt;

/// Errors produced when constructing or validating schemas, databases, types
/// and formulas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// A relation symbol was used that is not declared in the schema.
    UnknownRelation(String),
    /// A constant symbol was used that is not declared in the schema.
    UnknownConstant(String),
    /// A relation was used with the wrong number of arguments.
    ArityMismatch {
        /// Name of the relation.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A relation or constant was declared twice.
    DuplicateSymbol(String),
    /// A term refers to a register index `>= k`.
    RegisterOutOfRange {
        /// The offending register index.
        index: u16,
        /// The number of registers `k`.
        k: u16,
    },
    /// The formula or type is not satisfiable (used where satisfiability is
    /// required, e.g. when constructing a transition type).
    Unsatisfiable,
    /// A completion or evaluation step needed a fact that the type does not
    /// determine (the type is not complete enough for the operation).
    Undetermined(String),
    /// A governed operation hit its resource budget (deadline, node or type
    /// ceiling, or cancellation). Never memoized — the same input may
    /// succeed under a larger budget.
    Govern(GovernError),
}

impl From<GovernError> for DataError {
    fn from(e: GovernError) -> DataError {
        DataError::Govern(e)
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownRelation(name) => write!(f, "unknown relation symbol `{name}`"),
            DataError::UnknownConstant(name) => write!(f, "unknown constant symbol `{name}`"),
            DataError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but {got} arguments were given"
            ),
            DataError::DuplicateSymbol(name) => write!(f, "symbol `{name}` declared twice"),
            DataError::RegisterOutOfRange { index, k } => {
                write!(f, "register index {index} out of range (k = {k})")
            }
            DataError::Unsatisfiable => write!(f, "type is unsatisfiable"),
            DataError::Undetermined(what) => {
                write!(f, "type does not determine {what}")
            }
            DataError::Govern(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for DataError {}
