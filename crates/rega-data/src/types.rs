//! σ-types: quantifier-free conjunctive formulas over register variables.
//!
//! A *type* (Section 2) is a satisfiable conjunction of literals over the
//! variables `x̄ ∪ ȳ` and the constants of the schema. Types label the
//! transitions of register automata and specify how registers may change.
//!
//! This module provides:
//! * satisfiability checking ([`SigmaType::analyze`]),
//! * logical saturation (closure under equality reasoning),
//! * restriction to sub-tuples of the variables (`δ|m`, `π₁(δ)`, `δ|ȳ`),
//! * the compatibility test between consecutive types used by symbolic
//!   control traces (`δ_n|ȳ ≅ δ_{n+1}|x̄`),
//! * completeness testing and enumeration of complete extensions
//!   (Example 2's completion construction), and
//! * evaluation against a concrete database and register tuples.

use crate::database::Database;
use crate::error::DataError;
use crate::govern::Budget;
use crate::literal::Literal;
use crate::schema::{ConstSym, RelSym, Schema};
use crate::term::Term;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A σ-type: a conjunction of [`Literal`]s over `x̄ ∪ ȳ ∪ c̄` for a
/// `k`-register automaton. The literal set is kept canonical (deduplicated,
/// ordered), so equal types compare equal structurally.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SigmaType {
    k: u16,
    literals: BTreeSet<Literal>,
}

impl SigmaType {
    /// The empty (always-true) type over `k` registers.
    pub fn empty(k: u16) -> Self {
        SigmaType {
            k,
            literals: BTreeSet::new(),
        }
    }

    /// A type from a list of literals.
    pub fn new(k: u16, literals: impl IntoIterator<Item = Literal>) -> Self {
        SigmaType {
            k,
            literals: literals.into_iter().collect(),
        }
    }

    /// The number of registers `k` this type speaks about.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The literals of the type.
    pub fn literals(&self) -> impl Iterator<Item = &Literal> {
        self.literals.iter()
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether the type has no literals (always true).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether the literal is (syntactically) present.
    pub fn contains(&self, lit: &Literal) -> bool {
        self.literals.contains(lit)
    }

    /// Adds a literal.
    pub fn add(&mut self, lit: Literal) {
        self.literals.insert(lit);
    }

    /// Returns this type extended with a literal.
    pub fn with(&self, lit: Literal) -> SigmaType {
        let mut t = self.clone();
        t.add(lit);
        t
    }

    /// Conjunction of two types over the same `k`.
    pub fn conjoin(&self, other: &SigmaType) -> SigmaType {
        debug_assert_eq!(self.k, other.k);
        let mut lits = self.literals.clone();
        lits.extend(other.literals.iter().cloned());
        SigmaType {
            k: self.k,
            literals: lits,
        }
    }

    /// Validates that all terms are within range for `k` registers and the
    /// schema's symbols, and that relation arities match.
    pub fn validate(&self, schema: &Schema) -> Result<(), DataError> {
        for lit in &self.literals {
            if let Literal::Rel { rel, args, .. } = lit {
                if rel.0 as usize >= schema.num_relations() {
                    return Err(DataError::UnknownRelation(format!("R{}", rel.0)));
                }
                schema.check_arity(*rel, args.len())?;
            }
            for t in lit.terms() {
                match t {
                    Term::X(i) | Term::Y(i) => {
                        if i.0 >= self.k {
                            return Err(DataError::RegisterOutOfRange {
                                index: i.0,
                                k: self.k,
                            });
                        }
                    }
                    Term::Const(c) => {
                        if c.0 as usize >= schema.num_constants() {
                            return Err(DataError::UnknownConstant(format!("c{}", c.0)));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The term universe of this type: `x₁…x_k, y₁…y_k` and the constants.
    pub fn universe(&self, schema: &Schema) -> Vec<Term> {
        let mut terms = Vec::with_capacity(2 * self.k as usize + schema.num_constants());
        for i in 0..self.k {
            terms.push(Term::x(i));
        }
        for i in 0..self.k {
            terms.push(Term::y(i));
        }
        for c in 0..schema.num_constants() as u32 {
            terms.push(Term::Const(ConstSym(c)));
        }
        terms
    }

    /// Analyzes the type: computes equality classes, class-level
    /// inequalities and relational facts, and checks satisfiability.
    pub fn analyze(&self, schema: &Schema) -> Result<TypeAnalysis, DataError> {
        TypeAnalysis::build(self, schema)
    }

    /// Whether the type is satisfiable over the given schema.
    ///
    /// Satisfiability of a conjunction of (in)equality and relational
    /// literals over an infinite domain reduces to: no equality class is
    /// related to itself by `≠`, and no relational atom is forced both
    /// positive and negative (up to the equalities).
    pub fn is_satisfiable(&self, schema: &Schema) -> bool {
        self.analyze(schema).is_ok()
    }

    /// Saturates the type: adds every literal *implied* by the type over its
    /// term universe (equalities within classes, inequalities between
    /// `≠`-related classes, relational atoms propagated through equality).
    /// Undecided atoms are *not* added. Fails if unsatisfiable.
    pub fn saturate(&self, schema: &Schema) -> Result<SigmaType, DataError> {
        let a = self.analyze(schema)?;
        Ok(a.to_saturated_type())
    }

    /// Restriction to the literals whose terms all satisfy `keep`, computed
    /// on the *saturated* type so the restriction is semantically faithful
    /// for complete types. The register count of the result is `new_k`.
    pub fn restrict(
        &self,
        schema: &Schema,
        new_k: u16,
        keep: impl Fn(Term) -> bool,
    ) -> Result<SigmaType, DataError> {
        let sat = self.saturate(schema)?;
        let literals = sat
            .literals
            .into_iter()
            .filter(|l| l.terms().into_iter().all(&keep))
            .collect();
        Ok(SigmaType { k: new_k, literals })
    }

    /// `δ|m` — restriction to the first `m` registers (both `x` and `y`),
    /// keeping constants. Used by the projection constructions (Thm 13, 24).
    pub fn restrict_registers(&self, schema: &Schema, m: u16) -> Result<SigmaType, DataError> {
        self.restrict(schema, m, |t| match t {
            Term::X(i) | Term::Y(i) => i.0 < m,
            Term::Const(_) => true,
        })
    }

    /// `π₁(δ)` — the type induced on `x̄` (and constants): the saturated
    /// restriction to pre-register variables. Used by the guarded formula
    /// `Ψ_A` in Theorem 9.
    pub fn pre_type(&self, schema: &Schema) -> Result<SigmaType, DataError> {
        self.restrict(schema, self.k, |t| !t.is_y())
    }

    /// `δ|ȳ` renamed by `y_i ↦ x_i` — the type induced on the *next*
    /// registers, expressed over `x̄`. Condition (iii) of symbolic control
    /// traces compares this with the successor's [`SigmaType::pre_type`].
    pub fn post_type_as_pre(&self, schema: &Schema) -> Result<SigmaType, DataError> {
        let restricted = self.restrict(schema, self.k, |t| !t.is_x())?;
        let literals = restricted
            .literals
            .into_iter()
            .map(|l| l.map_terms(Term::y_to_x))
            .collect();
        Ok(SigmaType {
            k: self.k,
            literals,
        })
    }

    /// Condition (iii) of symbolic control traces: `δ|ȳ ≅ δ′|x̄` under
    /// `y_i ↦ x_i`. Compares saturations, which is exact for complete types.
    pub fn agrees_with(&self, next: &SigmaType, schema: &Schema) -> Result<bool, DataError> {
        let post = self.post_type_as_pre(schema)?;
        let pre = next.pre_type(schema)?;
        Ok(post.literals == pre.literals)
    }

    /// Whether this type (at position `n`) and `next` (at position `n+1`)
    /// are *jointly satisfiable*: `∃ d_n d_{n+1} d_{n+2}` with
    /// `self(d_n, d_{n+1})` and `next(d_{n+1}, d_{n+2})`. For complete types
    /// this coincides with [`SigmaType::agrees_with`]; for incomplete types
    /// it is the correct successor condition (syntactic agreement would
    /// wrongly reject, e.g., `P(x1)` following `P(x1)`).
    pub fn jointly_satisfiable_with(&self, next: &SigmaType, schema: &Schema) -> bool {
        let k = self.k;
        debug_assert_eq!(k, next.k);
        // Encode over 2k registers: x(0..k) = d_n, x(k..2k) = d_{n+1},
        // y(0..k) = d_{n+2}.
        let first = self
            .map_terms(|t| match t {
                Term::Y(i) => Term::x(k + i.0),
                other => other,
            })
            .with_k(2 * k);
        let second = next
            .map_terms(|t| match t {
                Term::X(i) => Term::x(k + i.0),
                other => other,
            })
            .with_k(2 * k);
        first.conjoin(&second).is_satisfiable(schema)
    }

    /// Whether the type is *complete*: it decides every equality between
    /// pairs of terms and every relational atom over its term universe.
    pub fn is_complete(&self, schema: &Schema) -> Result<bool, DataError> {
        let a = self.analyze(schema)?;
        Ok(a.undecided_atom(schema).is_none())
    }

    /// All complete satisfiable extensions of this type (Example 2).
    ///
    /// There may be exponentially many; intended for small `k` and schemas,
    /// as in the paper's constructions.
    pub fn completions(&self, schema: &Schema) -> Result<Vec<SigmaType>, DataError> {
        self.completions_governed(schema, &Budget::unlimited())
    }

    /// [`SigmaType::completions`] under a [`Budget`]: the worklist — the
    /// single most explosive loop in the workspace (the number of complete
    /// extensions grows like the number of set partitions of the term
    /// universe) — ticks once per popped node, so a deadline, node ceiling
    /// or cancellation interrupts the enumeration itself, not just its
    /// callers.
    pub fn completions_governed(
        &self,
        schema: &Schema,
        budget: &Budget,
    ) -> Result<Vec<SigmaType>, DataError> {
        self.analyze(schema)?; // must be satisfiable to start
        let mut done = Vec::new();
        let mut work = vec![self.clone()];
        while let Some(t) = work.pop() {
            budget.tick("sigma.completions")?;
            let a = match t.analyze(schema) {
                Ok(a) => a,
                Err(_) => continue,
            };
            match a.undecided_atom(schema) {
                None => done.push(a.to_saturated_type()),
                Some(atom) => {
                    let pos = t.with(atom.clone());
                    let neg = t.with(atom.negated());
                    if pos.is_satisfiable(schema) {
                        work.push(pos);
                    }
                    if neg.is_satisfiable(schema) {
                        work.push(neg);
                    }
                }
            }
        }
        // Canonical order for reproducibility.
        done.sort();
        done.dedup();
        Ok(done)
    }

    /// Evaluates a term under a valuation of the registers and the database's
    /// constant interpretation.
    pub fn eval_term(t: Term, db: &Database, pre: &[Value], post: &[Value]) -> Value {
        match t {
            Term::X(i) => pre[i.idx()],
            Term::Y(i) => post[i.idx()],
            Term::Const(c) => db.constant(c),
        }
    }

    /// `D ⊨ δ(pre, post)` — whether the type holds in the database with the
    /// given register valuations.
    pub fn satisfied_by(&self, db: &Database, pre: &[Value], post: &[Value]) -> bool {
        debug_assert_eq!(pre.len(), self.k as usize);
        debug_assert_eq!(post.len(), self.k as usize);
        self.literals.iter().all(|lit| match lit {
            Literal::Eq(s, t) => {
                Self::eval_term(*s, db, pre, post) == Self::eval_term(*t, db, pre, post)
            }
            Literal::Neq(s, t) => {
                Self::eval_term(*s, db, pre, post) != Self::eval_term(*t, db, pre, post)
            }
            Literal::Rel {
                rel,
                args,
                positive,
            } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| Self::eval_term(*a, db, pre, post))
                    .collect();
                db.contains(*rel, &vals) == *positive
            }
        })
    }

    /// Applies a term substitution to every literal.
    pub fn map_terms(&self, f: impl Fn(Term) -> Term) -> SigmaType {
        SigmaType {
            k: self.k,
            literals: self.literals.iter().map(|l| l.map_terms(&f)).collect(),
        }
    }

    /// Returns the same literals viewed as a type over `new_k` registers
    /// (callers must ensure no literal mentions a register `>= new_k`).
    pub fn with_k(&self, new_k: u16) -> SigmaType {
        SigmaType {
            k: new_k,
            literals: self.literals.clone(),
        }
    }
}

impl fmt::Display for SigmaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "⊤");
        }
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// The result of analyzing a satisfiable type: equality classes over the
/// term universe, class-level inequalities, and class-level relational facts.
///
/// Class indices are *dense* (`0..classes.len()`) and ordered by the least
/// term in the class.
#[derive(Clone, Debug)]
pub struct TypeAnalysis {
    k: u16,
    /// The equivalence classes (each a sorted list of terms).
    classes: Vec<Vec<Term>>,
    class_of: HashMap<Term, usize>,
    /// Class pairs `(a, b)` with `a <= b` related by `≠`.
    neq: BTreeSet<(usize, usize)>,
    /// Positive relational facts at class level.
    pos_facts: BTreeSet<(RelSym, Vec<usize>)>,
    /// Negative relational facts at class level.
    neg_facts: BTreeSet<(RelSym, Vec<usize>)>,
}

impl TypeAnalysis {
    fn build(ty: &SigmaType, schema: &Schema) -> Result<TypeAnalysis, DataError> {
        ty.validate(schema)?;
        let universe = ty.universe(schema);
        let index: HashMap<Term, usize> =
            universe.iter().enumerate().map(|(i, t)| (*t, i)).collect();

        // Union-find over the universe.
        let mut parent: Vec<usize> = (0..universe.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for lit in ty.literals() {
            if let Literal::Eq(s, t) = lit {
                let a = find(&mut parent, index[s]);
                let b = find(&mut parent, index[t]);
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }

        // Dense class ids ordered by least member.
        let mut root_to_class: HashMap<usize, usize> = HashMap::new();
        let mut classes: Vec<Vec<Term>> = Vec::new();
        let mut class_of: HashMap<Term, usize> = HashMap::new();
        for (i, t) in universe.iter().enumerate() {
            let r = find(&mut parent, i);
            let cid = *root_to_class.entry(r).or_insert_with(|| {
                classes.push(Vec::new());
                classes.len() - 1
            });
            classes[cid].push(*t);
            class_of.insert(*t, cid);
        }

        // Inequalities at class level; check consistency.
        let mut neq: BTreeSet<(usize, usize)> = BTreeSet::new();
        for lit in ty.literals() {
            if let Literal::Neq(s, t) = lit {
                let a = class_of[s];
                let b = class_of[t];
                if a == b {
                    return Err(DataError::Unsatisfiable);
                }
                neq.insert((a.min(b), a.max(b)));
            }
        }

        // Relational facts at class level; check consistency.
        let mut pos_facts: BTreeSet<(RelSym, Vec<usize>)> = BTreeSet::new();
        let mut neg_facts: BTreeSet<(RelSym, Vec<usize>)> = BTreeSet::new();
        for lit in ty.literals() {
            if let Literal::Rel {
                rel,
                args,
                positive,
            } = lit
            {
                let cls: Vec<usize> = args.iter().map(|a| class_of[a]).collect();
                if *positive {
                    pos_facts.insert((*rel, cls));
                } else {
                    neg_facts.insert((*rel, cls));
                }
            }
        }
        if pos_facts.intersection(&neg_facts).next().is_some() {
            return Err(DataError::Unsatisfiable);
        }

        Ok(TypeAnalysis {
            k: ty.k,
            classes,
            class_of,
            neq,
            pos_facts,
            neg_facts,
        })
    }

    /// Number of registers.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The equality classes.
    pub fn classes(&self) -> &[Vec<Term>] {
        &self.classes
    }

    /// The class id of a term of the universe.
    pub fn class_of(&self, t: Term) -> usize {
        self.class_of[&t]
    }

    /// Whether two terms are forced equal.
    pub fn forced_eq(&self, s: Term, t: Term) -> bool {
        self.class_of(s) == self.class_of(t)
    }

    /// Whether two terms are forced distinct.
    pub fn forced_neq(&self, s: Term, t: Term) -> bool {
        let a = self.class_of(s);
        let b = self.class_of(t);
        self.neq.contains(&(a.min(b), a.max(b)))
    }

    /// Class-level `≠` pairs.
    pub fn neq_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.neq.iter().copied()
    }

    /// Class-level positive relational facts.
    pub fn pos_facts(&self) -> impl Iterator<Item = &(RelSym, Vec<usize>)> {
        self.pos_facts.iter()
    }

    /// Class-level negative relational facts.
    pub fn neg_facts(&self) -> impl Iterator<Item = &(RelSym, Vec<usize>)> {
        self.neg_facts.iter()
    }

    /// Whether the class-level positive fact holds.
    pub fn has_pos_fact(&self, rel: RelSym, classes: &[usize]) -> bool {
        self.pos_facts.contains(&(rel, classes.to_vec()))
    }

    /// Whether the class-level negative fact holds.
    pub fn has_neg_fact(&self, rel: RelSym, classes: &[usize]) -> bool {
        self.neg_facts.contains(&(rel, classes.to_vec()))
    }

    /// Finds an atom (over the universe) whose truth value the type does not
    /// determine, or `None` if the type is complete.
    fn undecided_atom(&self, schema: &Schema) -> Option<Literal> {
        // Equalities: every pair of classes must be separated by ≠ (same
        // class means =, different classes need an explicit ≠ literal).
        let n = self.classes.len();
        for a in 0..n {
            for b in (a + 1)..n {
                if !self.neq.contains(&(a, b)) {
                    return Some(Literal::eq(self.classes[a][0], self.classes[b][0]));
                }
            }
        }
        // Relational atoms: every class tuple must be decided.
        for r in schema.relations() {
            let arity = schema.arity(r);
            let total = n.checked_pow(arity as u32).expect("arity overflow");
            for flat in 0..total {
                let mut tuple = Vec::with_capacity(arity);
                let mut rest = flat;
                for _ in 0..arity {
                    tuple.push(rest % n);
                    rest /= n;
                }
                if !self.pos_facts.contains(&(r, tuple.clone()))
                    && !self.neg_facts.contains(&(r, tuple.clone()))
                {
                    let args: Vec<Term> = tuple.iter().map(|&c| self.classes[c][0]).collect();
                    return Some(Literal::rel(r, args));
                }
            }
        }
        None
    }

    /// Produces the saturated type: all implied literals, no undecided ones.
    pub fn to_saturated_type(&self) -> SigmaType {
        let mut literals = BTreeSet::new();
        // Equalities within classes (all pairs).
        for class in &self.classes {
            for i in 0..class.len() {
                for j in (i + 1)..class.len() {
                    literals.insert(Literal::eq(class[i], class[j]));
                }
            }
        }
        // Inequalities between ≠-related classes (all member pairs).
        for &(a, b) in &self.neq {
            for &s in &self.classes[a] {
                for &t in &self.classes[b] {
                    literals.insert(Literal::neq(s, t));
                }
            }
        }
        // Relational facts expanded over class members.
        let expand = |facts: &BTreeSet<(RelSym, Vec<usize>)>,
                      positive: bool,
                      literals: &mut BTreeSet<Literal>| {
            for (rel, cls) in facts {
                let mut combos: Vec<Vec<Term>> = vec![Vec::new()];
                for &c in cls {
                    let mut next = Vec::new();
                    for combo in &combos {
                        for &member in &self.classes[c] {
                            let mut ext = combo.clone();
                            ext.push(member);
                            next.push(ext);
                        }
                    }
                    combos = next;
                }
                for args in combos {
                    literals.insert(Literal::Rel {
                        rel: *rel,
                        args,
                        positive,
                    });
                }
            }
        };
        expand(&self.pos_facts, true, &mut literals);
        expand(&self.neg_facts, false, &mut literals);
        SigmaType {
            k: self.k,
            literals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_db() -> Schema {
        Schema::empty()
    }

    #[test]
    fn empty_type_is_satisfiable() {
        let t = SigmaType::empty(2);
        assert!(t.is_satisfiable(&no_db()));
    }

    #[test]
    fn direct_contradiction_unsat() {
        let t = SigmaType::new(
            1,
            [
                Literal::eq(Term::x(0), Term::y(0)),
                Literal::neq(Term::x(0), Term::y(0)),
            ],
        );
        assert!(!t.is_satisfiable(&no_db()));
    }

    #[test]
    fn transitive_contradiction_unsat() {
        // x1 = x2, x2 = y1, x1 ≠ y1
        let t = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(0)),
                Literal::neq(Term::x(0), Term::y(0)),
            ],
        );
        assert!(!t.is_satisfiable(&no_db()));
    }

    #[test]
    fn relational_clash_unsat() {
        let schema = Schema::with(&[("U", 1)], &[]);
        let u = schema.relation("U").unwrap();
        // U(x1), ¬U(x2), x1 = x2
        let t = SigmaType::new(
            2,
            [
                Literal::rel(u, vec![Term::x(0)]),
                Literal::not_rel(u, vec![Term::x(1)]),
                Literal::eq(Term::x(0), Term::x(1)),
            ],
        );
        assert!(!t.is_satisfiable(&schema));
    }

    #[test]
    fn relational_no_clash_sat() {
        let schema = Schema::with(&[("U", 1)], &[]);
        let u = schema.relation("U").unwrap();
        let t = SigmaType::new(
            2,
            [
                Literal::rel(u, vec![Term::x(0)]),
                Literal::not_rel(u, vec![Term::x(1)]),
            ],
        );
        assert!(t.is_satisfiable(&schema));
    }

    #[test]
    fn saturation_derives_equalities() {
        // Example 1's δ1: x1 = x2 ∧ x2 = y2 implies x1 = y2.
        let t = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(1)),
            ],
        );
        let sat = t.saturate(&no_db()).unwrap();
        assert!(sat.contains(&Literal::eq(Term::x(0), Term::y(1))));
    }

    #[test]
    fn saturation_derives_inequalities() {
        // x1 = x2, x2 ≠ y1 implies x1 ≠ y1
        let t = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::neq(Term::x(1), Term::y(0)),
            ],
        );
        let sat = t.saturate(&no_db()).unwrap();
        assert!(sat.contains(&Literal::neq(Term::x(0), Term::y(0))));
    }

    #[test]
    fn saturation_propagates_relations() {
        let schema = Schema::with(&[("U", 1)], &[]);
        let u = schema.relation("U").unwrap();
        let t = SigmaType::new(
            2,
            [
                Literal::rel(u, vec![Term::x(0)]),
                Literal::eq(Term::x(0), Term::x(1)),
            ],
        );
        let sat = t.saturate(&schema).unwrap();
        assert!(sat.contains(&Literal::rel(u, vec![Term::x(1)])));
    }

    #[test]
    fn pre_and_post_types() {
        // δ1 from Example 1: x1 = x2 ∧ x2 = y2
        let t = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(1)),
            ],
        );
        let pre = t.pre_type(&no_db()).unwrap();
        assert!(pre.contains(&Literal::eq(Term::x(0), Term::x(1))));
        assert!(!pre.literals().any(|l| l.terms().iter().any(|t| t.is_y())));
        let post = t.post_type_as_pre(&no_db()).unwrap();
        // only y2 is constrained on the post side, alone — no literal survives
        assert!(post.is_empty());
    }

    #[test]
    fn agreement_of_consecutive_types() {
        // δ: y1 = y2 — post side says x1 = x2 after renaming.
        let t1 = SigmaType::new(2, [Literal::eq(Term::y(0), Term::y(1))]);
        // δ': x1 = x2
        let t2 = SigmaType::new(2, [Literal::eq(Term::x(0), Term::x(1))]);
        assert!(t1.agrees_with(&t2, &no_db()).unwrap());
        // δ'': x1 ≠ x2 disagrees
        let t3 = SigmaType::new(2, [Literal::neq(Term::x(0), Term::x(1))]);
        assert!(!t1.agrees_with(&t3, &no_db()).unwrap());
    }

    #[test]
    fn incomplete_vs_complete() {
        let schema = no_db();
        let t = SigmaType::new(1, [Literal::eq(Term::x(0), Term::y(0))]);
        assert!(t.is_complete(&schema).unwrap());
        let t2 = SigmaType::empty(1);
        assert!(!t2.is_complete(&schema).unwrap());
    }

    #[test]
    fn completions_of_empty_type_one_register() {
        // Over 1 register, no db: atoms are just x1 = y1 — two completions.
        let schema = no_db();
        let t = SigmaType::empty(1);
        let comps = t.completions(&schema).unwrap();
        assert_eq!(comps.len(), 2);
        for c in &comps {
            assert!(c.is_complete(&schema).unwrap());
        }
    }

    #[test]
    fn completions_of_example_2() {
        // Example 2: completing δ1 = (x1=x2 ∧ x2=y2) over 2 registers yields
        // exactly two completions (settle y1 vs the single class of
        // x1,x2,y2): y1 = y2 or y1 ≠ y2.
        let schema = no_db();
        let d1 = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(1)),
            ],
        );
        let comps = d1.completions(&schema).unwrap();
        assert_eq!(comps.len(), 2);
        let with_eq = comps
            .iter()
            .filter(|c| c.contains(&Literal::eq(Term::y(0), Term::y(1))))
            .count();
        let with_neq = comps
            .iter()
            .filter(|c| c.contains(&Literal::neq(Term::y(0), Term::y(1))))
            .count();
        assert_eq!(with_eq, 1);
        assert_eq!(with_neq, 1);
    }

    #[test]
    fn completions_with_unary_relation() {
        // 1 register, one unary relation: atoms x1=y1, U(x1), U(y1).
        // Completions: choose x1=y1 (then U(x1) determines U(y1)): 2·2 = ...
        // x1=y1: U decided on one class → 2 completions.
        // x1≠y1: U(x1), U(y1) independent → 4 completions. Total 6.
        let schema = Schema::with(&[("U", 1)], &[]);
        let comps = SigmaType::empty(1).completions(&schema).unwrap();
        assert_eq!(comps.len(), 6);
    }

    #[test]
    fn satisfied_by_concrete_values() {
        let schema = Schema::with(&[("E", 2)], &[]);
        let e = schema.relation("E").unwrap();
        let mut db = Database::new(schema.clone());
        db.insert(e, vec![Value(1), Value(2)]).unwrap();
        let t = SigmaType::new(
            2,
            [
                Literal::rel(e, vec![Term::x(0), Term::x(1)]),
                Literal::eq(Term::x(0), Term::y(0)),
            ],
        );
        assert!(t.satisfied_by(&db, &[Value(1), Value(2)], &[Value(1), Value(9)]));
        assert!(!t.satisfied_by(&db, &[Value(2), Value(1)], &[Value(2), Value(9)]));
        assert!(!t.satisfied_by(&db, &[Value(1), Value(2)], &[Value(3), Value(9)]));
    }

    #[test]
    fn restrict_registers_drops_hidden() {
        // x1 = y1 ∧ x2 = y2 restricted to 1 register keeps only x1 = y1.
        let t = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::y(0)),
                Literal::eq(Term::x(1), Term::y(1)),
            ],
        );
        let r = t.restrict_registers(&no_db(), 1).unwrap();
        assert_eq!(r.k(), 1);
        assert!(r.contains(&Literal::eq(Term::x(0), Term::y(0))));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn restrict_keeps_derived_facts() {
        // x1 = x2 ∧ x2 = y1: restriction to register 1 must keep x1 = y1,
        // which is only *derived*.
        let t = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(0)),
            ],
        );
        let r = t.restrict_registers(&no_db(), 1).unwrap();
        assert!(r.contains(&Literal::eq(Term::x(0), Term::y(0))));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let t = SigmaType::new(1, [Literal::eq(Term::x(0), Term::x(5))]);
        assert!(t.validate(&no_db()).is_err());
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let schema = Schema::with(&[("E", 2)], &[]);
        let e = schema.relation("E").unwrap();
        let t = SigmaType::new(1, [Literal::rel(e, vec![Term::x(0)])]);
        assert!(t.validate(&schema).is_err());
    }

    #[test]
    fn constants_participate_in_classes() {
        let schema = Schema::with(&[], &["c"]);
        // x1 = c ∧ y1 = c implies x1 = y1
        let t = SigmaType::new(
            1,
            [
                Literal::eq(Term::x(0), Term::cst(0)),
                Literal::eq(Term::y(0), Term::cst(0)),
            ],
        );
        let sat = t.saturate(&schema).unwrap();
        assert!(sat.contains(&Literal::eq(Term::x(0), Term::y(0))));
    }

    #[test]
    fn analysis_accessors() {
        let t = SigmaType::new(2, [Literal::eq(Term::x(0), Term::y(1))]);
        let a = t.analyze(&no_db()).unwrap();
        assert!(a.forced_eq(Term::x(0), Term::y(1)));
        assert!(!a.forced_eq(Term::x(0), Term::x(1)));
        assert!(!a.forced_neq(Term::x(0), Term::x(1)));
        assert_eq!(a.classes().len(), 3);
    }

    #[test]
    fn display_renders() {
        let t = SigmaType::new(1, [Literal::eq(Term::x(0), Term::y(0))]);
        assert_eq!(t.to_string(), "x1=y1");
        assert_eq!(SigmaType::empty(1).to_string(), "⊤");
    }
}
