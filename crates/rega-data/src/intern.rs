//! σ-type interning and memoized type operations.
//!
//! Every construction in the paper — `SControl(A)` (Theorem 9), emptiness
//! (Corollary 10), the projection closures (Theorem 13, Proposition 20) and
//! the database-hiding construction (Theorem 24) — is built from the same
//! handful of σ-type operations: analysis/satisfiability, saturation,
//! restriction, joint satisfiability of consecutive types, and completion.
//! The automata these constructions traverse repeat a *small* set of
//! distinct types across a *large* set of transitions (state-driven normal
//! forms duplicate each type once per successor pair), so re-deriving the
//! operations per call site wastes almost all of the work.
//!
//! This module hash-conses types into cheap [`TypeId`] handles
//! ([`TypeInterner`]) and memoizes the derived facts keyed on those handles
//! ([`SatCache`]). A `SatCache` is tied to one [`Schema`] (the operations it
//! memoizes are all schema-relative) and is internally synchronized, so it
//! can be shared behind an `Arc` by concurrent consumers — e.g. a compiled
//! streaming specification shared across worker threads.

use crate::error::DataError;
use crate::govern::Budget;
use crate::schema::Schema;
use crate::typebits::{TypeBits, TypeBitsSpace};
use crate::types::{SigmaType, TypeAnalysis};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cheap, copyable handle to an interned [`SigmaType`].
///
/// Ids are dense (`0..interner.len()`) and stable for the lifetime of the
/// interner that issued them; they are meaningless across interners.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The id as a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing table for σ-types: structurally equal types map to the
/// same [`TypeId`], and each distinct type is stored exactly once (behind an
/// `Arc`, so resolving never clones the literal set).
#[derive(Debug, Default)]
pub struct TypeInterner {
    ids: HashMap<Arc<SigmaType>, TypeId>,
    types: Vec<Arc<SigmaType>>,
}

impl TypeInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a type by reference (clones only on first sight).
    pub fn intern(&mut self, ty: &SigmaType) -> TypeId {
        if let Some(&id) = self.ids.get(ty) {
            return id;
        }
        self.insert(Arc::new(ty.clone()))
    }

    /// Interns an owned type (never clones).
    pub fn intern_owned(&mut self, ty: SigmaType) -> TypeId {
        if let Some(&id) = self.ids.get(&ty) {
            return id;
        }
        self.insert(Arc::new(ty))
    }

    fn insert(&mut self, ty: Arc<SigmaType>) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(Arc::clone(&ty));
        self.ids.insert(ty, id);
        id
    }

    /// The type behind a handle.
    pub fn resolve(&self, id: TypeId) -> &Arc<SigmaType> {
        &self.types[id.idx()]
    }

    /// Number of distinct interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no type has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

/// The named restriction operations [`SatCache`] memoizes. Restriction is
/// keyed on an enum rather than a closure so that semantically identical
/// requests share one cache entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RestrictOp {
    /// `δ|m` — keep the first `m` registers (x and y sides), plus constants.
    Registers(u16),
    /// `π₁(δ)` — the induced pre-type over `x̄` and constants.
    Pre,
    /// `δ|ȳ` renamed by `y_i ↦ x_i` — the induced post-type expressed over
    /// `x̄`.
    PostAsPre,
}

#[derive(Debug, Default)]
struct CacheInner {
    interner: TypeInterner,
    analyses: HashMap<TypeId, Result<Arc<TypeAnalysis>, DataError>>,
    saturated: HashMap<TypeId, Result<TypeId, DataError>>,
    restricted: HashMap<(TypeId, RestrictOp), Result<TypeId, DataError>>,
    joint: HashMap<(TypeId, TypeId), bool>,
    agrees: HashMap<(TypeId, TypeId), Result<bool, DataError>>,
    completions: HashMap<TypeId, Result<Vec<TypeId>, DataError>>,
    /// Bitset spaces per register count (`None` = fragment unsupported).
    bit_spaces: HashMap<u16, Option<Arc<TypeBitsSpace>>>,
    /// Lossless bitset encodings per interned type (`None` = unsupported).
    bits: HashMap<TypeId, Option<TypeBits>>,
}

impl CacheInner {
    /// The (memoized) bitset space for `k`-register types over `schema`.
    fn bit_space(&mut self, schema: &Schema, k: u16) -> Option<Arc<TypeBitsSpace>> {
        self.bit_spaces
            .entry(k)
            .or_insert_with(|| TypeBitsSpace::new(schema, k).map(Arc::new))
            .clone()
    }
}

/// Hit/miss counters and interner size of a [`SatCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Memoized lookups answered from the cache.
    pub hits: u64,
    /// Memoized lookups that had to compute.
    pub misses: u64,
    /// Number of distinct interned types.
    pub distinct_types: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (`0.0` with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A schema-tied memoization cache over interned σ-types.
///
/// All derived facts (`analyze`, `saturate`, restriction, joint
/// satisfiability, agreement, completions) are computed at most once per
/// distinct type (or type pair) and shared thereafter. Interior mutability
/// makes the cache usable through `&self` everywhere a type operation used
/// to be called on an owned `SigmaType`, and `Send + Sync` lets one cache
/// back a spec shared across threads.
#[derive(Debug)]
pub struct SatCache {
    schema: Schema,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Process-global mirrors in the [`rega_obs::global`] registry,
    /// aggregated across every cache instance, so a trace or metrics dump
    /// can report σ-type cache effectiveness without a handle on the
    /// specific cache.
    global_hits: rega_obs::Counter,
    global_misses: rega_obs::Counter,
}

impl SatCache {
    /// A fresh cache for the given schema.
    pub fn new(schema: Schema) -> Self {
        SatCache {
            schema,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            global_hits: rega_obs::global().counter("satcache.hits"),
            global_misses: rega_obs::global().counter("satcache.misses"),
        }
    }

    /// The schema all memoized operations are relative to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.global_hits.inc();
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.global_misses.inc();
    }

    /// Interns a type, returning its handle.
    pub fn intern(&self, ty: &SigmaType) -> TypeId {
        self.inner.lock().unwrap().interner.intern(ty)
    }

    /// Interns an owned type.
    pub fn intern_owned(&self, ty: SigmaType) -> TypeId {
        self.inner.lock().unwrap().interner.intern_owned(ty)
    }

    /// The type behind a handle (cheap `Arc` clone).
    pub fn resolve(&self, id: TypeId) -> Arc<SigmaType> {
        Arc::clone(self.inner.lock().unwrap().interner.resolve(id))
    }

    /// Memoized [`SigmaType::analyze`].
    pub fn analyze(&self, ty: &SigmaType) -> Result<Arc<TypeAnalysis>, DataError> {
        let id = self.intern(ty);
        self.analyze_id(id)
    }

    /// Memoized analysis by handle.
    pub fn analyze_id(&self, id: TypeId) -> Result<Arc<TypeAnalysis>, DataError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(r) = inner.analyses.get(&id) {
            self.hit();
            return r.clone();
        }
        self.miss();
        let ty = Arc::clone(inner.interner.resolve(id));
        let r = ty.analyze(&self.schema).map(Arc::new);
        inner.analyses.insert(id, r.clone());
        r
    }

    /// Memoized satisfiability ([`SigmaType::is_satisfiable`]).
    pub fn is_consistent(&self, ty: &SigmaType) -> bool {
        self.analyze(ty).is_ok()
    }

    /// Memoized satisfiability by handle.
    pub fn is_consistent_id(&self, id: TypeId) -> bool {
        self.analyze_id(id).is_ok()
    }

    /// Memoized [`SigmaType::saturate`]; the result is interned too.
    pub fn saturate(&self, ty: &SigmaType) -> Result<Arc<SigmaType>, DataError> {
        let id = self.intern(ty);
        let sat = self.saturate_id(id)?;
        Ok(self.resolve(sat))
    }

    /// Memoized saturation by handle.
    pub fn saturate_id(&self, id: TypeId) -> Result<TypeId, DataError> {
        // Reuse the memoized analysis (saturation = analysis + rebuild).
        let analysis = self.analyze_id(id)?;
        let mut inner = self.inner.lock().unwrap();
        if let Some(r) = inner.saturated.get(&id) {
            self.hit();
            return r.clone();
        }
        self.miss();
        let sat = inner.interner.intern_owned(analysis.to_saturated_type());
        inner.saturated.insert(id, Ok(sat));
        Ok(sat)
    }

    /// Memoized restriction by named operation; the result is interned.
    pub fn restrict_id(&self, id: TypeId, op: RestrictOp) -> Result<TypeId, DataError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(r) = inner.restricted.get(&(id, op)) {
            self.hit();
            return r.clone();
        }
        self.miss();
        let ty = Arc::clone(inner.interner.resolve(id));
        let computed = match op {
            RestrictOp::Registers(m) => ty.restrict_registers(&self.schema, m),
            RestrictOp::Pre => ty.pre_type(&self.schema),
            RestrictOp::PostAsPre => ty.post_type_as_pre(&self.schema),
        };
        let r = computed.map(|t| inner.interner.intern_owned(t));
        inner.restricted.insert((id, op), r.clone());
        r
    }

    /// Memoized [`SigmaType::restrict_registers`].
    pub fn restrict_registers(&self, ty: &SigmaType, m: u16) -> Result<Arc<SigmaType>, DataError> {
        let id = self.intern(ty);
        let r = self.restrict_id(id, RestrictOp::Registers(m))?;
        Ok(self.resolve(r))
    }

    /// Memoized [`SigmaType::pre_type`].
    pub fn pre_type(&self, ty: &SigmaType) -> Result<Arc<SigmaType>, DataError> {
        let id = self.intern(ty);
        let r = self.restrict_id(id, RestrictOp::Pre)?;
        Ok(self.resolve(r))
    }

    /// Memoized [`SigmaType::post_type_as_pre`].
    pub fn post_type_as_pre(&self, ty: &SigmaType) -> Result<Arc<SigmaType>, DataError> {
        let id = self.intern(ty);
        let r = self.restrict_id(id, RestrictOp::PostAsPre)?;
        Ok(self.resolve(r))
    }

    /// Memoized [`SigmaType::jointly_satisfiable_with`] by handles.
    pub fn jointly_satisfiable_ids(&self, a: TypeId, b: TypeId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&r) = inner.joint.get(&(a, b)) {
            self.hit();
            return r;
        }
        self.miss();
        let first = Arc::clone(inner.interner.resolve(a));
        let second = Arc::clone(inner.interner.resolve(b));
        let r = first.jointly_satisfiable_with(&second, &self.schema);
        inner.joint.insert((a, b), r);
        r
    }

    /// Memoized [`SigmaType::jointly_satisfiable_with`].
    pub fn jointly_satisfiable(&self, a: &SigmaType, b: &SigmaType) -> bool {
        let (a, b) = (self.intern(a), self.intern(b));
        self.jointly_satisfiable_ids(a, b)
    }

    /// Memoized [`SigmaType::agrees_with`] by handles.
    pub fn agrees_with_ids(&self, a: TypeId, b: TypeId) -> Result<bool, DataError> {
        {
            let inner = self.inner.lock().unwrap();
            if let Some(r) = inner.agrees.get(&(a, b)) {
                self.hit();
                return r.clone();
            }
        }
        self.miss();
        // Built from the memoized restrictions, so the agreement check
        // itself shares work with every other consumer of pre/post types.
        let r = (|| {
            let post = self.restrict_id(a, RestrictOp::PostAsPre)?;
            let pre = self.restrict_id(b, RestrictOp::Pre)?;
            if post == pre {
                return Ok(true);
            }
            let (post, pre) = (self.resolve(post), self.resolve(pre));
            Ok(post.literals().eq(pre.literals()))
        })();
        self.inner.lock().unwrap().agrees.insert((a, b), r.clone());
        r
    }

    /// Memoized [`SigmaType::agrees_with`].
    pub fn agrees_with(&self, a: &SigmaType, b: &SigmaType) -> Result<bool, DataError> {
        let (a, b) = (self.intern(a), self.intern(b));
        self.agrees_with_ids(a, b)
    }

    /// Memoized [`SigmaType::completions`] by handle; each completion is
    /// interned.
    pub fn completions_id(&self, id: TypeId) -> Result<Vec<TypeId>, DataError> {
        self.completions_id_governed(id, &Budget::unlimited())
    }

    /// [`SatCache::completions_id`] under a [`Budget`]. The enumeration
    /// itself is interruptible (see [`SigmaType::completions_governed`]);
    /// budget trips are returned but **not** memoized — the same type may
    /// complete fine under a larger budget — and the enumeration runs
    /// outside the cache lock, so `stats()` (and other threads) stay
    /// responsive while a governed completion grinds.
    pub fn completions_id_governed(
        &self,
        id: TypeId,
        budget: &Budget,
    ) -> Result<Vec<TypeId>, DataError> {
        let ty = {
            let inner = self.inner.lock().unwrap();
            if let Some(r) = inner.completions.get(&id) {
                self.hit();
                return r.clone();
            }
            Arc::clone(inner.interner.resolve(id))
        };
        self.miss();
        match ty.completions_governed(&self.schema, budget) {
            Err(DataError::Govern(g)) => Err(DataError::Govern(g)),
            r => {
                let mut inner = self.inner.lock().unwrap();
                let r = r.map(|cs| {
                    cs.into_iter()
                        .map(|c| inner.interner.intern_owned(c))
                        .collect::<Vec<_>>()
                });
                inner.completions.insert(id, r.clone());
                r
            }
        }
    }

    /// Memoized [`SigmaType::completions`].
    pub fn completions(&self, ty: &SigmaType) -> Result<Vec<Arc<SigmaType>>, DataError> {
        self.completions_governed(ty, &Budget::unlimited())
    }

    /// Memoized [`SigmaType::completions`] under a [`Budget`].
    pub fn completions_governed(
        &self,
        ty: &SigmaType,
        budget: &Budget,
    ) -> Result<Vec<Arc<SigmaType>>, DataError> {
        let id = self.intern(ty);
        let ids = self.completions_id_governed(id, budget)?;
        let inner = self.inner.lock().unwrap();
        Ok(ids
            .into_iter()
            .map(|c| Arc::clone(inner.interner.resolve(c)))
            .collect())
    }

    /// The shared [`TypeBitsSpace`] for `k`-register types over this
    /// cache's schema, or `None` when the bitset fragment cannot represent
    /// them. Memoized per `k`, so fast paths can fetch it freely.
    pub fn typebits_space(&self, k: u16) -> Option<Arc<TypeBitsSpace>> {
        self.inner.lock().unwrap().bit_space(&self.schema, k)
    }

    /// The memoized lossless [`TypeBits`] encoding of an interned type, or
    /// `None` when the type falls outside the bitset fragment. Decoding the
    /// result in [`SatCache::typebits_space`] of the type's `k` yields the
    /// original type back, and [`SatCache::intern_typebits`] is the inverse
    /// direction.
    pub fn typebits(&self, id: TypeId) -> Option<TypeBits> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(b) = inner.bits.get(&id) {
            self.hit();
            return b.clone();
        }
        self.miss();
        let ty = Arc::clone(inner.interner.resolve(id));
        let b = inner
            .bit_space(&self.schema, ty.k())
            .and_then(|sp| sp.encode(&ty));
        inner.bits.insert(id, b.clone());
        b
    }

    /// Interns the σ-type a [`TypeBits`] value decodes to, returning its
    /// handle (the inverse of [`SatCache::typebits`] for types of the
    /// space's register count).
    pub fn intern_typebits(&self, space: &TypeBitsSpace, bits: &TypeBits) -> TypeId {
        self.intern_owned(space.decode(bits))
    }

    /// Current hit/miss counters and interner size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            distinct_types: self.inner.lock().unwrap().interner.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use crate::term::Term;

    fn ty_eq() -> SigmaType {
        SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(1)),
            ],
        )
    }

    #[test]
    fn interner_dedupes_structurally_equal_types() {
        let mut i = TypeInterner::new();
        let a = i.intern(&ty_eq());
        let b = i.intern(&ty_eq());
        let c = i.intern(&SigmaType::empty(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(**i.resolve(a), ty_eq());
    }

    #[test]
    fn analyze_is_cached() {
        let cache = SatCache::new(Schema::empty());
        let t = ty_eq();
        let a1 = cache.analyze(&t).unwrap();
        let a2 = cache.analyze(&t).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn unsat_types_cache_the_error() {
        let cache = SatCache::new(Schema::empty());
        let t = SigmaType::new(
            1,
            [
                Literal::eq(Term::x(0), Term::y(0)),
                Literal::neq(Term::x(0), Term::y(0)),
            ],
        );
        assert!(!cache.is_consistent(&t));
        assert!(!cache.is_consistent(&t));
        assert!(cache.saturate(&t).is_err());
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one analysis, errors included");
    }

    #[test]
    fn saturate_matches_direct() {
        let schema = Schema::empty();
        let cache = SatCache::new(schema.clone());
        let t = ty_eq();
        assert_eq!(*cache.saturate(&t).unwrap(), t.saturate(&schema).unwrap());
    }

    #[test]
    fn restrict_ops_match_direct() {
        let schema = Schema::empty();
        let cache = SatCache::new(schema.clone());
        let t = ty_eq();
        assert_eq!(
            *cache.restrict_registers(&t, 1).unwrap(),
            t.restrict_registers(&schema, 1).unwrap()
        );
        assert_eq!(*cache.pre_type(&t).unwrap(), t.pre_type(&schema).unwrap());
        assert_eq!(
            *cache.post_type_as_pre(&t).unwrap(),
            t.post_type_as_pre(&schema).unwrap()
        );
    }

    #[test]
    fn joint_satisfiability_matches_direct_including_incomplete() {
        // The incomplete case from `symbolic.rs`: `P(x1)` followed by
        // `P(x1)` is jointly satisfiable even though syntactic pre/post
        // agreement would reject it.
        let schema = Schema::with(&[("P", 1)], &[]);
        let p = schema.relation("P").unwrap();
        let cache = SatCache::new(schema.clone());
        let t = SigmaType::new(1, [Literal::rel(p, vec![Term::x(0)])]);
        assert!(cache.jointly_satisfiable(&t, &t));
        assert_eq!(
            cache.jointly_satisfiable(&t, &t),
            t.jointly_satisfiable_with(&t, &schema)
        );
        // Second call is a pure hit.
        let before = cache.stats().hits;
        cache.jointly_satisfiable(&t, &t);
        assert!(cache.stats().hits > before);
    }

    #[test]
    fn agrees_with_matches_direct() {
        let schema = Schema::empty();
        let cache = SatCache::new(schema.clone());
        let t1 = SigmaType::new(2, [Literal::eq(Term::y(0), Term::y(1))]);
        let t2 = SigmaType::new(2, [Literal::eq(Term::x(0), Term::x(1))]);
        let t3 = SigmaType::new(2, [Literal::neq(Term::x(0), Term::x(1))]);
        assert_eq!(
            cache.agrees_with(&t1, &t2).unwrap(),
            t1.agrees_with(&t2, &schema).unwrap()
        );
        assert_eq!(
            cache.agrees_with(&t1, &t3).unwrap(),
            t1.agrees_with(&t3, &schema).unwrap()
        );
    }

    #[test]
    fn completions_match_direct() {
        let schema = Schema::empty();
        let cache = SatCache::new(schema.clone());
        let t = SigmaType::empty(1);
        let cached: Vec<SigmaType> = cache
            .completions(&t)
            .unwrap()
            .into_iter()
            .map(|c| (*c).clone())
            .collect();
        assert_eq!(cached, t.completions(&schema).unwrap());
    }

    #[test]
    fn stats_track_hit_rate() {
        let cache = SatCache::new(Schema::empty());
        let t = ty_eq();
        for _ in 0..4 {
            cache.analyze(&t).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(s.distinct_types, 1);
    }

    #[test]
    fn typebits_roundtrip_via_cache() {
        let schema = Schema::with(&[("P", 1)], &[]);
        let cache = SatCache::new(schema);
        let id = cache.intern(&ty_eq());
        let bits = cache.typebits(id).expect("k = 2 over P/1 is in-fragment");
        let space = cache.typebits_space(2).unwrap();
        assert_eq!(cache.intern_typebits(&space, &bits), id);
        // The encoding is memoized: a second lookup is a pure hit.
        let before = cache.stats();
        assert_eq!(cache.typebits(id), Some(bits));
        let after = cache.stats();
        assert_eq!(before.misses, after.misses);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn typebits_space_gated_per_k() {
        let cache = SatCache::new(Schema::empty());
        assert!(cache.typebits_space(2).is_some());
        // 2·9 = 18 terms exceeds the bitset fragment.
        assert!(cache.typebits_space(9).is_none());
        let id = cache.intern(&SigmaType::empty(9));
        assert_eq!(cache.typebits(id), None);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(SatCache::new(Schema::empty()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let t = ty_eq();
                for _ in 0..16 {
                    assert!(c.is_consistent(&t));
                    assert!(c.jointly_satisfiable(&t, &t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * 16 * 2);
    }
}
