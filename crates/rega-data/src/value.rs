//! The infinite data domain `𝔻`.
//!
//! Values are opaque identifiers. The paper fixes a countably infinite data
//! domain; we realize it as the set of `u64` identifiers, together with a
//! [`ValueSupply`] that hands out values never seen before (needed, e.g., by
//! the witness constructions of Theorem 9, which require "fresh" elements,
//! and by the technical assumption that every run leaves out infinitely many
//! values of `𝔻`).

use std::fmt;

/// An element of the infinite data domain `𝔻`.
///
/// Values are compared only for (in)equality — exactly the operations
/// register automata may perform on data. The numeric payload is an
/// implementation detail used for interning and display.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u64);

impl Value {
    /// Returns the raw identifier of this value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(raw: u64) -> Self {
        Value(raw)
    }
}

/// A supply of fresh data values.
///
/// `ValueSupply::fresh` never returns a value it has returned before, and a
/// supply created with [`ValueSupply::above`] never returns a value `<=` the
/// given bound, so it can be seeded past the active domain of any finite
/// database or run prefix.
#[derive(Clone, Debug)]
pub struct ValueSupply {
    next: u64,
}

impl ValueSupply {
    /// Creates a supply starting at a large offset, far away from the small
    /// identifiers that tests and examples typically use for named values.
    pub fn new() -> Self {
        ValueSupply { next: 1 << 32 }
    }

    /// Creates a supply whose values are all strictly greater than `bound`.
    pub fn above(bound: Value) -> Self {
        ValueSupply {
            next: bound.0.saturating_add(1),
        }
    }

    /// Creates a supply whose values avoid everything in `used`.
    pub fn avoiding<I: IntoIterator<Item = Value>>(used: I) -> Self {
        let max = used.into_iter().map(|v| v.0).max().unwrap_or(0);
        ValueSupply {
            next: max.saturating_add(1),
        }
    }

    /// Returns a value not returned before by this supply.
    pub fn fresh(&mut self) -> Value {
        let v = Value(self.next);
        self.next += 1;
        v
    }

    /// Returns `n` distinct fresh values.
    pub fn fresh_n(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.fresh()).collect()
    }
}

impl Default for ValueSupply {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_values_are_distinct() {
        let mut s = ValueSupply::new();
        let a = s.fresh();
        let b = s.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn above_respects_bound() {
        let mut s = ValueSupply::above(Value(17));
        assert!(s.fresh().0 > 17);
    }

    #[test]
    fn avoiding_respects_used_set() {
        let mut s = ValueSupply::avoiding([Value(3), Value(99), Value(7)]);
        let v = s.fresh();
        assert!(v.0 > 99);
    }

    #[test]
    fn fresh_n_is_pairwise_distinct() {
        let mut s = ValueSupply::new();
        let vs = s.fresh_n(100);
        let set: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn display_format() {
        assert_eq!(Value(5).to_string(), "d5");
        assert_eq!(format!("{:?}", Value(5)), "d5");
    }
}
