//! Cooperative resource governance for the exponential constructions.
//!
//! Every symbolic construction in this workspace — completion, the
//! state-driven form, `SControl(A)`, emptiness, the chase, the projection
//! views — is exponential-prone: a hostile input can make any of them run
//! for hours or intern types until the process OOMs. Nothing here makes
//! those algorithms cheaper; instead a [`Budget`] handle is threaded into
//! their inner loops so a runaway construction *stops*, returning a typed
//! [`GovernError`] that says which phase tripped, how many nodes it had
//! expanded, and how long it had been running.
//!
//! The design is cooperative and amortized:
//!
//! * [`Budget::unlimited`] carries no allocation and its [`tick`]
//!   (Budget::tick) is a single branch on a `None` — the ungoverned hot
//!   path (every existing `*_cached` entry point) stays within measurement
//!   noise (pinned by the E17 benchmark).
//! * A live budget counts every tick with one relaxed `fetch_add` and
//!   compares it against the node ceiling exactly; the wall-clock deadline,
//!   the cancellation token, and the interned-type ceiling are only
//!   consulted every [`STRIDE`] ticks (the same relaxed-fast-path pattern
//!   as the rega-obs sink slot).
//! * Time comes from an injectable [`ObsClock`], so tests drive deadlines
//!   with a `ManualClock` instead of sleeping.
//!
//! Cancellation is a cloneable [`CancelToken`] (an `AtomicBool`): flip it
//! from any thread — a ctrl-c handler, a supervisor, a test — and every
//! governed loop sharing the budget unwinds with [`GovernError::Cancelled`]
//! within one stride.

use rega_obs::{MonotonicClock, ObsClock};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Ticks between slow-path checks (deadline, cancellation, type ceiling).
/// The inner loops this governs do at least ~100 ns of work per tick, so a
/// ~25 ns clock read every 64 ticks is far below the noise floor while
/// still bounding deadline overshoot to a few milliseconds.
pub const STRIDE: u64 = 64;

/// Declarative limits for a [`Budget`]. All fields are optional; an empty
/// spec still yields a live budget whose [`CancelToken`] works.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Wall-clock deadline, in milliseconds from [`Budget::start`].
    pub deadline_ms: Option<u64>,
    /// Ceiling on governed loop iterations ("nodes expanded") across every
    /// construction sharing the budget.
    pub max_nodes: Option<u64>,
    /// Ceiling on distinct interned σ-types (peak memory proxy), checked
    /// against the [`SatCache`](crate::SatCache) the caller passes to
    /// [`Budget::tick_mem`].
    pub max_types: Option<usize>,
}

impl BudgetSpec {
    /// A spec with no limits set.
    pub fn none() -> BudgetSpec {
        BudgetSpec::default()
    }

    /// The pointwise-tighter combination of two specs: for each limit the
    /// smaller of the two when both are set, the set one when only one is.
    /// This is the admission-control composition — a server-wide ceiling
    /// tightened by a per-tenant quota yields the budget a tenant's
    /// compilation actually runs under, and no tenant can *loosen* a
    /// global limit by declaring a bigger one.
    pub fn tightened(&self, other: &BudgetSpec) -> BudgetSpec {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (one, None) | (None, one) => one,
            }
        }
        BudgetSpec {
            deadline_ms: tighter(self.deadline_ms, other.deadline_ms),
            max_nodes: tighter(self.max_nodes, other.max_nodes),
            max_types: tighter(self.max_types, other.max_types),
        }
    }
}

/// A cloneable cancellation flag. All clones share one `AtomicBool`;
/// [`cancel`](CancelToken::cancel) from any thread makes every governed
/// loop holding a budget with this token return [`GovernError::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Leaks one reference to the shared flag and returns it with a
    /// `'static` lifetime. This exists for signal handlers, which may only
    /// touch `static` atomics: leak the flag once at setup, store the
    /// reference in a `static`, and the handler's store is async-signal
    /// safe. The leak is one `AtomicBool` per call — call it once.
    pub fn leaked_flag(&self) -> &'static AtomicBool {
        // Safety: `Arc::into_raw` yields a pointer valid as long as the
        // (intentionally leaked) strong count it represents is never
        // dropped, which is forever.
        unsafe { &*Arc::into_raw(Arc::clone(&self.flag)) }
    }
}

struct BudgetInner {
    clock: Arc<dyn ObsClock>,
    start_ns: u64,
    /// Relative deadline in nanoseconds, if any.
    deadline_ns: Option<u64>,
    max_nodes: Option<u64>,
    max_types: Option<usize>,
    cancel: CancelToken,
    nodes: AtomicU64,
}

impl BudgetInner {
    /// Bumps the node counter and returns the new count.
    ///
    /// Plain load + store rather than `fetch_add`: a budget is ticked by
    /// the one thread running the construction, while other threads only
    /// *read* the counter (diagnostics) or flip the cancellation flag.
    /// Dropping the atomic RMW keeps an armed tick at load/compare/store
    /// cost — on microsecond-scale constructions the locked `fetch_add`
    /// alone pushed armed-vs-unarmed past E17's noise floor. Should two
    /// threads ever tick one budget concurrently, a few expansions could
    /// go uncounted; ceilings are still enforced to within that slip.
    #[inline]
    fn bump(&self) -> u64 {
        let n = self.nodes.load(Ordering::Relaxed) + 1;
        self.nodes.store(n, Ordering::Relaxed);
        n
    }

    fn elapsed_ms(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns) / 1_000_000
    }

    /// The amortized checks: cancellation first (a cancel must win over a
    /// deadline that expired at the same instant), then the deadline.
    #[cold]
    fn slow_check(&self, phase: &'static str, nodes: u64) -> Result<(), GovernError> {
        if self.cancel.is_cancelled() {
            return Err(trip(GovernError::Cancelled {
                phase,
                nodes,
                elapsed_ms: self.elapsed_ms(),
            }));
        }
        if let Some(deadline_ns) = self.deadline_ns {
            let elapsed = self.clock.now_ns().saturating_sub(self.start_ns);
            if elapsed > deadline_ns {
                return Err(trip(GovernError::DeadlineExceeded {
                    phase,
                    nodes,
                    elapsed_ms: elapsed / 1_000_000,
                    deadline_ms: deadline_ns / 1_000_000,
                }));
            }
        }
        Ok(())
    }
}

/// A shared handle bounding a family of governed constructions.
///
/// Cloning is cheap and every clone shares the same counters, deadline and
/// cancellation token, so one budget can cover a whole pipeline (e.g. all
/// three phases of `check_emptiness` plus the projection that follows).
/// [`Budget::unlimited`] is the zero-cost null object every `*_cached`
/// entry point passes internally.
#[derive(Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Budget::unlimited"),
            Some(inner) => f
                .debug_struct("Budget")
                .field("deadline_ns", &inner.deadline_ns)
                .field("max_nodes", &inner.max_nodes)
                .field("max_types", &inner.max_types)
                .field("nodes", &inner.nodes.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl Budget {
    /// The null budget: never trips, costs one branch per tick.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// Starts a live budget on the real (monotonic) clock.
    pub fn start(spec: &BudgetSpec) -> Budget {
        Self::start_with_clock(spec, Arc::new(MonotonicClock::new()))
    }

    /// Starts a live budget on an injectable clock (tests use
    /// [`ManualClock`](rega_obs::ManualClock) to cross deadlines without
    /// sleeping).
    pub fn start_with_clock(spec: &BudgetSpec, clock: Arc<dyn ObsClock>) -> Budget {
        let start_ns = clock.now_ns();
        Budget {
            inner: Some(Arc::new(BudgetInner {
                clock,
                start_ns,
                deadline_ns: spec.deadline_ms.map(|ms| ms.saturating_mul(1_000_000)),
                max_nodes: spec.max_nodes,
                max_types: spec.max_types,
                cancel: CancelToken::new(),
                nodes: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this is the null budget.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The cancellation token shared by every clone of this budget. For an
    /// unlimited budget this returns a fresh disconnected token (cancelling
    /// it does nothing, by construction).
    pub fn cancel_token(&self) -> CancelToken {
        match &self.inner {
            Some(inner) => inner.cancel.clone(),
            None => CancelToken::new(),
        }
    }

    /// Nodes expanded so far across all constructions sharing the budget.
    pub fn nodes(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.nodes.load(Ordering::Relaxed))
    }

    /// Milliseconds since [`Budget::start`] (0 for the null budget).
    pub fn elapsed_ms(&self) -> u64 {
        self.inner.as_deref().map_or(0, BudgetInner::elapsed_ms)
    }

    /// Counts one expansion in `phase`. The node ceiling is enforced
    /// exactly on every tick; deadline and cancellation are checked every
    /// [`STRIDE`] ticks.
    #[inline]
    pub fn tick(&self, phase: &'static str) -> Result<(), GovernError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        let n = inner.bump();
        if let Some(max) = inner.max_nodes {
            if n > max {
                return Err(trip(GovernError::NodeBudgetExceeded {
                    phase,
                    nodes: n,
                    elapsed_ms: inner.elapsed_ms(),
                    max_nodes: max,
                }));
            }
        }
        if n % STRIDE == 0 {
            inner.slow_check(phase, n)?;
        }
        Ok(())
    }

    /// Like [`tick`](Budget::tick), but additionally enforces the
    /// interned-type ceiling on the amortized slow path. `distinct_types`
    /// is only evaluated every [`STRIDE`] ticks — pass a closure reading
    /// `cache.stats().distinct_types` and the lock it takes stays off the
    /// hot path.
    #[inline]
    pub fn tick_mem<F: FnOnce() -> usize>(
        &self,
        phase: &'static str,
        distinct_types: F,
    ) -> Result<(), GovernError> {
        let Some(inner) = self.inner.as_deref() else {
            return Ok(());
        };
        let n = inner.bump();
        if let Some(max) = inner.max_nodes {
            if n > max {
                return Err(trip(GovernError::NodeBudgetExceeded {
                    phase,
                    nodes: n,
                    elapsed_ms: inner.elapsed_ms(),
                    max_nodes: max,
                }));
            }
        }
        if n % STRIDE == 0 {
            inner.slow_check(phase, n)?;
            if let Some(max) = inner.max_types {
                let distinct = distinct_types();
                if distinct > max {
                    return Err(trip(GovernError::MemBudgetExceeded {
                        phase,
                        nodes: n,
                        elapsed_ms: inner.elapsed_ms(),
                        distinct_types: distinct,
                        max_types: max,
                    }));
                }
            }
        }
        Ok(())
    }

    /// Unconditional slow check (deadline + cancellation), without counting
    /// a node. For coarse boundaries — per lasso, per chase round, per
    /// stabilization rebuild — where a full stride may never accumulate.
    pub fn check(&self, phase: &'static str) -> Result<(), GovernError> {
        match self.inner.as_deref() {
            None => Ok(()),
            Some(inner) => inner.slow_check(phase, inner.nodes.load(Ordering::Relaxed)),
        }
    }
}

/// Emits the `govern.tripped` trace event and bumps the global counters
/// (one total, one per phase) before handing the error back.
fn trip(e: GovernError) -> GovernError {
    rega_obs::event!(
        "govern.tripped",
        kind = e.kind(),
        phase = e.phase(),
        nodes = e.nodes(),
        elapsed_ms = e.elapsed_ms(),
    );
    let registry = rega_obs::global();
    registry.counter("govern.tripped").inc();
    registry
        .counter(&format!("govern.tripped.{}", e.phase()))
        .inc();
    e
}

/// A governed construction hit one of its limits. Every variant carries
/// partial-progress diagnostics: the phase that tripped, nodes expanded so
/// far across the budget, and elapsed wall-clock time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GovernError {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Construction phase that observed the trip.
        phase: &'static str,
        /// Nodes expanded across the budget when it tripped.
        nodes: u64,
        /// Wall-clock milliseconds since the budget started.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// The expansion-count ceiling was reached (enforced exactly).
    NodeBudgetExceeded {
        /// Construction phase that observed the trip.
        phase: &'static str,
        /// Nodes expanded across the budget when it tripped.
        nodes: u64,
        /// Wall-clock milliseconds since the budget started.
        elapsed_ms: u64,
        /// The configured node ceiling.
        max_nodes: u64,
    },
    /// The distinct-interned-type ceiling was crossed.
    MemBudgetExceeded {
        /// Construction phase that observed the trip.
        phase: &'static str,
        /// Nodes expanded across the budget when it tripped.
        nodes: u64,
        /// Wall-clock milliseconds since the budget started.
        elapsed_ms: u64,
        /// Distinct σ-types interned when the check ran.
        distinct_types: usize,
        /// The configured ceiling on distinct interned types.
        max_types: usize,
    },
    /// The cancellation token was flipped.
    Cancelled {
        /// Construction phase that observed the trip.
        phase: &'static str,
        /// Nodes expanded across the budget when it tripped.
        nodes: u64,
        /// Wall-clock milliseconds since the budget started.
        elapsed_ms: u64,
    },
}

impl GovernError {
    /// Short machine-readable discriminant (`deadline`, `nodes`, `mem`,
    /// `cancelled`) — used as the `kind` field of structured CLI errors and
    /// the `govern.tripped` trace event.
    pub fn kind(&self) -> &'static str {
        match self {
            GovernError::DeadlineExceeded { .. } => "deadline",
            GovernError::NodeBudgetExceeded { .. } => "nodes",
            GovernError::MemBudgetExceeded { .. } => "mem",
            GovernError::Cancelled { .. } => "cancelled",
        }
    }

    /// The construction phase that observed the trip.
    pub fn phase(&self) -> &'static str {
        match self {
            GovernError::DeadlineExceeded { phase, .. }
            | GovernError::NodeBudgetExceeded { phase, .. }
            | GovernError::MemBudgetExceeded { phase, .. }
            | GovernError::Cancelled { phase, .. } => phase,
        }
    }

    /// Nodes expanded across the budget when it tripped.
    pub fn nodes(&self) -> u64 {
        match self {
            GovernError::DeadlineExceeded { nodes, .. }
            | GovernError::NodeBudgetExceeded { nodes, .. }
            | GovernError::MemBudgetExceeded { nodes, .. }
            | GovernError::Cancelled { nodes, .. } => *nodes,
        }
    }

    /// Wall-clock milliseconds since the budget started.
    pub fn elapsed_ms(&self) -> u64 {
        match self {
            GovernError::DeadlineExceeded { elapsed_ms, .. }
            | GovernError::NodeBudgetExceeded { elapsed_ms, .. }
            | GovernError::MemBudgetExceeded { elapsed_ms, .. }
            | GovernError::Cancelled { elapsed_ms, .. } => *elapsed_ms,
        }
    }
}

impl fmt::Display for GovernError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovernError::DeadlineExceeded {
                phase,
                nodes,
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline of {deadline_ms} ms exceeded in `{phase}` \
                 ({nodes} nodes expanded in {elapsed_ms} ms)"
            ),
            GovernError::NodeBudgetExceeded {
                phase,
                nodes,
                elapsed_ms,
                max_nodes,
            } => write!(
                f,
                "node budget of {max_nodes} exceeded in `{phase}` \
                 ({nodes} nodes expanded in {elapsed_ms} ms)"
            ),
            GovernError::MemBudgetExceeded {
                phase,
                nodes,
                elapsed_ms,
                distinct_types,
                max_types,
            } => write!(
                f,
                "interned-type budget of {max_types} exceeded in `{phase}` \
                 ({distinct_types} distinct types, {nodes} nodes expanded in {elapsed_ms} ms)"
            ),
            GovernError::Cancelled {
                phase,
                nodes,
                elapsed_ms,
            } => write!(
                f,
                "cancelled in `{phase}` ({nodes} nodes expanded in {elapsed_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for GovernError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_obs::ManualClock;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10 * STRIDE {
            b.tick("test").unwrap();
        }
        assert!(b.is_unlimited());
        assert_eq!(b.nodes(), 0);
        // A disconnected token: cancelling is a no-op.
        b.cancel_token().cancel();
        b.check("test").unwrap();
    }

    #[test]
    fn node_ceiling_is_exact() {
        let b = Budget::start(&BudgetSpec {
            max_nodes: Some(10),
            ..BudgetSpec::default()
        });
        for _ in 0..10 {
            b.tick("test").unwrap();
        }
        let err = b.tick("test").unwrap_err();
        assert_eq!(
            err,
            GovernError::NodeBudgetExceeded {
                phase: "test",
                nodes: 11,
                elapsed_ms: err.elapsed_ms(),
                max_nodes: 10,
            }
        );
    }

    #[test]
    fn deadline_observed_within_one_stride() {
        let clock = Arc::new(ManualClock::new());
        let b = Budget::start_with_clock(
            &BudgetSpec {
                deadline_ms: Some(5),
                ..BudgetSpec::default()
            },
            clock.clone(),
        );
        // Before the deadline: a full stride of ticks passes.
        for _ in 0..STRIDE {
            b.tick("test").unwrap();
        }
        clock.advance(6_000_000);
        let err = (0..STRIDE)
            .find_map(|_| b.tick("test").err())
            .expect("deadline must trip within one stride");
        assert_eq!(err.kind(), "deadline");
        assert_eq!(err.phase(), "test");
        assert!(err.elapsed_ms() >= 6);
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::start(&BudgetSpec::none());
        let clone = b.clone();
        b.cancel_token().cancel();
        assert!(clone.cancel_token().is_cancelled());
        let err = clone.check("test").unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        // And the amortized path sees it too.
        let err = (0..STRIDE)
            .find_map(|_| b.tick("test").err())
            .expect("cancellation must trip within one stride");
        assert_eq!(err.kind(), "cancelled");
    }

    #[test]
    fn mem_ceiling_checked_on_stride() {
        let b = Budget::start(&BudgetSpec {
            max_types: Some(3),
            ..BudgetSpec::default()
        });
        let mut evaluated = 0u32;
        for _ in 0..STRIDE - 1 {
            b.tick_mem("test", || {
                evaluated += 1;
                100
            })
            .unwrap();
        }
        assert_eq!(evaluated, 0, "closure must stay off the fast path");
        let err = b
            .tick_mem("test", || {
                evaluated += 1;
                100
            })
            .unwrap_err();
        assert_eq!(evaluated, 1);
        assert_eq!(err.kind(), "mem");
    }

    #[test]
    fn tightened_takes_the_stricter_of_each_limit() {
        let server = BudgetSpec {
            deadline_ms: Some(1_000),
            max_nodes: None,
            max_types: Some(10_000),
        };
        let tenant = BudgetSpec {
            deadline_ms: Some(250),
            max_nodes: Some(50_000),
            max_types: Some(1_000_000), // cannot loosen the server's ceiling
        };
        let got = server.tightened(&tenant);
        assert_eq!(
            got,
            BudgetSpec {
                deadline_ms: Some(250),
                max_nodes: Some(50_000),
                max_types: Some(10_000),
            }
        );
        // Commutative, and `none` is the identity.
        assert_eq!(got, tenant.tightened(&server));
        assert_eq!(server.tightened(&BudgetSpec::none()), server);
        assert_eq!(BudgetSpec::none().tightened(&server), server);
    }

    #[test]
    fn leaked_flag_aliases_the_token() {
        let token = CancelToken::new();
        let flag = token.leaked_flag();
        assert!(!token.is_cancelled());
        flag.store(true, Ordering::SeqCst);
        assert!(token.is_cancelled());
    }
}
