//! `TypeBits`: a fixed-width bitset encoding of σ-types.
//!
//! Register automata in practice have *few* registers (the paper's examples
//! use k ≤ 2), so the term universe of a σ-type — `x̄ ∪ ȳ ∪ c̄` — fits in a
//! machine word's worth of bits. Following the finite exact small-int
//! representation idea (Chen–Lengál–Tan–Wu), this module packs a σ-type
//! into a [`TypeBits`] value:
//!
//! * (in)equality literals over term pairs as bits of a `u128` (triangular
//!   pair indexing over ≤ [`MAX_TERMS`] terms),
//! * degenerate self-literals `t = t` / `t ≠ t` as `u16` masks (kept so the
//!   encoding is *lossless* at the literal level),
//! * unary relational literals as `u16` masks per relation, and
//! * binary relational literals as 16×16 bit matrices per relation.
//!
//! Every σ-type operation the symbolic constructions use — satisfiability,
//! saturation, restriction, joint satisfiability of consecutive types,
//! agreement, completion — then becomes a handful of word operations: the
//! equality closure is computed by merging `u16` class masks (small-int
//! partition refinement) instead of a heap-allocated union-find plus hash
//! maps, and all consistency checks are mask intersections.
//!
//! The encoding is *exact*, not approximate: [`TypeBitsSpace::encode`] /
//! [`TypeBitsSpace::decode`] round-trip every representable [`SigmaType`]
//! identically, and each word-level operation computes the same function as
//! its [`SigmaType`] counterpart (pinned by the `typebits_equivalence`
//! differential suite). Inputs outside the supported fragment — more than
//! [`MAX_TERMS`] terms, more than [`MAX_RELS`] relations, or arities other
//! than 1 and 2 — are *gated*, not mis-handled: [`TypeBitsSpace::new`] and
//! [`TypeBitsSpace::encode`] return `None` and callers fall back to the
//! general [`SigmaType`]/[`SatCache`](crate::SatCache) path.

use crate::error::DataError;
use crate::govern::Budget;
use crate::literal::Literal;
use crate::schema::{ConstSym, Schema};
use crate::term::Term;
use crate::types::SigmaType;

/// Maximum universe size (terms) a [`TypeBitsSpace`] supports: class masks
/// are `u16` and term pairs index into a `u128` (120 pairs over 16 terms).
pub const MAX_TERMS: usize = 16;

/// Maximum number of relation symbols a [`TypeBitsSpace`] supports.
pub const MAX_RELS: usize = 4;

/// Triangular index of the unordered pair `{i, j}` with `i < j`.
#[inline]
fn pair_bit(i: usize, j: usize) -> u128 {
    debug_assert!(i < j && j < MAX_TERMS);
    1u128 << (j * (j - 1) / 2 + i)
}

/// Inverse of [`pair_bit`]: `PAIRS[p]` is the `(i, j)` pair at bit `p`.
const PAIRS: [(u8, u8); 128] = {
    let mut t = [(0u8, 0u8); 128];
    let mut j = 1;
    while j < MAX_TERMS {
        let mut i = 0;
        while i < j {
            t[j * (j - 1) / 2 + i] = (i as u8, j as u8);
            i += 1;
        }
        j += 1;
    }
    t
};

/// Iterates the set bits of a `u16` mask.
#[inline]
fn bits(mask: u16) -> impl Iterator<Item = usize> {
    let mut rem = mask;
    std::iter::from_fn(move || {
        if rem == 0 {
            return None;
        }
        let i = rem.trailing_zeros() as usize;
        rem &= rem - 1;
        Some(i)
    })
}

/// Iterates the set pair-bits of a `u128`, decoded to `(i, j)` with `i < j`.
#[inline]
fn pairs(set: u128) -> impl Iterator<Item = (usize, usize)> {
    let mut rem = set;
    std::iter::from_fn(move || {
        if rem == 0 {
            return None;
        }
        let p = rem.trailing_zeros() as usize;
        rem &= rem - 1;
        let (i, j) = PAIRS[p];
        Some((i as usize, j as usize))
    })
}

/// Union of the class masks of every term in `mask`.
#[inline]
fn lift(cm: &[u16; MAX_TERMS], mask: u16) -> u16 {
    let mut out = 0;
    for i in bits(mask) {
        out |= cm[i];
    }
    out
}

/// A σ-type packed into fixed-width bitsets. Values are only meaningful
/// relative to the [`TypeBitsSpace`] that produced them (which fixes the
/// term numbering); the derived `Ord` is an arbitrary total order used for
/// canonical sorting, not a semantic one.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeBits {
    /// Equality literals between *distinct* terms, as triangular pair bits.
    eq: u128,
    /// Inequality literals between distinct terms.
    neq: u128,
    /// Trivial `t = t` literals (lossless round-trip of degenerate input).
    self_eq: u16,
    /// Trivial `t ≠ t` literals (syntactically representable, always unsat).
    self_neq: u16,
    /// Positive unary literals: one term mask per relation.
    un_pos: [u16; MAX_RELS],
    /// Negative unary literals.
    un_neg: [u16; MAX_RELS],
    /// Positive binary literals: `bin_pos[r][i]` has bit `j` iff `R(i, j)`.
    bin_pos: [[u16; MAX_TERMS]; MAX_RELS],
    /// Negative binary literals.
    bin_neg: [[u16; MAX_TERMS]; MAX_RELS],
}

impl TypeBits {
    /// The empty (always-true) type.
    pub fn empty() -> TypeBits {
        TypeBits {
            eq: 0,
            neq: 0,
            self_eq: 0,
            self_neq: 0,
            un_pos: [0; MAX_RELS],
            un_neg: [0; MAX_RELS],
            bin_pos: [[0; MAX_TERMS]; MAX_RELS],
            bin_neg: [[0; MAX_TERMS]; MAX_RELS],
        }
    }

    /// Whether no literal bit is set.
    pub fn is_empty(&self) -> bool {
        *self == TypeBits::empty()
    }

    /// Number of encoded literals.
    pub fn len(&self) -> usize {
        let mut n = (self.eq.count_ones()
            + self.neq.count_ones()
            + self.self_eq.count_ones()
            + self.self_neq.count_ones()) as usize;
        for r in 0..MAX_RELS {
            n += (self.un_pos[r].count_ones() + self.un_neg[r].count_ones()) as usize;
            for i in 0..MAX_TERMS {
                n += (self.bin_pos[r][i].count_ones() + self.bin_neg[r][i].count_ones()) as usize;
            }
        }
        n
    }

    /// In-place union of the literal bits (conjunction of the two types).
    fn or_assign(&mut self, other: &TypeBits) {
        self.eq |= other.eq;
        self.neq |= other.neq;
        self.self_eq |= other.self_eq;
        self.self_neq |= other.self_neq;
        for r in 0..MAX_RELS {
            self.un_pos[r] |= other.un_pos[r];
            self.un_neg[r] |= other.un_neg[r];
            for i in 0..MAX_TERMS {
                self.bin_pos[r][i] |= other.bin_pos[r][i];
                self.bin_neg[r][i] |= other.bin_neg[r][i];
            }
        }
    }
}

/// The context a [`TypeBits`] value lives in: a schema and register count,
/// fixing the term numbering `x₀…x_{k-1}, y₀…y_{k-1}, c₀…c_{C-1}` (the same
/// order as [`SigmaType::universe`], so term index order coincides with
/// [`Term`]'s `Ord`). Construction fails (`None`) outside the supported
/// fragment; see the module docs.
#[derive(Clone, Debug)]
pub struct TypeBitsSpace {
    schema: Schema,
    k: u16,
    n: usize,
    num_rels: usize,
    /// Arity (1 or 2) per relation symbol, indexed by `RelSym.0`.
    arity: [u8; MAX_RELS],
    joint_supported: bool,
}

/// An undecided atom found by the completion search, at the bit level.
#[derive(Clone, Copy, Debug)]
enum Atom {
    /// Equality between the representative terms of two classes.
    Eq(usize, usize),
    /// Unary atom `R(t)` on a class representative.
    Un(usize, usize),
    /// Binary atom `R(s, t)` on class representatives.
    Bin(usize, usize, usize),
}

impl TypeBitsSpace {
    /// A space for `k`-register types over `schema`, or `None` if the
    /// fragment is unsupported (too many terms or relations, or an arity
    /// other than 1 or 2).
    pub fn new(schema: &Schema, k: u16) -> Option<TypeBitsSpace> {
        let c = schema.num_constants();
        let n = 2 * k as usize + c;
        if n > MAX_TERMS {
            return None;
        }
        let num_rels = schema.num_relations();
        if num_rels > MAX_RELS {
            return None;
        }
        let mut arity = [0u8; MAX_RELS];
        for r in schema.relations() {
            let a = schema.arity(r);
            if a != 1 && a != 2 {
                return None;
            }
            arity[r.0 as usize] = a as u8;
        }
        Some(TypeBitsSpace {
            schema: schema.clone(),
            k,
            n,
            num_rels,
            arity,
            // Joint satisfiability needs three consecutive register tuples.
            joint_supported: 3 * k as usize + c <= MAX_TERMS,
        })
    }

    /// The register count of the types in this space.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The universe size `2k + C`.
    pub fn num_terms(&self) -> usize {
        self.n
    }

    /// The schema the space is relative to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether [`TypeBitsSpace::jointly_satisfiable`] is available
    /// (`3k + C ≤ MAX_TERMS`; the joint check lives in a wider universe).
    pub fn supports_joint(&self) -> bool {
        self.joint_supported
    }

    /// The bit index of a term, or `None` if out of range for this space.
    fn term_index(&self, t: Term) -> Option<usize> {
        let k = self.k as usize;
        match t {
            Term::X(i) if (i.0 as usize) < k => Some(i.0 as usize),
            Term::Y(i) if (i.0 as usize) < k => Some(k + i.0 as usize),
            Term::Const(c) if (c.0 as usize) < self.schema.num_constants() => {
                Some(2 * k + c.0 as usize)
            }
            _ => None,
        }
    }

    /// The term at a bit index (inverse of [`TypeBitsSpace::term_index`]).
    fn term_at(&self, i: usize) -> Term {
        let k = self.k as usize;
        debug_assert!(i < self.n);
        if i < k {
            Term::x(i as u16)
        } else if i < 2 * k {
            Term::y((i - k) as u16)
        } else {
            Term::Const(ConstSym((i - 2 * k) as u32))
        }
    }

    /// Losslessly encodes a σ-type, or `None` if the type does not fit this
    /// space (wrong `k`, out-of-range term, unknown relation, bad arity).
    pub fn encode(&self, ty: &SigmaType) -> Option<TypeBits> {
        if ty.k() != self.k {
            return None;
        }
        let mut b = TypeBits::empty();
        for lit in ty.literals() {
            match lit {
                Literal::Eq(s, t) => {
                    let (i, j) = (self.term_index(*s)?, self.term_index(*t)?);
                    if i == j {
                        b.self_eq |= 1 << i;
                    } else {
                        b.eq |= pair_bit(i.min(j), i.max(j));
                    }
                }
                Literal::Neq(s, t) => {
                    let (i, j) = (self.term_index(*s)?, self.term_index(*t)?);
                    if i == j {
                        b.self_neq |= 1 << i;
                    } else {
                        b.neq |= pair_bit(i.min(j), i.max(j));
                    }
                }
                Literal::Rel {
                    rel,
                    args,
                    positive,
                } => {
                    let r = rel.0 as usize;
                    if r >= self.num_rels || args.len() != self.arity[r] as usize {
                        return None;
                    }
                    match self.arity[r] {
                        1 => {
                            let i = self.term_index(args[0])?;
                            if *positive {
                                b.un_pos[r] |= 1 << i;
                            } else {
                                b.un_neg[r] |= 1 << i;
                            }
                        }
                        _ => {
                            let (i, j) = (self.term_index(args[0])?, self.term_index(args[1])?);
                            if *positive {
                                b.bin_pos[r][i] |= 1 << j;
                            } else {
                                b.bin_neg[r][i] |= 1 << j;
                            }
                        }
                    }
                }
            }
        }
        Some(b)
    }

    /// Decodes back to the σ-type [`TypeBitsSpace::encode`] came from.
    /// Term-index order coincides with [`Term`]'s order, so the emitted
    /// (in)equality literals are already canonical.
    pub fn decode(&self, b: &TypeBits) -> SigmaType {
        let mut lits = Vec::with_capacity(b.len());
        for i in bits(b.self_eq) {
            lits.push(Literal::eq(self.term_at(i), self.term_at(i)));
        }
        for i in bits(b.self_neq) {
            lits.push(Literal::neq(self.term_at(i), self.term_at(i)));
        }
        for (i, j) in pairs(b.eq) {
            lits.push(Literal::eq(self.term_at(i), self.term_at(j)));
        }
        for (i, j) in pairs(b.neq) {
            lits.push(Literal::neq(self.term_at(i), self.term_at(j)));
        }
        for r in 0..self.num_rels {
            let sym = crate::schema::RelSym(r as u32);
            match self.arity[r] {
                1 => {
                    for i in bits(b.un_pos[r]) {
                        lits.push(Literal::rel(sym, vec![self.term_at(i)]));
                    }
                    for i in bits(b.un_neg[r]) {
                        lits.push(Literal::not_rel(sym, vec![self.term_at(i)]));
                    }
                }
                _ => {
                    for i in 0..self.n {
                        for j in bits(b.bin_pos[r][i]) {
                            lits.push(Literal::rel(sym, vec![self.term_at(i), self.term_at(j)]));
                        }
                        for j in bits(b.bin_neg[r][i]) {
                            lits.push(Literal::not_rel(
                                sym,
                                vec![self.term_at(i), self.term_at(j)],
                            ));
                        }
                    }
                }
            }
        }
        SigmaType::new(self.k, lits)
    }

    /// Equality closure over `n` terms: the class mask (bitset of members)
    /// of every term, or `None` if the literals are inconsistent — exactly
    /// when [`SigmaType::analyze`] returns [`DataError::Unsatisfiable`].
    fn closure_raw(&self, n: usize, b: &TypeBits) -> Option<[u16; MAX_TERMS]> {
        let mut cm = [0u16; MAX_TERMS];
        for (i, m) in cm.iter_mut().enumerate().take(n) {
            *m = 1 << i;
        }
        // Partition refinement by mask merging: each equality literal
        // unions two class masks and broadcasts the result to all members.
        for (i, j) in pairs(b.eq) {
            if cm[i] & (1 << j) == 0 {
                let m = cm[i] | cm[j];
                for t in bits(m) {
                    cm[t] = m;
                }
            }
        }
        // `t ≠ t` is unsatisfiable outright.
        if b.self_neq != 0 {
            return None;
        }
        // An inequality inside one class is a contradiction.
        for (i, j) in pairs(b.neq) {
            if cm[i] & (1 << j) != 0 {
                return None;
            }
        }
        // A relational atom forced both positive and negative on the same
        // class tuple is a contradiction.
        for r in 0..self.num_rels {
            if self.arity[r] == 1 {
                if lift(&cm, b.un_pos[r]) & b.un_neg[r] != 0 {
                    return None;
                }
            } else {
                // Lift the positive matrix to class level (rows keyed by
                // class representative, columns class-closed), then check
                // the negative entries against it.
                let mut lifted = [0u16; MAX_TERMS];
                for i in 0..n {
                    let row = b.bin_pos[r][i];
                    if row != 0 {
                        lifted[cm[i].trailing_zeros() as usize] |= lift(&cm, row);
                    }
                }
                for i in 0..n {
                    let row = b.bin_neg[r][i];
                    if row != 0 && lifted[cm[i].trailing_zeros() as usize] & row != 0 {
                        return None;
                    }
                }
            }
        }
        Some(cm)
    }

    fn closure(&self, b: &TypeBits) -> Option<[u16; MAX_TERMS]> {
        self.closure_raw(self.n, b)
    }

    /// Word-level [`SigmaType::is_satisfiable`].
    pub fn is_consistent(&self, b: &TypeBits) -> bool {
        self.closure(b).is_some()
    }

    /// Saturation given a precomputed closure: all implied literals, no
    /// undecided and no degenerate ones — the image of
    /// [`TypeAnalysis::to_saturated_type`](crate::types::TypeAnalysis).
    fn saturate_with(&self, b: &TypeBits, cm: &[u16; MAX_TERMS]) -> TypeBits {
        let n = self.n;
        let mut out = TypeBits::empty();
        // All intra-class pairs.
        for j in 1..n {
            for (i, &m) in cm.iter().enumerate().take(j) {
                if m & (1 << j) != 0 {
                    out.eq |= pair_bit(i, j);
                }
            }
        }
        // All member pairs across ≠-related classes, via an adjacency mask.
        let mut adj = [0u16; MAX_TERMS];
        for (i, j) in pairs(b.neq) {
            let (ma, mb) = (cm[i], cm[j]);
            for t in bits(ma) {
                adj[t] |= mb;
            }
            for t in bits(mb) {
                adj[t] |= ma;
            }
        }
        for j in 1..n {
            for (i, &m) in adj.iter().enumerate().take(j) {
                if m & (1 << j) != 0 {
                    out.neq |= pair_bit(i, j);
                }
            }
        }
        // Relational facts expanded over class members.
        for r in 0..self.num_rels {
            if self.arity[r] == 1 {
                out.un_pos[r] = lift(cm, b.un_pos[r]);
                out.un_neg[r] = lift(cm, b.un_neg[r]);
            } else {
                for i in 0..n {
                    let pos = b.bin_pos[r][i];
                    if pos != 0 {
                        let cols = lift(cm, pos);
                        for t in bits(cm[i]) {
                            out.bin_pos[r][t] |= cols;
                        }
                    }
                    let neg = b.bin_neg[r][i];
                    if neg != 0 {
                        let cols = lift(cm, neg);
                        for t in bits(cm[i]) {
                            out.bin_neg[r][t] |= cols;
                        }
                    }
                }
            }
        }
        out
    }

    /// Word-level [`SigmaType::saturate`] (`None` iff unsatisfiable).
    pub fn saturate(&self, b: &TypeBits) -> Option<TypeBits> {
        let cm = self.closure(b)?;
        Some(self.saturate_with(b, &cm))
    }

    /// Keeps the literals whose terms are all mapped, renumbering them.
    /// `map` must be monotone on its domain so pair bits stay canonical.
    fn remap(&self, b: &TypeBits, map: &[Option<usize>; MAX_TERMS]) -> TypeBits {
        let map_mask = |mask: u16| -> u16 {
            let mut out = 0;
            for i in bits(mask) {
                if let Some(m) = map[i] {
                    out |= 1 << m;
                }
            }
            out
        };
        let mut out = TypeBits::empty();
        for (i, j) in pairs(b.eq) {
            if let (Some(a), Some(c)) = (map[i], map[j]) {
                debug_assert!(a < c, "remap must be monotone");
                out.eq |= pair_bit(a, c);
            }
        }
        for (i, j) in pairs(b.neq) {
            if let (Some(a), Some(c)) = (map[i], map[j]) {
                debug_assert!(a < c, "remap must be monotone");
                out.neq |= pair_bit(a, c);
            }
        }
        out.self_eq = map_mask(b.self_eq);
        out.self_neq = map_mask(b.self_neq);
        for r in 0..self.num_rels {
            if self.arity[r] == 1 {
                out.un_pos[r] = map_mask(b.un_pos[r]);
                out.un_neg[r] = map_mask(b.un_neg[r]);
            } else {
                for (i, &m) in map.iter().enumerate().take(self.n) {
                    let Some(a) = m else { continue };
                    out.bin_pos[r][a] = map_mask(b.bin_pos[r][i]);
                    out.bin_neg[r][a] = map_mask(b.bin_neg[r][i]);
                }
            }
        }
        out
    }

    /// The space the result of `restrict_registers(·, m)` lives in.
    pub fn sub_space(&self, m: u16) -> Option<TypeBitsSpace> {
        TypeBitsSpace::new(&self.schema, m)
    }

    /// Word-level [`SigmaType::restrict_registers`]: saturate, keep the
    /// literals over the first `m` registers plus constants, renumber into
    /// the `m`-register universe. `None` if unsatisfiable or if the target
    /// universe does not fit. Results live in [`TypeBitsSpace::sub_space`].
    pub fn restrict_registers(&self, b: &TypeBits, m: u16) -> Option<TypeBits> {
        let (k, mu) = (self.k as usize, m as usize);
        if 2 * mu + self.schema.num_constants() > MAX_TERMS {
            return None;
        }
        let sat = self.saturate(b)?;
        let mut map = [None; MAX_TERMS];
        for i in 0..k.min(mu) {
            map[i] = Some(i); // x_i
            map[k + i] = Some(mu + i); // y_i
        }
        for c in 0..self.schema.num_constants() {
            map[2 * k + c] = Some(2 * mu + c);
        }
        Some(self.remap(&sat, &map))
    }

    /// Word-level [`SigmaType::pre_type`]: the saturated restriction to
    /// `x̄ ∪ c̄`, in the same space. `None` iff unsatisfiable.
    pub fn pre_type(&self, b: &TypeBits) -> Option<TypeBits> {
        let sat = self.saturate(b)?;
        let mut map = [None; MAX_TERMS];
        for (i, m) in map.iter_mut().enumerate().take(self.k as usize) {
            *m = Some(i);
        }
        for c in 0..self.schema.num_constants() {
            map[2 * self.k as usize + c] = Some(2 * self.k as usize + c);
        }
        Some(self.remap(&sat, &map))
    }

    /// Word-level [`SigmaType::post_type_as_pre`]: the saturated
    /// restriction to `ȳ ∪ c̄` with `y_i ↦ x_i`, in the same space.
    pub fn post_type_as_pre(&self, b: &TypeBits) -> Option<TypeBits> {
        let sat = self.saturate(b)?;
        let k = self.k as usize;
        let mut map = [None; MAX_TERMS];
        for i in 0..k {
            map[k + i] = Some(i); // y_i ↦ x_i
        }
        for c in 0..self.schema.num_constants() {
            map[2 * k + c] = Some(2 * k + c);
        }
        Some(self.remap(&sat, &map))
    }

    /// Word-level [`SigmaType::agrees_with`] (condition (iii) of symbolic
    /// control traces). `None` iff either type is unsatisfiable.
    pub fn agrees_with(&self, a: &TypeBits, b: &TypeBits) -> Option<bool> {
        let post = self.post_type_as_pre(a)?;
        let pre = self.pre_type(b)?;
        Some(post == pre)
    }

    /// Word-level [`SigmaType::jointly_satisfiable_with`]: are `a` (at step
    /// n) and `b` (at step n+1) satisfiable over shared middle registers?
    /// Encoded over the `3k + C` universe `d_n d_{n+1} d_{n+2} c̄`; `None`
    /// when that universe does not fit ([`TypeBitsSpace::supports_joint`]).
    pub fn jointly_satisfiable(&self, a: &TypeBits, b: &TypeBits) -> Option<bool> {
        if !self.joint_supported {
            return None;
        }
        let (k, c) = (self.k as usize, self.schema.num_constants());
        let mut map_a = [None; MAX_TERMS];
        let mut map_b = [None; MAX_TERMS];
        for i in 0..k {
            map_a[i] = Some(i); // a's x̄ = d_n
            map_a[k + i] = Some(k + i); // a's ȳ = d_{n+1}
            map_b[i] = Some(k + i); // b's x̄ = d_{n+1}
            map_b[k + i] = Some(2 * k + i); // b's ȳ = d_{n+2}
        }
        for j in 0..c {
            map_a[2 * k + j] = Some(3 * k + j);
            map_b[2 * k + j] = Some(3 * k + j);
        }
        let mut joint = self.remap(a, &map_a);
        joint.or_assign(&self.remap(b, &map_b));
        Some(self.closure_raw(3 * k + c, &joint).is_some())
    }

    /// Finds the first undecided atom in the same deterministic order as
    /// `TypeAnalysis::undecided_atom`: class-pair equalities (classes in
    /// least-member order), then relational atoms in flat tuple order.
    fn undecided(&self, b: &TypeBits, cm: &[u16; MAX_TERMS]) -> Option<Atom> {
        let n = self.n;
        // Class representatives (least members), in ascending order — the
        // same dense class order the `SigmaType` analysis uses.
        let mut reps = [0usize; MAX_TERMS];
        let mut ncl = 0;
        for (i, m) in cm.iter().enumerate().take(n) {
            if m.trailing_zeros() as usize == i {
                reps[ncl] = i;
                ncl += 1;
            }
        }
        // Class-level ≠ adjacency.
        let mut adj = [0u16; MAX_TERMS];
        for (i, j) in pairs(b.neq) {
            let (ma, mb) = (cm[i], cm[j]);
            for t in bits(ma) {
                adj[t] |= mb;
            }
            for t in bits(mb) {
                adj[t] |= ma;
            }
        }
        for a in 0..ncl {
            for bc in (a + 1)..ncl {
                let (i, j) = (reps[a], reps[bc]);
                if adj[i] & (1 << j) == 0 {
                    return Some(Atom::Eq(i, j));
                }
            }
        }
        let row_hit = |matrix: &[u16; MAX_TERMS], m0: u16, m1: u16| -> bool {
            bits(m0).any(|i| matrix[i] & m1 != 0)
        };
        for r in 0..self.num_rels {
            if self.arity[r] == 1 {
                for &rep in reps.iter().take(ncl) {
                    let m = cm[rep];
                    if b.un_pos[r] & m == 0 && b.un_neg[r] & m == 0 {
                        return Some(Atom::Un(r, rep));
                    }
                }
            } else {
                // Flat tuple order: the first argument varies fastest.
                for flat in 0..ncl * ncl {
                    let (m0, m1) = (cm[reps[flat % ncl]], cm[reps[flat / ncl]]);
                    if !row_hit(&b.bin_pos[r], m0, m1) && !row_hit(&b.bin_neg[r], m0, m1) {
                        return Some(Atom::Bin(r, reps[flat % ncl], reps[flat / ncl]));
                    }
                }
            }
        }
        None
    }

    /// `b` extended with `atom` asserted positively or negatively.
    fn with_atom(&self, b: &TypeBits, atom: Atom, positive: bool) -> TypeBits {
        let mut out = b.clone();
        match atom {
            Atom::Eq(i, j) => {
                if positive {
                    out.eq |= pair_bit(i, j);
                } else {
                    out.neq |= pair_bit(i, j);
                }
            }
            Atom::Un(r, i) => {
                if positive {
                    out.un_pos[r] |= 1 << i;
                } else {
                    out.un_neg[r] |= 1 << i;
                }
            }
            Atom::Bin(r, i, j) => {
                if positive {
                    out.bin_pos[r][i] |= 1 << j;
                } else {
                    out.bin_neg[r][i] |= 1 << j;
                }
            }
        }
        out
    }

    /// Word-level [`SigmaType::completions`].
    pub fn completions(&self, b: &TypeBits) -> Result<Vec<TypeBits>, DataError> {
        self.completions_governed(b, &Budget::unlimited())
    }

    /// Word-level [`SigmaType::completions_governed`]: all complete
    /// satisfiable extensions, saturated, in a canonical (bit) order. The
    /// worklist ticks the budget once per popped node under the
    /// `typebits.completions` phase. The decoded result set equals the
    /// [`SigmaType`] one (the set of completions is canonical, independent
    /// of branching order).
    pub fn completions_governed(
        &self,
        b: &TypeBits,
        budget: &Budget,
    ) -> Result<Vec<TypeBits>, DataError> {
        if self.closure(b).is_none() {
            return Err(DataError::Unsatisfiable);
        }
        let mut done = Vec::new();
        let mut work = vec![b.clone()];
        while let Some(t) = work.pop() {
            budget.tick("typebits.completions")?;
            let Some(cm) = self.closure(&t) else { continue };
            match self.undecided(&t, &cm) {
                None => done.push(self.saturate_with(&t, &cm)),
                Some(atom) => {
                    let pos = self.with_atom(&t, atom, true);
                    let neg = self.with_atom(&t, atom, false);
                    if self.is_consistent(&pos) {
                        work.push(pos);
                    }
                    if self.is_consistent(&neg) {
                        work.push(neg);
                    }
                }
            }
        }
        done.sort();
        done.dedup();
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelSym;

    fn schema() -> Schema {
        Schema::with(&[("P", 1), ("R", 2)], &["c"])
    }

    fn space() -> TypeBitsSpace {
        TypeBitsSpace::new(&schema(), 2).unwrap()
    }

    fn roundtrip(ty: &SigmaType, sp: &TypeBitsSpace) -> SigmaType {
        sp.decode(&sp.encode(ty).unwrap())
    }

    #[test]
    fn gates_unsupported_fragments() {
        // Too many terms: 2·8 + 1 > 16.
        assert!(TypeBitsSpace::new(&schema(), 8).is_none());
        // Arity 3.
        let s3 = Schema::with(&[("T", 3)], &[]);
        assert!(TypeBitsSpace::new(&s3, 1).is_none());
        // Too many relations.
        let many = Schema::with(&[("A", 1), ("B", 1), ("C", 1), ("D", 1), ("E", 1)], &[]);
        assert!(TypeBitsSpace::new(&many, 1).is_none());
        // k = 2 with one constant: joint universe 3·2 + 1 = 7 ≤ 16.
        assert!(space().supports_joint());
    }

    #[test]
    fn encode_decode_roundtrip_including_degenerates() {
        let sp = space();
        let p = schema().relation("P").unwrap();
        let r = schema().relation("R").unwrap();
        let ty = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(0)),  // degenerate t = t
                Literal::neq(Term::y(1), Term::y(1)), // degenerate t ≠ t
                Literal::eq(Term::x(0), Term::y(1)),
                Literal::neq(Term::x(1), Term::cst(0)),
                Literal::rel(p, vec![Term::y(0)]),
                Literal::not_rel(r, vec![Term::x(0), Term::x(0)]),
                Literal::rel(r, vec![Term::cst(0), Term::y(1)]),
            ],
        );
        assert_eq!(roundtrip(&ty, &sp), ty);
        assert_eq!(roundtrip(&SigmaType::empty(2), &sp), SigmaType::empty(2));
    }

    #[test]
    fn encode_rejects_out_of_range() {
        let sp = space();
        assert!(sp
            .encode(&SigmaType::new(2, [Literal::eq(Term::x(0), Term::x(5))]))
            .is_none());
        assert!(sp.encode(&SigmaType::empty(1)).is_none(), "wrong k");
        assert!(sp
            .encode(&SigmaType::new(
                2,
                [Literal::rel(RelSym(7), vec![Term::x(0)])]
            ))
            .is_none());
    }

    #[test]
    fn consistency_matches_analyze() {
        let sp = space();
        let sch = schema();
        let cases = [
            SigmaType::empty(2),
            SigmaType::new(
                2,
                [
                    Literal::eq(Term::x(0), Term::x(1)),
                    Literal::eq(Term::x(1), Term::y(0)),
                    Literal::neq(Term::x(0), Term::y(0)),
                ],
            ),
            SigmaType::new(2, [Literal::neq(Term::x(0), Term::x(0))]),
            SigmaType::new(
                2,
                [
                    Literal::rel(sch.relation("P").unwrap(), vec![Term::x(0)]),
                    Literal::not_rel(sch.relation("P").unwrap(), vec![Term::y(1)]),
                    Literal::eq(Term::x(0), Term::y(1)),
                ],
            ),
        ];
        for ty in &cases {
            let b = sp.encode(ty).unwrap();
            assert_eq!(
                sp.is_consistent(&b),
                ty.analyze(&sch).is_ok(),
                "disagrees on {ty}"
            );
        }
    }

    #[test]
    fn saturate_matches_sigma_type() {
        let sp = space();
        let sch = schema();
        let r = sch.relation("R").unwrap();
        let ty = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(1)),
                Literal::neq(Term::y(0), Term::cst(0)),
                Literal::rel(r, vec![Term::x(0), Term::y(0)]),
            ],
        );
        let b = sp.encode(&ty).unwrap();
        let sat = sp.saturate(&b).unwrap();
        assert_eq!(sp.decode(&sat), ty.saturate(&sch).unwrap());
    }

    #[test]
    fn joint_satisfiability_matches_sigma_type() {
        let sp = space();
        let sch = schema();
        let p = sch.relation("P").unwrap();
        // The incomplete pair from the interning suite: P(x1) then P(x1).
        let t = SigmaType::new(2, [Literal::rel(p, vec![Term::x(0)])]);
        let u = SigmaType::new(
            2,
            [
                Literal::eq(Term::y(0), Term::cst(0)),
                Literal::neq(Term::x(0), Term::cst(0)),
            ],
        );
        for (a, b) in [(&t, &t), (&t, &u), (&u, &t), (&u, &u)] {
            let (ba, bb) = (sp.encode(a).unwrap(), sp.encode(b).unwrap());
            assert_eq!(
                sp.jointly_satisfiable(&ba, &bb).unwrap(),
                a.jointly_satisfiable_with(b, &sch),
                "disagrees on {a} ; {b}"
            );
        }
    }

    #[test]
    fn completions_match_sigma_type() {
        let sch = Schema::with(&[("U", 1)], &[]);
        let sp = TypeBitsSpace::new(&sch, 1).unwrap();
        let ty = SigmaType::empty(1);
        let b = sp.encode(&ty).unwrap();
        let mut got: Vec<SigmaType> = sp
            .completions(&b)
            .unwrap()
            .iter()
            .map(|c| sp.decode(c))
            .collect();
        got.sort();
        assert_eq!(got, ty.completions(&sch).unwrap());
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn completions_are_governed() {
        use crate::govern::BudgetSpec;
        let sch = Schema::with(&[("U", 1)], &[]);
        let sp = TypeBitsSpace::new(&sch, 2).unwrap();
        let b = sp.encode(&SigmaType::empty(2)).unwrap();
        let budget = Budget::start(&BudgetSpec {
            max_nodes: Some(3),
            ..BudgetSpec::default()
        });
        let err = sp.completions_governed(&b, &budget).unwrap_err();
        match err {
            DataError::Govern(g) => assert_eq!(g.phase(), "typebits.completions"),
            other => panic!("expected a govern trip, got {other:?}"),
        }
    }

    #[test]
    fn restriction_matches_sigma_type() {
        let sp = space();
        let sch = schema();
        let ty = SigmaType::new(
            2,
            [
                Literal::eq(Term::x(0), Term::x(1)),
                Literal::eq(Term::x(1), Term::y(0)),
                Literal::neq(Term::y(1), Term::cst(0)),
            ],
        );
        let b = sp.encode(&ty).unwrap();
        for m in 0..=2u16 {
            let sub = sp.sub_space(m).unwrap();
            let got = sub.decode(&sp.restrict_registers(&b, m).unwrap());
            assert_eq!(got, ty.restrict_registers(&sch, m).unwrap(), "m = {m}");
        }
        let pre = sp.decode(&sp.pre_type(&b).unwrap());
        assert_eq!(pre, ty.pre_type(&sch).unwrap());
        let post = sp.decode(&sp.post_type_as_pre(&b).unwrap());
        assert_eq!(post, ty.post_type_as_pre(&sch).unwrap());
    }

    #[test]
    fn agreement_matches_sigma_type() {
        let sp = space();
        let sch = schema();
        let t1 = SigmaType::new(2, [Literal::eq(Term::y(0), Term::y(1))]);
        let t2 = SigmaType::new(2, [Literal::eq(Term::x(0), Term::x(1))]);
        let t3 = SigmaType::new(2, [Literal::neq(Term::x(0), Term::x(1))]);
        for (a, b) in [(&t1, &t2), (&t1, &t3), (&t2, &t3)] {
            let (ba, bb) = (sp.encode(a).unwrap(), sp.encode(b).unwrap());
            assert_eq!(
                sp.agrees_with(&ba, &bb).unwrap(),
                a.agrees_with(b, &sch).unwrap()
            );
        }
    }
}
