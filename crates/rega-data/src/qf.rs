//! Quantifier-free first-order formulas, used as the propositions of LTL-FO
//! (Definition 11 of the paper).
//!
//! LTL-FO propositions speak about the registers before (`x̄`) and after
//! (`ȳ`) the current transition, plus globally-quantified variables `z̄`
//! which are eliminated by the verifier by turning them into constant
//! registers. Unlike [`SigmaType`]s, these formulas admit
//! arbitrary boolean structure.

use crate::database::Database;
use crate::error::DataError;
use crate::literal::Literal;
use crate::schema::{ConstSym, RelSym, Schema};
use crate::term::{RegIdx, Term};
use crate::types::SigmaType;
use crate::value::Value;
use std::fmt;

/// A term of a quantifier-free formula: like [`Term`] but with global
/// variables `z_i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QfTerm {
    /// `x_i` — register `i` before the transition.
    X(RegIdx),
    /// `y_i` — register `i` after the transition.
    Y(RegIdx),
    /// `z_i` — a global variable, universally quantified over the run.
    Z(RegIdx),
    /// A constant symbol.
    Const(ConstSym),
}

impl QfTerm {
    /// Convenience constructors mirroring [`Term`].
    pub fn x(i: u16) -> QfTerm {
        QfTerm::X(RegIdx(i))
    }
    /// `y_i`.
    pub fn y(i: u16) -> QfTerm {
        QfTerm::Y(RegIdx(i))
    }
    /// `z_i`.
    pub fn z(i: u16) -> QfTerm {
        QfTerm::Z(RegIdx(i))
    }
    /// The `c`-th constant.
    pub fn cst(c: u32) -> QfTerm {
        QfTerm::Const(ConstSym(c))
    }

    /// Eliminates global variables by mapping `z_i` to register `base + i`
    /// (the verifier adds `|z̄|` constant registers). Other terms unchanged.
    pub fn z_to_register(self, base: u16) -> Term {
        match self {
            QfTerm::X(i) => Term::X(i),
            QfTerm::Y(i) => Term::Y(i),
            QfTerm::Z(i) => Term::X(RegIdx(base + i.0)),
            QfTerm::Const(c) => Term::Const(c),
        }
    }
}

impl fmt::Display for QfTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QfTerm::X(i) => write!(f, "x{i}"),
            QfTerm::Y(i) => write!(f, "y{i}"),
            QfTerm::Z(i) => write!(f, "z{i}"),
            QfTerm::Const(c) => write!(f, "c{}", c.0 + 1),
        }
    }
}

/// A quantifier-free first-order formula over a schema.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Qf {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// `s = t`.
    Eq(QfTerm, QfTerm),
    /// `R(args)`.
    Rel(RelSym, Vec<QfTerm>),
    /// Negation.
    Not(Box<Qf>),
    /// Conjunction.
    And(Vec<Qf>),
    /// Disjunction.
    Or(Vec<Qf>),
}

impl Qf {
    /// `s ≠ t` as a derived form.
    pub fn neq(s: QfTerm, t: QfTerm) -> Qf {
        Qf::Not(Box::new(Qf::Eq(s, t)))
    }

    /// Implication `p → q` as a derived form.
    pub fn implies(p: Qf, q: Qf) -> Qf {
        Qf::Or(vec![Qf::Not(Box::new(p)), q])
    }

    /// Validates relation symbols, arities and register ranges (`x`/`y`
    /// against `k` registers, `z` against `nz` global variables).
    pub fn validate(&self, schema: &Schema, k: u16, nz: u16) -> Result<(), DataError> {
        let check_term = |t: &QfTerm| -> Result<(), DataError> {
            match t {
                QfTerm::X(i) | QfTerm::Y(i) => {
                    if i.0 >= k {
                        return Err(DataError::RegisterOutOfRange { index: i.0, k });
                    }
                }
                QfTerm::Z(i) => {
                    if i.0 >= nz {
                        return Err(DataError::RegisterOutOfRange { index: i.0, k: nz });
                    }
                }
                QfTerm::Const(c) => {
                    if c.0 as usize >= schema.num_constants() {
                        return Err(DataError::UnknownConstant(format!("c{}", c.0)));
                    }
                }
            }
            Ok(())
        };
        match self {
            Qf::True | Qf::False => Ok(()),
            Qf::Eq(s, t) => {
                check_term(s)?;
                check_term(t)
            }
            Qf::Rel(rel, args) => {
                if rel.0 as usize >= schema.num_relations() {
                    return Err(DataError::UnknownRelation(format!("R{}", rel.0)));
                }
                schema.check_arity(*rel, args.len())?;
                args.iter().try_for_each(check_term)
            }
            Qf::Not(inner) => inner.validate(schema, k, nz),
            Qf::And(parts) | Qf::Or(parts) => {
                parts.iter().try_for_each(|p| p.validate(schema, k, nz))
            }
        }
    }

    /// Evaluates the formula against a database and register/global
    /// valuations (`pre` for `x̄`, `post` for `ȳ`, `zvals` for `z̄`).
    pub fn eval(&self, db: &Database, pre: &[Value], post: &[Value], zvals: &[Value]) -> bool {
        let term = |t: &QfTerm| -> Value {
            match t {
                QfTerm::X(i) => pre[i.idx()],
                QfTerm::Y(i) => post[i.idx()],
                QfTerm::Z(i) => zvals[i.idx()],
                QfTerm::Const(c) => db.constant(*c),
            }
        };
        match self {
            Qf::True => true,
            Qf::False => false,
            Qf::Eq(s, t) => term(s) == term(t),
            Qf::Rel(rel, args) => {
                let vals: Vec<Value> = args.iter().map(term).collect();
                db.contains(*rel, &vals)
            }
            Qf::Not(inner) => !inner.eval(db, pre, post, zvals),
            Qf::And(parts) => parts.iter().all(|p| p.eval(db, pre, post, zvals)),
            Qf::Or(parts) => parts.iter().any(|p| p.eval(db, pre, post, zvals)),
        }
    }

    /// Evaluates the formula under a *complete* σ-type: in a complete
    /// automaton the control trace determines the truth of every atom at
    /// each position (Section 3, "Verification of extended automata").
    ///
    /// Global variables must already have been eliminated (mapped to
    /// registers via [`QfTerm::z_to_register`]); an error is returned otherwise,
    /// or if the type does not decide some atom.
    pub fn eval_under_type(&self, ty: &SigmaType, schema: &Schema) -> Result<bool, DataError> {
        let analysis = ty.analyze(schema)?;
        self.eval_under_analysis(&analysis)
    }

    fn eval_under_analysis(&self, a: &crate::types::TypeAnalysis) -> Result<bool, DataError> {
        let to_term = |t: &QfTerm| -> Result<Term, DataError> {
            match t {
                QfTerm::X(i) => Ok(Term::X(*i)),
                QfTerm::Y(i) => Ok(Term::Y(*i)),
                QfTerm::Const(c) => Ok(Term::Const(*c)),
                QfTerm::Z(_) => Err(DataError::Undetermined(
                    "global variable not eliminated".into(),
                )),
            }
        };
        match self {
            Qf::True => Ok(true),
            Qf::False => Ok(false),
            Qf::Eq(s, t) => {
                let s = to_term(s)?;
                let t = to_term(t)?;
                if a.forced_eq(s, t) {
                    Ok(true)
                } else if a.forced_neq(s, t) {
                    Ok(false)
                } else {
                    Err(DataError::Undetermined(format!("{s} = {t}")))
                }
            }
            Qf::Rel(rel, args) => {
                let classes: Vec<usize> = args
                    .iter()
                    .map(|t| to_term(t).map(|t| a.class_of(t)))
                    .collect::<Result<_, _>>()?;
                if a.has_pos_fact(*rel, &classes) {
                    Ok(true)
                } else if a.has_neg_fact(*rel, &classes) {
                    Ok(false)
                } else {
                    Err(DataError::Undetermined(format!("R{}(..)", rel.0)))
                }
            }
            Qf::Not(inner) => Ok(!inner.eval_under_analysis(a)?),
            Qf::And(parts) => {
                for p in parts {
                    if !p.eval_under_analysis(a)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Qf::Or(parts) => {
                for p in parts {
                    if p.eval_under_analysis(a)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Rewrites global variables `z_i` into registers `base + i` and returns
    /// the literals if the formula is a conjunction of literals, for use as
    /// a transition-type fragment. General boolean structure is kept in
    /// [`Qf`] form; this helper is for the common conjunctive case.
    pub fn map_z_to_registers(&self, base: u16) -> Qf {
        match self {
            Qf::True => Qf::True,
            Qf::False => Qf::False,
            Qf::Eq(s, t) => {
                let f = |t: &QfTerm| match t {
                    QfTerm::Z(i) => QfTerm::X(RegIdx(base + i.0)),
                    other => *other,
                };
                Qf::Eq(f(s), f(t))
            }
            Qf::Rel(rel, args) => Qf::Rel(
                *rel,
                args.iter()
                    .map(|t| match t {
                        QfTerm::Z(i) => QfTerm::X(RegIdx(base + i.0)),
                        other => *other,
                    })
                    .collect(),
            ),
            Qf::Not(inner) => Qf::Not(Box::new(inner.map_z_to_registers(base))),
            Qf::And(parts) => Qf::And(parts.iter().map(|p| p.map_z_to_registers(base)).collect()),
            Qf::Or(parts) => Qf::Or(parts.iter().map(|p| p.map_z_to_registers(base)).collect()),
        }
    }

    /// The number of distinct global variables `z_i` (as `max index + 1`).
    pub fn num_globals(&self) -> u16 {
        fn term_max(t: &QfTerm) -> u16 {
            match t {
                QfTerm::Z(i) => i.0 + 1,
                _ => 0,
            }
        }
        match self {
            Qf::True | Qf::False => 0,
            Qf::Eq(s, t) => term_max(s).max(term_max(t)),
            Qf::Rel(_, args) => args.iter().map(term_max).max().unwrap_or(0),
            Qf::Not(inner) => inner.num_globals(),
            Qf::And(parts) | Qf::Or(parts) => {
                parts.iter().map(|p| p.num_globals()).max().unwrap_or(0)
            }
        }
    }

    /// Collects the atoms of the formula as *positive* type literals
    /// (equalities and relational atoms). Requires the formula to be free
    /// of global variables; returns `None` otherwise. Used by the verifier
    /// to complete transition types exactly where the formula looks.
    pub fn atoms(&self) -> Option<Vec<Literal>> {
        fn conv(t: &QfTerm) -> Option<Term> {
            match t {
                QfTerm::X(i) => Some(Term::X(*i)),
                QfTerm::Y(i) => Some(Term::Y(*i)),
                QfTerm::Const(c) => Some(Term::Const(*c)),
                QfTerm::Z(_) => None,
            }
        }
        fn go(f: &Qf, out: &mut Vec<Literal>) -> Option<()> {
            match f {
                Qf::True | Qf::False => Some(()),
                Qf::Eq(s, t) => {
                    out.push(Literal::eq(conv(s)?, conv(t)?));
                    Some(())
                }
                Qf::Rel(rel, args) => {
                    let args: Option<Vec<Term>> = args.iter().map(conv).collect();
                    out.push(Literal::rel(*rel, args?));
                    Some(())
                }
                Qf::Not(inner) => go(inner, out),
                Qf::And(parts) | Qf::Or(parts) => parts.iter().try_for_each(|p| go(p, out)),
            }
        }
        let mut out = Vec::new();
        go(self, &mut out)?;
        out.sort();
        out.dedup();
        Some(out)
    }

    /// Converts a conjunction of literals (no `z`, no `Or`/`Not` except on
    /// atoms) into type literals, or `None` if the formula is not of that
    /// shape.
    pub fn to_literals(&self) -> Option<Vec<Literal>> {
        fn conv_term(t: &QfTerm) -> Option<Term> {
            match t {
                QfTerm::X(i) => Some(Term::X(*i)),
                QfTerm::Y(i) => Some(Term::Y(*i)),
                QfTerm::Const(c) => Some(Term::Const(*c)),
                QfTerm::Z(_) => None,
            }
        }
        match self {
            Qf::True => Some(vec![]),
            Qf::Eq(s, t) => Some(vec![Literal::eq(conv_term(s)?, conv_term(t)?)]),
            Qf::Rel(rel, args) => {
                let args: Option<Vec<Term>> = args.iter().map(conv_term).collect();
                Some(vec![Literal::rel(*rel, args?)])
            }
            Qf::Not(inner) => match &**inner {
                Qf::Eq(s, t) => Some(vec![Literal::neq(conv_term(s)?, conv_term(t)?)]),
                Qf::Rel(rel, args) => {
                    let args: Option<Vec<Term>> = args.iter().map(conv_term).collect();
                    Some(vec![Literal::not_rel(*rel, args?)])
                }
                _ => None,
            },
            Qf::And(parts) => {
                let mut lits = Vec::new();
                for p in parts {
                    lits.extend(p.to_literals()?);
                }
                Some(lits)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Qf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qf::True => write!(f, "⊤"),
            Qf::False => write!(f, "⊥"),
            Qf::Eq(s, t) => write!(f, "{s}={t}"),
            Qf::Rel(rel, args) => {
                write!(f, "R{}(", rel.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Qf::Not(inner) => write!(f, "¬({inner})"),
            Qf::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Qf::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_concrete() {
        let schema = Schema::with(&[("U", 1)], &[]);
        let u = schema.relation("U").unwrap();
        let mut db = Database::new(schema);
        db.insert(u, vec![Value(5)]).unwrap();
        let f = Qf::And(vec![
            Qf::Rel(u, vec![QfTerm::x(0)]),
            Qf::neq(QfTerm::x(0), QfTerm::y(0)),
        ]);
        assert!(f.eval(&db, &[Value(5)], &[Value(6)], &[]));
        assert!(!f.eval(&db, &[Value(5)], &[Value(5)], &[]));
        assert!(!f.eval(&db, &[Value(6)], &[Value(5)], &[]));
    }

    #[test]
    fn eval_with_globals() {
        let schema = Schema::empty();
        let db = Database::new(schema);
        let f = Qf::Eq(QfTerm::x(0), QfTerm::z(0));
        assert!(f.eval(&db, &[Value(1)], &[Value(1)], &[Value(1)]));
        assert!(!f.eval(&db, &[Value(1)], &[Value(1)], &[Value(2)]));
    }

    #[test]
    fn eval_under_complete_type() {
        let schema = Schema::empty();
        let ty = SigmaType::new(1, [Literal::eq(Term::x(0), Term::y(0))]);
        let f = Qf::Eq(QfTerm::x(0), QfTerm::y(0));
        assert!(f.eval_under_type(&ty, &schema).unwrap());
        let g = Qf::neq(QfTerm::x(0), QfTerm::y(0));
        assert!(!g.eval_under_type(&ty, &schema).unwrap());
    }

    #[test]
    fn eval_under_incomplete_type_errors() {
        let schema = Schema::empty();
        let ty = SigmaType::empty(1);
        let f = Qf::Eq(QfTerm::x(0), QfTerm::y(0));
        assert!(f.eval_under_type(&ty, &schema).is_err());
    }

    #[test]
    fn z_elimination() {
        let f = Qf::Eq(QfTerm::x(0), QfTerm::z(0));
        assert_eq!(f.num_globals(), 1);
        let g = f.map_z_to_registers(3);
        assert_eq!(g, Qf::Eq(QfTerm::x(0), QfTerm::x(3)));
        assert_eq!(g.num_globals(), 0);
    }

    #[test]
    fn to_literals_conjunctive() {
        let schema = Schema::with(&[("U", 1)], &[]);
        let u = schema.relation("U").unwrap();
        let f = Qf::And(vec![
            Qf::Rel(u, vec![QfTerm::x(0)]),
            Qf::Not(Box::new(Qf::Eq(QfTerm::x(0), QfTerm::y(0)))),
        ]);
        let lits = f.to_literals().unwrap();
        assert_eq!(lits.len(), 2);
        assert!(lits.contains(&Literal::rel(u, vec![Term::x(0)])));
        assert!(lits.contains(&Literal::neq(Term::x(0), Term::y(0))));
    }

    #[test]
    fn to_literals_rejects_disjunction() {
        let f = Qf::Or(vec![Qf::True, Qf::False]);
        assert!(f.to_literals().is_none());
    }

    #[test]
    fn validate_ranges() {
        let schema = Schema::empty();
        let f = Qf::Eq(QfTerm::x(3), QfTerm::y(0));
        assert!(f.validate(&schema, 2, 0).is_err());
        assert!(f.validate(&schema, 4, 0).is_ok());
        let g = Qf::Eq(QfTerm::z(1), QfTerm::z(1));
        assert!(g.validate(&schema, 1, 1).is_err());
        assert!(g.validate(&schema, 1, 2).is_ok());
    }

    #[test]
    fn implies_derived_form() {
        let db = Database::new(Schema::empty());
        let f = Qf::implies(Qf::True, Qf::False);
        assert!(!f.eval(&db, &[], &[], &[]));
        let g = Qf::implies(Qf::False, Qf::False);
        assert!(g.eval(&db, &[], &[], &[]));
    }
}
