#![warn(missing_docs)]

//! Data substrate for `rega`: the infinite data domain, relational schemas,
//! finite databases, and the symbolic σ-types used by register automata.
//!
//! This crate implements Section 2 ("Preliminaries") of *Projection Views of
//! Register Automata* (Segoufin & Vianu, PODS 2020):
//!
//! * [`Value`] — elements of the infinite data domain `𝔻`.
//! * [`Schema`] — relational signatures with constants.
//! * [`Database`] — finite relational structures over `𝔻`.
//! * [`SigmaType`] — quantifier-free conjunctive formulas ("types") over the
//!   register variables `x̄` (current) and `ȳ` (next), with satisfiability,
//!   restriction, completion, and compatibility checks.
//! * [`Qf`] — arbitrary quantifier-free first-order formulas, used by the
//!   LTL-FO verification layer (Definition 11 of the paper).
//! * [`SatCache`] / [`TypeInterner`] — hash-consed σ-types ([`TypeId`]
//!   handles) with memoized analysis, saturation, restriction, joint
//!   satisfiability, and completion, shared by the whole analysis stack.
//! * [`TypeBits`] / [`TypeBitsSpace`] — a fixed-width bitset encoding of
//!   σ-types with word-level kernels for the same operations, used by the
//!   fast symbolic-control paths and losslessly convertible to/from
//!   [`SigmaType`] and interned [`TypeId`]s.

pub mod database;
pub mod error;
pub mod govern;
pub mod intern;
pub mod literal;
pub mod qf;
pub mod schema;
pub mod term;
pub mod typebits;
pub mod types;
pub mod value;

pub use database::Database;
pub use error::DataError;
pub use govern::{Budget, BudgetSpec, CancelToken, GovernError};
pub use intern::{CacheStats, RestrictOp, SatCache, TypeId, TypeInterner};
pub use literal::Literal;
pub use qf::{Qf, QfTerm};
pub use schema::{ConstSym, RelSym, Schema};
pub use term::{RegIdx, Term};
pub use typebits::{TypeBits, TypeBitsSpace};
pub use types::SigmaType;
pub use value::{Value, ValueSupply};
