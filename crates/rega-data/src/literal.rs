//! Literals of σ-types: (in)equalities between terms and (negated)
//! relational atoms.

use crate::schema::RelSym;
use crate::term::Term;
use std::fmt;

/// A literal over a schema: an (in)equality between terms, or a positive or
/// negative relational atom.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Literal {
    /// `s = t`. Stored with `s <= t` (canonical form; see [`Literal::eq`]).
    Eq(Term, Term),
    /// `s ≠ t`. Stored with `s <= t`.
    Neq(Term, Term),
    /// `R(args)` if `positive`, `¬R(args)` otherwise.
    Rel {
        /// The relation symbol.
        rel: RelSym,
        /// Argument terms, of length `arity(rel)`.
        args: Vec<Term>,
        /// Whether the atom is positive.
        positive: bool,
    },
}

impl Literal {
    /// Canonical equality literal (orders the two terms).
    pub fn eq(s: Term, t: Term) -> Literal {
        if s <= t {
            Literal::Eq(s, t)
        } else {
            Literal::Eq(t, s)
        }
    }

    /// Canonical inequality literal (orders the two terms).
    pub fn neq(s: Term, t: Term) -> Literal {
        if s <= t {
            Literal::Neq(s, t)
        } else {
            Literal::Neq(t, s)
        }
    }

    /// Positive relational atom.
    pub fn rel(rel: RelSym, args: Vec<Term>) -> Literal {
        Literal::Rel {
            rel,
            args,
            positive: true,
        }
    }

    /// Negative relational atom.
    pub fn not_rel(rel: RelSym, args: Vec<Term>) -> Literal {
        Literal::Rel {
            rel,
            args,
            positive: false,
        }
    }

    /// The logical negation of this literal.
    pub fn negated(&self) -> Literal {
        match self {
            Literal::Eq(s, t) => Literal::Neq(*s, *t),
            Literal::Neq(s, t) => Literal::Eq(*s, *t),
            Literal::Rel {
                rel,
                args,
                positive,
            } => Literal::Rel {
                rel: *rel,
                args: args.clone(),
                positive: !positive,
            },
        }
    }

    /// Is this literal a positive relational atom?
    pub fn is_positive_rel(&self) -> bool {
        matches!(self, Literal::Rel { positive: true, .. })
    }

    /// All terms mentioned by the literal.
    pub fn terms(&self) -> Vec<Term> {
        match self {
            Literal::Eq(s, t) | Literal::Neq(s, t) => vec![*s, *t],
            Literal::Rel { args, .. } => args.clone(),
        }
    }

    /// Applies a term substitution, re-canonicalizing (in)equalities.
    pub fn map_terms(&self, f: impl Fn(Term) -> Term) -> Literal {
        match self {
            Literal::Eq(s, t) => Literal::eq(f(*s), f(*t)),
            Literal::Neq(s, t) => Literal::neq(f(*s), f(*t)),
            Literal::Rel {
                rel,
                args,
                positive,
            } => Literal::Rel {
                rel: *rel,
                args: args.iter().map(|t| f(*t)).collect(),
                positive: *positive,
            },
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Eq(s, t) => write!(f, "{s}={t}"),
            Literal::Neq(s, t) => write!(f, "{s}≠{t}"),
            Literal::Rel {
                rel,
                args,
                positive,
            } => {
                if !positive {
                    write!(f, "¬")?;
                }
                write!(f, "R{}(", rel.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_is_canonical() {
        assert_eq!(
            Literal::eq(Term::y(0), Term::x(0)),
            Literal::eq(Term::x(0), Term::y(0))
        );
    }

    #[test]
    fn negation_flips() {
        let l = Literal::eq(Term::x(0), Term::x(1));
        assert_eq!(l.negated(), Literal::neq(Term::x(0), Term::x(1)));
        assert_eq!(l.negated().negated(), l);
        let r = Literal::rel(RelSym(0), vec![Term::x(0)]);
        assert!(!r.negated().is_positive_rel());
    }

    #[test]
    fn map_terms_recanonicalizes() {
        // x0 = x1 mapped through x->y swap order-sensitively still canonical
        let l = Literal::eq(Term::x(0), Term::x(1));
        let m = l.map_terms(|t| if t == Term::x(0) { Term::y(5) } else { t });
        assert_eq!(m, Literal::eq(Term::x(1), Term::y(5)));
    }

    #[test]
    fn terms_listed() {
        let l = Literal::rel(RelSym(0), vec![Term::x(0), Term::cst(0)]);
        assert_eq!(l.terms(), vec![Term::x(0), Term::cst(0)]);
    }
}
