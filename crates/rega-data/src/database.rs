//! Finite databases over a schema.
//!
//! A database over `σ` maps each relation symbol of arity `k` to a finite
//! `k`-ary relation over `𝔻`, and each constant symbol to an element of `𝔻`
//! (Section 2). The active domain `adom(D)` consists of all values occurring
//! in the relations together with the constants.

use crate::error::DataError;
use crate::schema::{ConstSym, RelSym, Schema};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A finite relational structure over a [`Schema`].
#[derive(Clone, Debug)]
pub struct Database {
    schema: Schema,
    relations: Vec<HashSet<Vec<Value>>>,
    constants: Vec<Value>,
}

impl Database {
    /// Creates an empty database over `schema`. All constant symbols are
    /// initially interpreted by pairwise-distinct default values; use
    /// [`Database::set_constant`] to re-interpret them.
    pub fn new(schema: Schema) -> Self {
        let relations = (0..schema.num_relations())
            .map(|_| HashSet::new())
            .collect();
        // Default constant interpretations: distinct large values, so that a
        // freshly created database is well-formed even before constants are
        // assigned explicitly.
        let constants = (0..schema.num_constants())
            .map(|i| Value((1 << 48) + i as u64))
            .collect();
        Database {
            schema,
            relations,
            constants,
        }
    }

    /// The schema of this database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Interprets a constant symbol by a value.
    pub fn set_constant(&mut self, c: ConstSym, v: Value) {
        self.constants[c.0 as usize] = v;
    }

    /// The interpretation of a constant symbol.
    pub fn constant(&self, c: ConstSym) -> Value {
        self.constants[c.0 as usize]
    }

    /// Inserts a fact `R(values)` into the database.
    pub fn insert(&mut self, rel: RelSym, values: Vec<Value>) -> Result<(), DataError> {
        self.schema.check_arity(rel, values.len())?;
        self.relations[rel.0 as usize].insert(values);
        Ok(())
    }

    /// Inserts a fact looked up by relation name (convenience for examples).
    pub fn insert_named(&mut self, rel: &str, values: &[Value]) -> Result<(), DataError> {
        let sym = self.schema.relation(rel)?;
        self.insert(sym, values.to_vec())
    }

    /// Removes a fact from the database. Returns whether it was present.
    pub fn remove(&mut self, rel: RelSym, values: &[Value]) -> bool {
        self.relations[rel.0 as usize].remove(values)
    }

    /// Tests whether `R(values)` holds.
    pub fn contains(&self, rel: RelSym, values: &[Value]) -> bool {
        self.relations[rel.0 as usize].contains(values)
    }

    /// All facts of a relation.
    pub fn facts(&self, rel: RelSym) -> impl Iterator<Item = &Vec<Value>> {
        self.relations[rel.0 as usize].iter()
    }

    /// Number of facts of a relation.
    pub fn num_facts(&self, rel: RelSym) -> usize {
        self.relations[rel.0 as usize].len()
    }

    /// Total number of facts over all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// The active domain: all values occurring in relations, plus constants.
    /// Returned sorted for determinism.
    pub fn adom(&self) -> BTreeSet<Value> {
        let mut dom: BTreeSet<Value> = self.constants.iter().copied().collect();
        for rel in &self.relations {
            for fact in rel {
                dom.extend(fact.iter().copied());
            }
        }
        dom
    }

    /// Applies an injective renaming of values to the database. Values not in
    /// the map are left unchanged. Used by Lemma 25-style arguments, which
    /// move a database away from values occurring in a run by an isomorphism.
    pub fn rename(&self, map: &HashMap<Value, Value>) -> Database {
        let f = |v: &Value| *map.get(v).unwrap_or(v);
        let relations = self
            .relations
            .iter()
            .map(|rel| {
                rel.iter()
                    .map(|fact| fact.iter().map(&f).collect())
                    .collect()
            })
            .collect();
        let constants = self.constants.iter().map(&f).collect();
        Database {
            schema: self.schema.clone(),
            relations,
            constants,
        }
    }

    /// Tests isomorphism-invariant equality is *not* implemented; this is
    /// plain fact-set equality (same schema assumed).
    pub fn same_facts(&self, other: &Database) -> bool {
        self.relations == other.relations && self.constants == other.constants
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database over {}", self.schema)?;
        for rel in self.schema.relations() {
            let mut facts: Vec<&Vec<Value>> = self.facts(rel).collect();
            facts.sort();
            for fact in facts {
                write!(f, "  {}(", self.schema.relation_name(rel))?;
                for (i, v) in fact.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                writeln!(f, ")")?;
            }
        }
        for c in self.schema.constants() {
            writeln!(
                f,
                "  {} = {}",
                self.schema.constant_name(c),
                self.constant(c)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::with(&[("E", 2), ("U", 1)], &["c"])
    }

    #[test]
    fn insert_and_contains() {
        let s = schema();
        let e = s.relation("E").unwrap();
        let mut db = Database::new(s);
        db.insert(e, vec![Value(1), Value(2)]).unwrap();
        assert!(db.contains(e, &[Value(1), Value(2)]));
        assert!(!db.contains(e, &[Value(2), Value(1)]));
    }

    #[test]
    fn arity_enforced() {
        let s = schema();
        let e = s.relation("E").unwrap();
        let mut db = Database::new(s);
        assert!(db.insert(e, vec![Value(1)]).is_err());
    }

    #[test]
    fn adom_includes_constants_and_facts() {
        let s = schema();
        let e = s.relation("E").unwrap();
        let c = s.constant("c").unwrap();
        let mut db = Database::new(s);
        db.set_constant(c, Value(7));
        db.insert(e, vec![Value(1), Value(2)]).unwrap();
        let adom = db.adom();
        assert!(adom.contains(&Value(1)));
        assert!(adom.contains(&Value(2)));
        assert!(adom.contains(&Value(7)));
        assert_eq!(adom.len(), 3);
    }

    #[test]
    fn rename_moves_values() {
        let s = schema();
        let e = s.relation("E").unwrap();
        let mut db = Database::new(s);
        db.insert(e, vec![Value(1), Value(2)]).unwrap();
        let map: HashMap<Value, Value> = [(Value(1), Value(10))].into_iter().collect();
        let db2 = db.rename(&map);
        assert!(db2.contains(e, &[Value(10), Value(2)]));
        assert!(!db2.contains(e, &[Value(1), Value(2)]));
    }

    #[test]
    fn remove_fact() {
        let s = schema();
        let u = s.relation("U").unwrap();
        let mut db = Database::new(s);
        db.insert(u, vec![Value(3)]).unwrap();
        assert!(db.remove(u, &[Value(3)]));
        assert!(!db.remove(u, &[Value(3)]));
        assert!(!db.contains(u, &[Value(3)]));
    }

    #[test]
    fn insert_named_convenience() {
        let mut db = Database::new(schema());
        db.insert_named("U", &[Value(9)]).unwrap();
        let u = db.schema().relation("U").unwrap();
        assert!(db.contains(u, &[Value(9)]));
        assert!(db.insert_named("Z", &[Value(1)]).is_err());
    }

    #[test]
    fn default_constants_are_distinct() {
        let s = Schema::with(&[], &["a", "b"]);
        let db = Database::new(s);
        let a = db.schema().constant("a").unwrap();
        let b = db.schema().constant("b").unwrap();
        assert_ne!(db.constant(a), db.constant(b));
    }
}
