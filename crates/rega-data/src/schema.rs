//! Relational signatures (database schemas).
//!
//! A schema is a finite set of relation symbols with associated arities,
//! plus finitely many constant symbols (Section 2 of the paper). The empty
//! schema corresponds to register automata "without a database".

use crate::error::DataError;
use std::fmt;

/// Index of a relation symbol within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelSym(pub u32);

/// Index of a constant symbol within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConstSym(pub u32);

#[derive(Clone, Debug, PartialEq, Eq)]
struct RelDecl {
    name: String,
    arity: usize,
}

/// A relational signature: named relation symbols with arities, and named
/// constant symbols.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    relations: Vec<RelDecl>,
    constants: Vec<String>,
}

impl Schema {
    /// The empty schema (no relations, no constants). Register automata over
    /// the empty schema are the "no database" automata of Sections 4 and 5.
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Returns `true` if the schema has no relation and no constant symbols.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty() && self.constants.is_empty()
    }

    /// Declares a relation symbol with the given arity.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelSym, DataError> {
        if self.relations.iter().any(|r| r.name == name) {
            return Err(DataError::DuplicateSymbol(name.to_string()));
        }
        let sym = RelSym(self.relations.len() as u32);
        self.relations.push(RelDecl {
            name: name.to_string(),
            arity,
        });
        Ok(sym)
    }

    /// Declares a constant symbol.
    pub fn add_constant(&mut self, name: &str) -> Result<ConstSym, DataError> {
        if self.constants.iter().any(|c| c == name) {
            return Err(DataError::DuplicateSymbol(name.to_string()));
        }
        let sym = ConstSym(self.constants.len() as u32);
        self.constants.push(name.to_string());
        Ok(sym)
    }

    /// Builder-style convenience: a schema from `(name, arity)` relation
    /// declarations and constant names. Panics on duplicates (intended for
    /// statically-known schemas in tests and examples).
    pub fn with(relations: &[(&str, usize)], constants: &[&str]) -> Self {
        let mut s = Schema::empty();
        for (name, arity) in relations {
            s.add_relation(name, *arity).expect("duplicate relation");
        }
        for name in constants {
            s.add_constant(name).expect("duplicate constant");
        }
        s
    }

    /// Number of relation symbols.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of constant symbols.
    pub fn num_constants(&self) -> usize {
        self.constants.len()
    }

    /// All relation symbols.
    pub fn relations(&self) -> impl Iterator<Item = RelSym> + '_ {
        (0..self.relations.len() as u32).map(RelSym)
    }

    /// All constant symbols.
    pub fn constants(&self) -> impl Iterator<Item = ConstSym> + '_ {
        (0..self.constants.len() as u32).map(ConstSym)
    }

    /// Looks up a relation symbol by name.
    pub fn relation(&self, name: &str) -> Result<RelSym, DataError> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelSym(i as u32))
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Looks up a constant symbol by name.
    pub fn constant(&self, name: &str) -> Result<ConstSym, DataError> {
        self.constants
            .iter()
            .position(|c| c == name)
            .map(|i| ConstSym(i as u32))
            .ok_or_else(|| DataError::UnknownConstant(name.to_string()))
    }

    /// The arity of a relation symbol.
    pub fn arity(&self, rel: RelSym) -> usize {
        self.relations[rel.0 as usize].arity
    }

    /// The name of a relation symbol.
    pub fn relation_name(&self, rel: RelSym) -> &str {
        &self.relations[rel.0 as usize].name
    }

    /// The name of a constant symbol.
    pub fn constant_name(&self, c: ConstSym) -> &str {
        &self.constants[c.0 as usize]
    }

    /// Checks a relation application for arity, returning a helpful error.
    pub fn check_arity(&self, rel: RelSym, got: usize) -> Result<(), DataError> {
        let expected = self.arity(rel);
        if expected != got {
            return Err(DataError::ArityMismatch {
                relation: self.relation_name(rel).to_string(),
                expected,
                got,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ = {{")?;
        let mut first = true;
        for r in &self.relations {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}/{}", r.name, r.arity)?;
        }
        for c in &self.constants {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "const {c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert_eq!(s.num_relations(), 0);
        assert_eq!(s.num_constants(), 0);
    }

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::empty();
        let e = s.add_relation("E", 2).unwrap();
        let u = s.add_relation("U", 1).unwrap();
        let c = s.add_constant("c").unwrap();
        assert_eq!(s.relation("E").unwrap(), e);
        assert_eq!(s.relation("U").unwrap(), u);
        assert_eq!(s.constant("c").unwrap(), c);
        assert_eq!(s.arity(e), 2);
        assert_eq!(s.arity(u), 1);
        assert_eq!(s.relation_name(e), "E");
        assert_eq!(s.constant_name(c), "c");
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = Schema::empty();
        s.add_relation("R", 1).unwrap();
        assert_eq!(
            s.add_relation("R", 2),
            Err(DataError::DuplicateSymbol("R".into()))
        );
    }

    #[test]
    fn duplicate_constant_rejected() {
        let mut s = Schema::empty();
        s.add_constant("c").unwrap();
        assert!(s.add_constant("c").is_err());
    }

    #[test]
    fn unknown_lookup_fails() {
        let s = Schema::empty();
        assert!(s.relation("R").is_err());
        assert!(s.constant("c").is_err());
    }

    #[test]
    fn arity_check() {
        let s = Schema::with(&[("E", 2)], &[]);
        let e = s.relation("E").unwrap();
        assert!(s.check_arity(e, 2).is_ok());
        assert!(s.check_arity(e, 3).is_err());
    }

    #[test]
    fn display_lists_symbols() {
        let s = Schema::with(&[("E", 2), ("U", 1)], &["c"]);
        let d = s.to_string();
        assert!(d.contains("E/2"));
        assert!(d.contains("U/1"));
        assert!(d.contains("const c"));
    }
}
