#![warn(missing_docs)]

//! Temporal logic for register automata: LTL and LTL-FO (Definition 11 of
//! *Projection Views of Register Automata*, Segoufin & Vianu, PODS 2020).
//!
//! * [`ltl`] — propositional linear-time temporal logic: AST, parser,
//!   negation normal form.
//! * [`translate`] — the GPVW tableau translation of LTL to generalized
//!   Büchi automata with guard-labeled states, ready to be instantiated
//!   against the control traces of an automaton.
//! * [`ltlfo`] — LTL-FO: LTL whose propositions are quantifier-free FO
//!   formulas over the registers (`x̄`, `ȳ`), global variables `z̄`, and the
//!   database.

pub mod ltl;
pub mod ltlfo;
pub mod translate;

pub use ltl::{Ltl, LtlParseError};
pub use ltlfo::LtlFo;
pub use translate::{Guard, LtlAutomaton};
