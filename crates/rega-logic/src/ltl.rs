//! Linear-time temporal logic: AST, parser, and negation normal form.
//!
//! The temporal operators are `X` (next), `U` (until), `R` (release),
//! `G` (always), `F` (eventually), plus the boolean connectives. `G`/`F`
//! are derived forms expanded during NNF conversion.

use std::fmt;

/// An LTL formula over propositions of type `P`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ltl<P> {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic proposition.
    Prop(P),
    /// Negation.
    Not(Box<Ltl<P>>),
    /// Conjunction.
    And(Box<Ltl<P>>, Box<Ltl<P>>),
    /// Disjunction.
    Or(Box<Ltl<P>>, Box<Ltl<P>>),
    /// Next.
    Next(Box<Ltl<P>>),
    /// Until: `φ U ψ`.
    Until(Box<Ltl<P>>, Box<Ltl<P>>),
    /// Release: `φ R ψ` (dual of until).
    Release(Box<Ltl<P>>, Box<Ltl<P>>),
    /// Eventually `F φ` (derived).
    Finally(Box<Ltl<P>>),
    /// Always `G φ` (derived).
    Globally(Box<Ltl<P>>),
}

impl<P: Clone> Ltl<P> {
    /// `φ → ψ` as a derived form.
    pub fn implies(p: Ltl<P>, q: Ltl<P>) -> Ltl<P> {
        Ltl::Or(Box::new(Ltl::Not(Box::new(p))), Box::new(q))
    }

    /// The negation of this formula.
    pub fn negated(&self) -> Ltl<P> {
        Ltl::Not(Box::new(self.clone()))
    }

    /// Negation normal form: negations pushed to the propositions, `F`/`G`
    /// expanded into `U`/`R`.
    pub fn nnf(&self) -> Ltl<P> {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, neg: bool) -> Ltl<P> {
        match self {
            Ltl::True => {
                if neg {
                    Ltl::False
                } else {
                    Ltl::True
                }
            }
            Ltl::False => {
                if neg {
                    Ltl::True
                } else {
                    Ltl::False
                }
            }
            Ltl::Prop(p) => {
                if neg {
                    Ltl::Not(Box::new(Ltl::Prop(p.clone())))
                } else {
                    Ltl::Prop(p.clone())
                }
            }
            Ltl::Not(inner) => inner.nnf_inner(!neg),
            Ltl::And(a, b) => {
                let (a, b) = (a.nnf_inner(neg), b.nnf_inner(neg));
                if neg {
                    Ltl::Or(Box::new(a), Box::new(b))
                } else {
                    Ltl::And(Box::new(a), Box::new(b))
                }
            }
            Ltl::Or(a, b) => {
                let (a, b) = (a.nnf_inner(neg), b.nnf_inner(neg));
                if neg {
                    Ltl::And(Box::new(a), Box::new(b))
                } else {
                    Ltl::Or(Box::new(a), Box::new(b))
                }
            }
            Ltl::Next(a) => Ltl::Next(Box::new(a.nnf_inner(neg))),
            Ltl::Until(a, b) => {
                let (a, b) = (a.nnf_inner(neg), b.nnf_inner(neg));
                if neg {
                    Ltl::Release(Box::new(a), Box::new(b))
                } else {
                    Ltl::Until(Box::new(a), Box::new(b))
                }
            }
            Ltl::Release(a, b) => {
                let (a, b) = (a.nnf_inner(neg), b.nnf_inner(neg));
                if neg {
                    Ltl::Until(Box::new(a), Box::new(b))
                } else {
                    Ltl::Release(Box::new(a), Box::new(b))
                }
            }
            // F φ = true U φ; ¬F φ = false R ¬φ (= G ¬φ)
            Ltl::Finally(a) => {
                if neg {
                    Ltl::Release(Box::new(Ltl::False), Box::new(a.nnf_inner(true)))
                } else {
                    Ltl::Until(Box::new(Ltl::True), Box::new(a.nnf_inner(false)))
                }
            }
            // G φ = false R φ; ¬G φ = true U ¬φ
            Ltl::Globally(a) => {
                if neg {
                    Ltl::Until(Box::new(Ltl::True), Box::new(a.nnf_inner(true)))
                } else {
                    Ltl::Release(Box::new(Ltl::False), Box::new(a.nnf_inner(false)))
                }
            }
        }
    }

    /// Maps the propositions through `f`.
    pub fn map_props<Q>(&self, f: &impl Fn(&P) -> Q) -> Ltl<Q> {
        match self {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            Ltl::Prop(p) => Ltl::Prop(f(p)),
            Ltl::Not(a) => Ltl::Not(Box::new(a.map_props(f))),
            Ltl::And(a, b) => Ltl::And(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Or(a, b) => Ltl::Or(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Next(a) => Ltl::Next(Box::new(a.map_props(f))),
            Ltl::Until(a, b) => Ltl::Until(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Release(a, b) => Ltl::Release(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Finally(a) => Ltl::Finally(Box::new(a.map_props(f))),
            Ltl::Globally(a) => Ltl::Globally(Box::new(a.map_props(f))),
        }
    }

    /// Evaluates the formula on an ultimately periodic word of truth
    /// assignments (reference semantics, used by tests to validate the
    /// automaton translation). `assign(pos, prop)` gives the truth of a
    /// proposition at a position; `prefix + period` describe the lasso.
    pub fn eval_lasso(
        &self,
        prefix: usize,
        period: usize,
        assign: &impl Fn(usize, &P) -> bool,
    ) -> bool {
        // Positions 0 .. prefix + period are pairwise distinct "time points";
        // position wraps from prefix+period-1 back to prefix.
        let horizon = prefix + period;
        let next = |m: usize| if m + 1 < horizon { m + 1 } else { prefix };
        // Memoized recursive evaluation over (formula structurally, position)
        // — formulas are small, so recompute per position without memo.
        fn go<P>(
            f: &Ltl<P>,
            m: usize,
            horizon: usize,
            next: &impl Fn(usize) -> usize,
            assign: &impl Fn(usize, &P) -> bool,
        ) -> bool {
            match f {
                Ltl::True => true,
                Ltl::False => false,
                Ltl::Prop(p) => assign(m, p),
                Ltl::Not(a) => !go(a, m, horizon, next, assign),
                Ltl::And(a, b) => {
                    go(a, m, horizon, next, assign) && go(b, m, horizon, next, assign)
                }
                Ltl::Or(a, b) => go(a, m, horizon, next, assign) || go(b, m, horizon, next, assign),
                Ltl::Next(a) => go(a, next(m), horizon, next, assign),
                Ltl::Finally(a) => {
                    // positions reachable from m: m, next(m), ... (≤ horizon many)
                    let mut pos = m;
                    for _ in 0..=horizon {
                        if go(a, pos, horizon, next, assign) {
                            return true;
                        }
                        pos = next(pos);
                    }
                    false
                }
                Ltl::Globally(a) => {
                    let mut pos = m;
                    for _ in 0..=horizon {
                        if !go(a, pos, horizon, next, assign) {
                            return false;
                        }
                        pos = next(pos);
                    }
                    true
                }
                Ltl::Until(a, b) => {
                    let mut pos = m;
                    for _ in 0..=horizon {
                        if go(b, pos, horizon, next, assign) {
                            return true;
                        }
                        if !go(a, pos, horizon, next, assign) {
                            return false;
                        }
                        pos = next(pos);
                    }
                    false
                }
                Ltl::Release(a, b) => {
                    // a R b ≡ ¬(¬a U ¬b)
                    let mut pos = m;
                    for _ in 0..=horizon {
                        if !go(b, pos, horizon, next, assign) {
                            return false;
                        }
                        if go(a, pos, horizon, next, assign) {
                            return true;
                        }
                        pos = next(pos);
                    }
                    true
                }
            }
        }
        go(self, 0, horizon, &next, assign)
    }
}

/// Errors from [`Ltl::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LtlParseError(pub String);

impl fmt::Display for LtlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LTL parse error: {}", self.0)
    }
}

impl std::error::Error for LtlParseError {}

impl Ltl<String> {
    /// Parses an LTL formula with identifier propositions.
    ///
    /// Grammar (loosest binding first): `->`, `|`, `&`, `U`/`R` (right
    /// associative), prefix `!`, `X`, `F`, `G`, atoms `true`, `false`,
    /// identifiers, parentheses.
    pub fn parse(input: &str) -> Result<Ltl<String>, LtlParseError> {
        let tokens = ltl_tokenize(input)?;
        let mut p = LtlParser { tokens, pos: 0 };
        let f = p.implication()?;
        if p.pos != p.tokens.len() {
            return Err(LtlParseError("trailing input".into()));
        }
        Ok(f)
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Arrow,
    Next,
    Finally,
    Globally,
    Until,
    Release,
    LParen,
    RParen,
}

fn ltl_tokenize(input: &str) -> Result<Vec<Tok>, LtlParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '!' => {
                chars.next();
                out.push(Tok::Not);
            }
            '&' => {
                chars.next();
                out.push(Tok::And);
            }
            '|' => {
                chars.next();
                out.push(Tok::Or);
            }
            '-' => {
                chars.next();
                if chars.next() != Some('>') {
                    return Err(LtlParseError("expected `->`".into()));
                }
                out.push(Tok::Arrow);
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(match ident.as_str() {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "X" => Tok::Next,
                    "F" => Tok::Finally,
                    "G" => Tok::Globally,
                    "U" => Tok::Until,
                    "R" => Tok::Release,
                    _ => Tok::Ident(ident),
                });
            }
            other => return Err(LtlParseError(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

struct LtlParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl LtlParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn implication(&mut self) -> Result<Ltl<String>, LtlParseError> {
        let lhs = self.disjunction()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.implication()?;
            Ok(Ltl::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Ltl<String>, LtlParseError> {
        let mut lhs = self.conjunction()?;
        while self.eat(&Tok::Or) {
            let rhs = self.conjunction()?;
            lhs = Ltl::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn conjunction(&mut self) -> Result<Ltl<String>, LtlParseError> {
        let mut lhs = self.until()?;
        while self.eat(&Tok::And) {
            let rhs = self.until()?;
            lhs = Ltl::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn until(&mut self) -> Result<Ltl<String>, LtlParseError> {
        let lhs = self.unary()?;
        if self.eat(&Tok::Until) {
            let rhs = self.until()?;
            Ok(Ltl::Until(Box::new(lhs), Box::new(rhs)))
        } else if self.eat(&Tok::Release) {
            let rhs = self.until()?;
            Ok(Ltl::Release(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn unary(&mut self) -> Result<Ltl<String>, LtlParseError> {
        if self.eat(&Tok::Not) {
            Ok(Ltl::Not(Box::new(self.unary()?)))
        } else if self.eat(&Tok::Next) {
            Ok(Ltl::Next(Box::new(self.unary()?)))
        } else if self.eat(&Tok::Finally) {
            Ok(Ltl::Finally(Box::new(self.unary()?)))
        } else if self.eat(&Tok::Globally) {
            Ok(Ltl::Globally(Box::new(self.unary()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Ltl<String>, LtlParseError> {
        match self.tokens.get(self.pos).cloned() {
            Some(Tok::True) => {
                self.pos += 1;
                Ok(Ltl::True)
            }
            Some(Tok::False) => {
                self.pos += 1;
                Ok(Ltl::False)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(Ltl::Prop(name))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.implication()?;
                if !self.eat(&Tok::RParen) {
                    return Err(LtlParseError("expected `)`".into()));
                }
                Ok(inner)
            }
            other => Err(LtlParseError(format!("unexpected token {other:?}"))),
        }
    }
}

impl<P: fmt::Display> fmt::Display for Ltl<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Prop(p) => write!(f, "{p}"),
            Ltl::Not(a) => write!(f, "!({a})"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::Next(a) => write!(f, "X ({a})"),
            Ltl::Until(a, b) => write!(f, "({a} U {b})"),
            Ltl::Release(a, b) => write!(f, "({a} R {b})"),
            Ltl::Finally(a) => write!(f, "F ({a})"),
            Ltl::Globally(a) => write!(f, "G ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let f = Ltl::parse("G (p -> F q)").unwrap();
        assert_eq!(
            f,
            Ltl::Globally(Box::new(Ltl::implies(
                Ltl::Prop("p".into()),
                Ltl::Finally(Box::new(Ltl::Prop("q".into())))
            )))
        );
    }

    #[test]
    fn parse_until_right_assoc() {
        let f = Ltl::parse("p U q U r").unwrap();
        assert_eq!(
            f,
            Ltl::Until(
                Box::new(Ltl::Prop("p".into())),
                Box::new(Ltl::Until(
                    Box::new(Ltl::Prop("q".into())),
                    Box::new(Ltl::Prop("r".into()))
                ))
            )
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Ltl::parse("(p").is_err());
        assert!(Ltl::parse("p q").is_err());
        assert!(Ltl::parse("p -").is_err());
    }

    #[test]
    fn nnf_pushes_negations() {
        let f = Ltl::parse("!(p & X q)").unwrap().nnf();
        assert_eq!(
            f,
            Ltl::Or(
                Box::new(Ltl::Not(Box::new(Ltl::Prop("p".into())))),
                Box::new(Ltl::Next(Box::new(Ltl::Not(Box::new(Ltl::Prop(
                    "q".into()
                ))))))
            )
        );
    }

    #[test]
    fn nnf_expands_fg() {
        let f = Ltl::parse("!F p").unwrap().nnf();
        // ¬F p = false R ¬p
        assert_eq!(
            f,
            Ltl::Release(
                Box::new(Ltl::False),
                Box::new(Ltl::Not(Box::new(Ltl::Prop("p".into()))))
            )
        );
    }

    #[test]
    fn eval_lasso_g_and_f() {
        // word: p holds at even positions; lasso prefix 0, period 2.
        let assign = |m: usize, p: &String| (p == "p") == m.is_multiple_of(2);
        let gfp = Ltl::parse("G (F p)").unwrap();
        assert!(gfp.eval_lasso(0, 2, &assign));
        let gp = Ltl::parse("G p").unwrap();
        assert!(!gp.eval_lasso(0, 2, &assign));
        let xp = Ltl::parse("X p").unwrap();
        assert!(!xp.eval_lasso(0, 2, &assign));
        let xxp = Ltl::parse("X X p").unwrap();
        assert!(xxp.eval_lasso(0, 2, &assign));
    }

    #[test]
    fn eval_lasso_until() {
        // p p p q q q q ... (q from position 3 onwards, period 1)
        let assign = |m: usize, p: &String| match p.as_str() {
            "p" => m < 3,
            "q" => m >= 3,
            _ => false,
        };
        let f = Ltl::parse("p U q").unwrap();
        assert!(f.eval_lasso(3, 1, &assign));
        let g = Ltl::parse("q U p").unwrap();
        assert!(g.eval_lasso(3, 1, &assign)); // p holds immediately
        let h = Ltl::parse("G q").unwrap();
        assert!(!h.eval_lasso(3, 1, &assign));
    }

    #[test]
    fn eval_release() {
        // a R b: b must hold until (and including when) a holds.
        let assign = |m: usize, p: &String| match p.as_str() {
            "a" => m == 2,
            "b" => m <= 2,
            _ => false,
        };
        let f = Ltl::parse("a R b").unwrap();
        assert!(f.eval_lasso(4, 1, &assign));
        // without a ever: b must hold globally
        let assign2 = |m: usize, p: &String| p == "b" && m < 10;
        assert!(!f.eval_lasso(12, 1, &assign2));
    }

    #[test]
    fn map_props() {
        let f = Ltl::parse("p U q").unwrap();
        let g = f.map_props(&|p| if p == "p" { 0u32 } else { 1 });
        assert_eq!(
            g,
            Ltl::Until(Box::new(Ltl::Prop(0)), Box::new(Ltl::Prop(1)))
        );
    }
}
