//! LTL-FO (Definition 11): LTL whose propositions are quantifier-free FO
//! formulas over the registers and database, with universally quantified
//! global variables `z̄`.
//!
//! An LTL-FO sentence is `∀z̄ φ_f` where `φ` is an LTL formula over
//! propositions `P` and `f` maps each proposition to a quantifier-free FO
//! formula over `x̄ ȳ z̄`. The verifier eliminates the global variables by
//! adding `|z̄|` constant registers (see `rega-analysis::verify`), as the
//! paper describes.

use crate::ltl::{Ltl, LtlParseError};
use rega_data::{Qf, Schema};
use std::collections::BTreeMap;
use std::fmt;

/// An LTL-FO sentence `∀z̄ φ_f`: an LTL skeleton over proposition indices
/// plus the interpretation of each proposition as a quantifier-free formula.
#[derive(Clone, Debug)]
pub struct LtlFo {
    /// The LTL skeleton; propositions are indices into `props`.
    pub formula: Ltl<u32>,
    /// Proposition interpretations `f(p)`.
    pub props: Vec<Qf>,
    /// Human-readable names of the propositions (parallel to `props`).
    pub prop_names: Vec<String>,
}

impl LtlFo {
    /// Builds an LTL-FO sentence from a textual LTL skeleton and named
    /// proposition interpretations.
    ///
    /// ```
    /// use rega_logic::LtlFo;
    /// use rega_data::{Qf, QfTerm, Schema};
    /// // G (stable -> X stable) with stable ≡ x1 = y1
    /// let f = LtlFo::new(
    ///     "G stable",
    ///     [("stable", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))],
    /// ).unwrap();
    /// assert_eq!(f.props.len(), 1);
    /// ```
    pub fn new<'a>(
        skeleton: &str,
        props: impl IntoIterator<Item = (&'a str, Qf)>,
    ) -> Result<LtlFo, LtlParseError> {
        let named: BTreeMap<String, Qf> =
            props.into_iter().map(|(n, q)| (n.to_string(), q)).collect();
        let parsed = Ltl::parse(skeleton)?;
        // Collect propositions in order of first appearance; fail on unknown.
        use std::cell::RefCell;
        let prop_names: RefCell<Vec<String>> = RefCell::new(Vec::new());
        let prop_list: RefCell<Vec<Qf>> = RefCell::new(Vec::new());
        let err: RefCell<Option<String>> = RefCell::new(None);
        let formula = parsed.map_props(&|name: &String| {
            let mut names = prop_names.borrow_mut();
            if let Some(i) = names.iter().position(|n| n == name) {
                return i as u32;
            }
            match named.get(name) {
                Some(q) => {
                    names.push(name.clone());
                    let mut list = prop_list.borrow_mut();
                    list.push(q.clone());
                    (list.len() - 1) as u32
                }
                None => {
                    *err.borrow_mut() = Some(name.clone());
                    u32::MAX
                }
            }
        });
        if let Some(name) = err.into_inner() {
            return Err(LtlParseError(format!("unknown proposition `{name}`")));
        }
        Ok(LtlFo {
            formula,
            props: prop_list.into_inner(),
            prop_names: prop_names.into_inner(),
        })
    }

    /// The number of global variables `z̄` used across all propositions.
    pub fn num_globals(&self) -> u16 {
        self.props
            .iter()
            .map(|q| q.num_globals())
            .max()
            .unwrap_or(0)
    }

    /// Validates every proposition against the schema and register counts.
    pub fn validate(&self, schema: &Schema, k: u16) -> Result<(), rega_data::DataError> {
        let nz = self.num_globals();
        for q in &self.props {
            q.validate(schema, k, nz)?;
        }
        Ok(())
    }

    /// Eliminates global variables: every `z_i` becomes register `base + i`.
    /// Returns the rewritten sentence (no globals). The verifier pairs this
    /// with an automaton transformation that adds `|z̄|` constant registers.
    pub fn eliminate_globals(&self, base: u16) -> LtlFo {
        LtlFo {
            formula: self.formula.clone(),
            props: self
                .props
                .iter()
                .map(|q| q.map_z_to_registers(base))
                .collect(),
            prop_names: self.prop_names.clone(),
        }
    }

    /// The negated sentence skeleton (used by the verifier: `𝒜 ⊨ φ` iff no
    /// run satisfies `¬φ`). Note: this negates `φ_f` *for a fixed valuation
    /// of the globals*; the verifier existentially searches the valuation
    /// through the added registers, matching `∃z̄ ¬φ_f ≡ ¬∀z̄ φ_f`.
    pub fn negated(&self) -> LtlFo {
        LtlFo {
            formula: self.formula.negated(),
            props: self.props.clone(),
            prop_names: self.prop_names.clone(),
        }
    }
}

impl fmt::Display for LtlFo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nz = self.num_globals();
        if nz > 0 {
            write!(f, "∀z1..z{nz} ")?;
        }
        let pretty = self
            .formula
            .map_props(&|i: &u32| self.prop_names[*i as usize].clone());
        write!(f, "{pretty}")?;
        for (n, q) in self.prop_names.iter().zip(self.props.iter()) {
            write!(f, " [{n} ≡ {q}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_data::QfTerm;

    #[test]
    fn build_and_validate() {
        let f = LtlFo::new(
            "G (moves -> X moves)",
            [("moves", Qf::neq(QfTerm::x(0), QfTerm::y(0)))],
        )
        .unwrap();
        assert_eq!(f.props.len(), 1);
        assert!(f.validate(&Schema::empty(), 1).is_ok());
        assert!(f.validate(&Schema::empty(), 0).is_err());
    }

    #[test]
    fn unknown_prop_rejected() {
        assert!(LtlFo::new("G p", []).is_err());
    }

    #[test]
    fn duplicate_prop_use_shares_index() {
        let f = LtlFo::new("p & X p", [("p", Qf::Eq(QfTerm::x(0), QfTerm::x(0)))]).unwrap();
        assert_eq!(f.props.len(), 1);
    }

    #[test]
    fn globals_counted_and_eliminated() {
        let f = LtlFo::new("G p", [("p", Qf::neq(QfTerm::x(0), QfTerm::z(1)))]).unwrap();
        assert_eq!(f.num_globals(), 2);
        let g = f.eliminate_globals(3);
        assert_eq!(g.num_globals(), 0);
        // z2 became x5 (base 3 + index 1)
        assert_eq!(g.props[0], Qf::neq(QfTerm::x(0), QfTerm::x(4)));
    }

    #[test]
    fn display_shows_interpretation() {
        let f = LtlFo::new("F done", [("done", Qf::Eq(QfTerm::x(0), QfTerm::y(0)))]).unwrap();
        let s = f.to_string();
        assert!(s.contains("done"));
        assert!(s.contains("≡"));
    }
}
