//! Translation of LTL to generalized Büchi automata (the classic
//! Gerth–Peled–Vardi–Wolper tableau expansion).
//!
//! The output automaton's states carry [`Guard`]s: the propositions each
//! state requires true and false at its position.
//! The automaton is instantiated against a concrete ω-word (or a Büchi
//! automaton of control traces) by evaluating the guards per position —
//! this is how Theorem 12's verification pipeline plugs LTL-FO propositions
//! (decided by complete transition types) into the product construction.

use crate::ltl::Ltl;
use rega_automata::{Lasso, Nba};
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// The propositional requirements of an atom: `pos` must be true, `neg`
/// must be false; other propositions are unconstrained.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Guard<P> {
    /// Propositions required true.
    pub pos: Vec<P>,
    /// Propositions required false.
    pub neg: Vec<P>,
}

impl<P> Guard<P> {
    /// Evaluates the guard under a truth assignment.
    pub fn eval(&self, assign: &impl Fn(&P) -> bool) -> bool {
        self.pos.iter().all(assign) && self.neg.iter().all(|p| !assign(p))
    }
}

/// A guard-labeled generalized Büchi automaton for an LTL formula.
///
/// A run over a word `w` is a sequence of states `a_0 a_1 …` with
/// `a_{i+1} ∈ succ(a_i)`, `a_0` initial, `w, i ⊨ guard(a_i)` for all `i`,
/// and every acceptance set visited infinitely often. The automaton accepts
/// exactly the models of the formula.
#[derive(Clone, Debug)]
pub struct LtlAutomaton<P> {
    /// Guard of each state.
    pub guards: Vec<Guard<P>>,
    /// Successor states of each state.
    pub succ: Vec<Vec<usize>>,
    /// Initial states.
    pub inits: Vec<usize>,
    /// Acceptance sets (one per Until subformula): `acc[i][s]`.
    pub acc: Vec<Vec<bool>>,
}

/// Translates an LTL formula (any form; NNF is computed internally) into a
/// guard-labeled generalized Büchi automaton, using the classic
/// Gerth–Peled–Vardi–Wolper *expand* construction. GPVW produces automata
/// close to minimal in practice, which matters downstream: the verifier
/// multiplies this automaton into the control-trace automaton (Theorem 12).
pub fn ltl_to_automaton<P: Clone + Eq + Hash + Ord>(formula: &Ltl<P>) -> LtlAutomaton<P> {
    let nnf = formula.nnf();

    // GPVW node. Formula sets are `Vec` with membership checks (Ltl<P>
    // has no `Ord`); node merging uses interned-formula canonical keys.
    #[derive(Clone)]
    struct VNode<P> {
        incoming: BTreeSet<usize>,
        new: Vec<Ltl<P>>,
        old: Vec<Ltl<P>>,
        next: Vec<Ltl<P>>,
    }
    fn insert_unique<P: Clone + Eq>(v: &mut Vec<Ltl<P>>, f: &Ltl<P>) {
        if !v.contains(f) {
            v.push(f.clone());
        }
    }
    /// Canonical form of a formula set for node merging: sorted by an
    /// arbitrary-but-stable total order derived from a textual encoding.
    fn canon<P: Clone + Eq + Hash>(v: &[Ltl<P>], enc: &mut impl FnMut(&Ltl<P>) -> u64) -> Vec<u64> {
        let mut keys: Vec<u64> = v.iter().map(&mut *enc).collect();
        keys.sort_unstable();
        keys
    }

    // Interned formula ids for canonical keys.
    let mut formula_ids: HashMap<Ltl<P>, u64> = HashMap::new();
    let mut enc = move |f: &Ltl<P>| -> u64 {
        let next = formula_ids.len() as u64;
        *formula_ids.entry(f.clone()).or_insert(next)
    };

    let mut vnodes: Vec<VNode<P>> = Vec::new();
    let mut vkeys: HashMap<(Vec<u64>, Vec<u64>), usize> = HashMap::new();
    let mut stack: Vec<VNode<P>> = vec![VNode {
        incoming: BTreeSet::from([usize::MAX]),
        new: vec![nnf.clone()],
        old: Vec::new(),
        next: Vec::new(),
    }];

    while let Some(mut node) = stack.pop() {
        match node.new.pop() {
            None => {
                // Node finished: merge with an existing (old, next) twin or
                // register it and spawn its successor.
                let key = (canon(&node.old, &mut enc), canon(&node.next, &mut enc));
                if let Some(&id) = vkeys.get(&key) {
                    let inc = node.incoming.clone();
                    vnodes[id].incoming.extend(inc);
                } else {
                    let id = vnodes.len();
                    vkeys.insert(key, id);
                    vnodes.push(node.clone());
                    stack.push(VNode {
                        incoming: BTreeSet::from([id]),
                        new: node.next.clone(),
                        old: Vec::new(),
                        next: Vec::new(),
                    });
                }
            }
            Some(f) => match &f {
                Ltl::False => { /* discard node */ }
                Ltl::True => {
                    insert_unique(&mut node.old, &f);
                    stack.push(node);
                }
                Ltl::Prop(_) => {
                    // Contradiction with ¬p already in old?
                    let negated = Ltl::Not(Box::new(f.clone()));
                    if node.old.contains(&negated) {
                        // discard
                    } else {
                        insert_unique(&mut node.old, &f);
                        stack.push(node);
                    }
                }
                Ltl::Not(inner) => {
                    debug_assert!(matches!(**inner, Ltl::Prop(_)), "NNF");
                    if node.old.contains(inner) {
                        // discard (p and ¬p)
                    } else {
                        insert_unique(&mut node.old, &f);
                        stack.push(node);
                    }
                }
                Ltl::And(a, b) => {
                    insert_unique(&mut node.old, &f);
                    if !node.old.contains(a) {
                        node.new.push((**a).clone());
                    }
                    if !node.old.contains(b) {
                        node.new.push((**b).clone());
                    }
                    stack.push(node);
                }
                Ltl::Or(a, b) => {
                    insert_unique(&mut node.old, &f);
                    let mut left = node.clone();
                    if !left.old.contains(a) {
                        left.new.push((**a).clone());
                    }
                    let mut right = node;
                    if !right.old.contains(b) {
                        right.new.push((**b).clone());
                    }
                    stack.push(left);
                    stack.push(right);
                }
                Ltl::Next(a) => {
                    insert_unique(&mut node.old, &f);
                    insert_unique(&mut node.next, a);
                    stack.push(node);
                }
                Ltl::Until(a, b) => {
                    insert_unique(&mut node.old, &f);
                    // gUh = h ∨ (g ∧ X(gUh))
                    let mut left = node.clone();
                    if !left.old.contains(a) {
                        left.new.push((**a).clone());
                    }
                    insert_unique(&mut left.next, &f);
                    let mut right = node;
                    if !right.old.contains(b) {
                        right.new.push((**b).clone());
                    }
                    stack.push(left);
                    stack.push(right);
                }
                Ltl::Release(a, b) => {
                    insert_unique(&mut node.old, &f);
                    // gRh = h ∧ (g ∨ X(gRh))
                    let mut left = node.clone();
                    if !left.old.contains(b) {
                        left.new.push((**b).clone());
                    }
                    insert_unique(&mut left.next, &f);
                    let mut right = node;
                    if !right.old.contains(a) {
                        right.new.push((**a).clone());
                    }
                    if !right.old.contains(b) {
                        right.new.push((**b).clone());
                    }
                    stack.push(left);
                    stack.push(right);
                }
                Ltl::Finally(_) | Ltl::Globally(_) => unreachable!("NNF has no F/G"),
            },
        }
    }

    // Assemble the guard-labeled automaton.
    let n = vnodes.len();
    let mut guards = Vec::with_capacity(n);
    for node in &vnodes {
        let mut g = Guard {
            pos: Vec::new(),
            neg: Vec::new(),
        };
        for f in &node.old {
            match f {
                Ltl::Prop(p) => g.pos.push(p.clone()),
                Ltl::Not(inner) => {
                    if let Ltl::Prop(p) = &**inner {
                        g.neg.push(p.clone());
                    }
                }
                _ => {}
            }
        }
        g.pos.sort();
        g.pos.dedup();
        g.neg.sort();
        g.neg.dedup();
        guards.push(g);
    }
    let mut succ = vec![Vec::new(); n];
    let mut inits = Vec::new();
    for (id, node) in vnodes.iter().enumerate() {
        for &src in &node.incoming {
            if src == usize::MAX {
                inits.push(id);
            } else {
                succ[src].push(id);
            }
        }
    }
    // Acceptance sets: one per Until subformula of the NNF.
    let mut untils: Vec<(Ltl<P>, Ltl<P>)> = Vec::new();
    fn collect_untils<P: Clone + Eq>(f: &Ltl<P>, out: &mut Vec<(Ltl<P>, Ltl<P>)>) {
        match f {
            Ltl::Until(a, b) => {
                let pair = ((**a).clone(), (**b).clone());
                if !out.contains(&pair) {
                    out.push(pair);
                }
                collect_untils(a, out);
                collect_untils(b, out);
            }
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Release(a, b) => {
                collect_untils(a, out);
                collect_untils(b, out);
            }
            Ltl::Not(a) | Ltl::Next(a) | Ltl::Finally(a) | Ltl::Globally(a) => {
                collect_untils(a, out)
            }
            _ => {}
        }
    }
    collect_untils(&nnf, &mut untils);
    let acc: Vec<Vec<bool>> = untils
        .iter()
        .map(|(a, b)| {
            let u = Ltl::Until(Box::new(a.clone()), Box::new(b.clone()));
            vnodes
                .iter()
                .map(|node| !node.old.contains(&u) || node.old.contains(b))
                .collect()
        })
        .collect();

    LtlAutomaton {
        guards,
        succ,
        inits,
        acc,
    }
}

impl<P: Clone + Eq + Hash + Ord + std::fmt::Debug> LtlAutomaton<P> {
    /// Instantiates the automaton against a concrete alphabet: `labels(l, p)`
    /// gives the truth of proposition `p` when the position carries letter
    /// `l`. The result is an NBA over `L` accepting exactly the words whose
    /// induced proposition sequences satisfy the formula.
    pub fn instantiate<L: Clone + Eq + Hash + Ord + std::fmt::Debug>(
        &self,
        alphabet: &[L],
        labels: impl Fn(&L, &P) -> bool,
    ) -> Nba<L> {
        // NGBA with guard evaluation folded into transitions: entering state
        // `b` on letter `l` requires guard(b) to hold of `l`... but a guard
        // speaks about the position of the *current* atom. With the standard
        // convention (atom a_i at position i, guard checked against w[i]),
        // we make NBA states = atoms, and the transition a --l--> b exists
        // iff guard(a) holds of l and b ∈ succ(a). An extra pre-initial
        // state dispatches into initial atoms.
        let m = self.acc.len().max(1);
        let n = self.guards.len();
        // State encoding: 0 = pre-init; 1 + atom * m + counter.
        let id = |atom: usize, cnt: usize| 1 + atom * m + cnt;
        let mut nba = Nba::new(alphabet.to_vec(), 1 + n * m);
        nba.set_init(0);
        let guard_ok: Vec<Vec<bool>> = alphabet
            .iter()
            .map(|l| {
                self.guards
                    .iter()
                    .map(|g| g.eval(&|p| labels(l, p)))
                    .collect()
            })
            .collect();
        let advance = |atom: usize, cnt: usize| -> usize {
            if self.acc.is_empty() {
                return 0;
            }
            if self.acc[cnt][atom] {
                (cnt + 1) % m
            } else {
                cnt
            }
        };
        for (li, l) in alphabet.iter().enumerate() {
            // From pre-init: guess the initial atom a_0 whose guard holds of
            // the first letter; the counter starts at 0.
            for &a0 in &self.inits {
                if guard_ok[li][a0] {
                    nba.add_transition(0, l, id(a0, 0));
                }
            }
            // From (a, cnt): move to a successor atom b whose guard holds of
            // the next letter; the counter advances based on the *source*
            // atom (standard counter degeneralization).
            for a in 0..n {
                for cnt in 0..m {
                    let j = advance(a, cnt);
                    for &b in &self.succ[a] {
                        if guard_ok[li][b] {
                            nba.add_transition(id(a, cnt), l, id(b, j));
                        }
                    }
                }
            }
        }
        // Accepting states: (a, 0) with a ∈ Acc_0 — visited infinitely often
        // iff the counter cycles forever iff every set is visited infinitely
        // often. With no Until formulas every state is accepting.
        for a in 0..n {
            for cnt in 0..m {
                let accepting = if self.acc.is_empty() {
                    true
                } else {
                    cnt == 0 && self.acc[0][a]
                };
                nba.set_accepting(id(a, cnt), accepting);
            }
        }
        nba
    }

    /// Reference check on an ultimately periodic word of letters, using the
    /// instantiated NBA.
    pub fn accepts_lasso<L: Clone + Eq + Hash + Ord + std::fmt::Debug>(
        &self,
        word: &Lasso<L>,
        labels: impl Fn(&L, &P) -> bool,
    ) -> bool {
        let mut alphabet: Vec<L> = word
            .prefix
            .iter()
            .chain(word.cycle.iter())
            .cloned()
            .collect();
        alphabet.sort();
        alphabet.dedup();
        self.instantiate(&alphabet, labels).accepts_lasso(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Letters are sets of true propositions encoded as bitmasks over
    /// {p=1, q=2}.
    #[allow(clippy::ptr_arg)] // must match `Fn(&L, &P)` with `P = String`
    fn labels(l: &u8, p: &String) -> bool {
        match p.as_str() {
            "p" => l & 1 != 0,
            "q" => l & 2 != 0,
            _ => false,
        }
    }

    fn check(formula: &str, word: &Lasso<u8>) -> bool {
        let f = Ltl::parse(formula).unwrap();
        let auto = ltl_to_automaton(&f);
        auto.accepts_lasso(word, labels)
    }

    #[test]
    fn globally_p() {
        assert!(check("G p", &Lasso::periodic(vec![1])));
        assert!(check("G p", &Lasso::periodic(vec![1, 3])));
        assert!(!check("G p", &Lasso::periodic(vec![1, 2])));
        assert!(!check("G p", &Lasso::new(vec![0], vec![1])));
    }

    #[test]
    fn finally_q() {
        assert!(check("F q", &Lasso::new(vec![0, 0, 2], vec![0])));
        assert!(!check("F q", &Lasso::periodic(vec![0, 1])));
    }

    #[test]
    fn until_formula() {
        assert!(check("p U q", &Lasso::new(vec![1, 1, 2], vec![0])));
        assert!(check("p U q", &Lasso::new(vec![2], vec![0])));
        assert!(!check("p U q", &Lasso::new(vec![1, 0, 2], vec![0])));
        assert!(!check("p U q", &Lasso::periodic(vec![1])));
    }

    #[test]
    fn next_formula() {
        assert!(check("X p", &Lasso::new(vec![0, 1], vec![0])));
        assert!(!check("X p", &Lasso::new(vec![1, 0], vec![1])));
        assert!(check("X X q", &Lasso::new(vec![0, 0], vec![2])));
    }

    #[test]
    fn response_property() {
        // G (p -> F q): every p followed eventually by q.
        let good = Lasso::periodic(vec![1, 0, 2]);
        assert!(check("G (p -> F q)", &good));
        let bad = Lasso::new(vec![2, 1], vec![0]); // p at pos 1, no q after
        assert!(!check("G (p -> F q)", &bad));
    }

    #[test]
    fn release_formula() {
        // false R p == G p
        assert!(check("false R p", &Lasso::periodic(vec![1])));
        assert!(!check("false R p", &Lasso::periodic(vec![1, 0])));
        // q R p: p holds up to and including the first q.
        assert!(check("q R p", &Lasso::new(vec![1, 1, 3], vec![0])));
        assert!(!check("q R p", &Lasso::new(vec![1, 0, 3], vec![0])));
    }

    #[test]
    fn negation_and_boolean() {
        assert!(check("!p", &Lasso::periodic(vec![2])));
        assert!(!check("!p", &Lasso::periodic(vec![1])));
        assert!(check("p | q", &Lasso::periodic(vec![2])));
        assert!(check("p & q", &Lasso::periodic(vec![3])));
        assert!(!check("p & q", &Lasso::periodic(vec![1])));
    }

    #[test]
    fn agreement_with_reference_semantics() {
        // Cross-validate automaton vs eval_lasso on a batch of formulas and
        // lassos.
        let formulas = [
            "G p",
            "F q",
            "p U q",
            "X p",
            "G (p -> F q)",
            "G F p",
            "F G q",
            "p U (q U p)",
            "(G p) | (F q)",
        ];
        let words = [
            Lasso::periodic(vec![0u8]),
            Lasso::periodic(vec![1]),
            Lasso::periodic(vec![2]),
            Lasso::periodic(vec![3]),
            Lasso::periodic(vec![1, 2]),
            Lasso::new(vec![1, 1], vec![2, 0]),
            Lasso::new(vec![0, 3], vec![1]),
            Lasso::new(vec![2], vec![0, 1]),
        ];
        for fs in formulas {
            let f = Ltl::parse(fs).unwrap();
            let auto = ltl_to_automaton(&f);
            for w in &words {
                let by_auto = auto.accepts_lasso(w, labels);
                let by_ref =
                    f.eval_lasso(w.prefix.len(), w.cycle.len(), &|m, p| labels(w.at(m), p));
                assert_eq!(by_auto, by_ref, "formula {fs} on word {w}");
            }
        }
    }
}
