//! Trace vocabulary: register, control, and state traces (Section 2).
//!
//! For a run `ρ = ((d̄_n, q_n, δ_n))`:
//! * the *register trace* is `(d̄_n)` — sequences of value tuples;
//! * the *control trace* is `((q_n, δ_n))` — here represented by the
//!   transition fired at each position ([`TransId`]), which determines both
//!   the state and the type;
//! * the *state trace* is `(q_n)`.

use crate::automaton::{RegisterAutomaton, StateId, TransId};
use rega_automata::Lasso;
use rega_data::Value;

/// Converts a control trace (transitions) to the corresponding state trace.
pub fn control_to_state(ra: &RegisterAutomaton, control: &Lasso<TransId>) -> Lasso<StateId> {
    control.map(|&t| ra.transition(t).from)
}

/// For a *state-driven* automaton, the state trace determines the control
/// trace: each state has a unique outgoing type, so the transition fired at
/// position `n` is determined by `(q_n, q_{n+1})`. Returns `None` if some
/// consecutive pair has no transition.
pub fn state_to_control(ra: &RegisterAutomaton, states: &Lasso<StateId>) -> Option<Lasso<TransId>> {
    let n = states.prefix_len() + states.period();
    let find = |m: usize| -> Option<TransId> {
        let cur = *states.at(m);
        let next = *states.at(m + 1);
        ra.outgoing(cur)
            .iter()
            .copied()
            .find(|&t| ra.transition(t).to == next)
    };
    let mut prefix = Vec::with_capacity(states.prefix_len());
    for m in 0..states.prefix_len() {
        prefix.push(find(m)?);
    }
    let mut cycle = Vec::with_capacity(states.period());
    for m in states.prefix_len()..n {
        cycle.push(find(m)?);
    }
    Some(Lasso::new(prefix, cycle))
}

/// Compares two finite register traces (sequences of value tuples).
pub fn traces_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a == b
}

/// Whether two finite register traces are equal *up to a value renaming*
/// (an injection): register automata cannot distinguish isomorphic traces.
pub fn traces_isomorphic(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (ra, rb) in a.iter().zip(b.iter()) {
        if ra.len() != rb.len() {
            return false;
        }
        for (&va, &vb) in ra.iter().zip(rb.iter()) {
            if *fwd.entry(va).or_insert(vb) != vb {
                return false;
            }
            if *bwd.entry(vb).or_insert(va) != va {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_data::{Schema, SigmaType};

    fn ab_automaton() -> RegisterAutomaton {
        let mut a = RegisterAutomaton::new(0, Schema::empty());
        let p = a.add_state("p");
        let q = a.add_state("q");
        a.set_initial(p);
        a.set_accepting(p);
        a.add_transition(p, SigmaType::empty(0), q).unwrap();
        a.add_transition(q, SigmaType::empty(0), p).unwrap();
        a
    }

    #[test]
    fn control_state_round_trip() {
        let ra = ab_automaton();
        let control = Lasso::periodic(vec![TransId(0), TransId(1)]);
        let states = control_to_state(&ra, &control);
        assert_eq!(states.cycle, vec![StateId(0), StateId(1)]);
        let back = state_to_control(&ra, &states).unwrap();
        assert_eq!(back.cycle, control.cycle);
    }

    #[test]
    fn state_to_control_fails_on_missing_edge() {
        let ra = ab_automaton();
        // p p p ... but there is no p -> p transition
        let states = Lasso::periodic(vec![StateId(0)]);
        assert!(state_to_control(&ra, &states).is_none());
    }

    #[test]
    fn isomorphic_traces() {
        let a = vec![vec![Value(1)], vec![Value(2)], vec![Value(1)]];
        let b = vec![vec![Value(7)], vec![Value(9)], vec![Value(7)]];
        let c = vec![vec![Value(7)], vec![Value(9)], vec![Value(9)]];
        assert!(traces_isomorphic(&a, &b));
        assert!(!traces_isomorphic(&a, &c));
        assert!(traces_equal(&a, &a));
        assert!(!traces_equal(&a, &b));
    }

    #[test]
    fn isomorphic_requires_injection() {
        // two different values mapping to the same target is not allowed
        let a = vec![vec![Value(1), Value(2)]];
        let b = vec![vec![Value(5), Value(5)]];
        assert!(!traces_isomorphic(&a, &b));
    }
}
