#![warn(missing_docs)]

//! Register automata and their extensions, after *Projection Views of
//! Register Automata* (Segoufin & Vianu, PODS 2020).
//!
//! The crate provides the three automaton models of the paper:
//!
//! * [`RegisterAutomaton`] — database-driven register automata with Büchi
//!   acceptance (Section 2);
//! * [`ExtendedAutomaton`] — register automata augmented with global regular
//!   (in)equality constraints (Section 3);
//! * [`EnhancedAutomaton`] — extended automata further augmented with
//!   finiteness and tuple-inequality constraints (Section 6);
//!
//! together with runs and traces ([`run`], [`traces`]), symbolic control
//! traces and their Büchi automata ([`symbolic`]), the completion and
//! state-driven normal forms ([`transform`]), incremental global-constraint
//! monitors ([`monitor`]), run search/simulation over concrete databases
//! ([`simulate`]), and executable versions of the paper's running examples
//! ([`paper`]).

pub mod automaton;
pub mod dot;
pub mod enhanced;
pub mod error;
pub mod extended;
pub mod generate;
pub mod govern;
pub mod monitor;
pub mod paper;
pub mod run;
pub mod simulate;
pub mod spec;
pub mod symbolic;
pub mod traces;
pub mod transform;

pub use automaton::{RegisterAutomaton, StateId, TransId, Transition};
pub use enhanced::{EnhancedAutomaton, FinitenessConstraint, PositionSelector, TupleInequality};
pub use error::CoreError;
pub use extended::{ConstraintKind, ExtendedAutomaton, GlobalConstraint};
pub use govern::{Budget, BudgetSpec, CancelToken, GovernError};
pub use run::{Config, FiniteRun, LassoRun};
