//! The register automaton model (Section 2).
//!
//! A register automaton is a tuple `A = (k, σ, Q, I, F, Δ)`: `k` registers,
//! a relational signature `σ`, states `Q` with initial states `I` and Büchi
//! (final) states `F`, and transitions `Δ` — triples `(p, δ, q)` whose
//! σ-type `δ` constrains the registers before (`x̄`) and after (`ȳ`) the
//! transition fires, possibly querying the database.

use crate::error::CoreError;
use rega_data::{Schema, SigmaType};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a state of a [`RegisterAutomaton`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a transition of a [`RegisterAutomaton`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransId(pub u32);

impl TransId {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A transition `(p, δ, q)`.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Source state `p`.
    pub from: StateId,
    /// The σ-type `δ` over `x̄ ∪ ȳ` (and constants).
    pub ty: SigmaType,
    /// Target state `q`.
    pub to: StateId,
}

/// A register automaton `(k, σ, Q, I, F, Δ)` with Büchi acceptance.
#[derive(Clone, Debug)]
pub struct RegisterAutomaton {
    k: u16,
    schema: Schema,
    state_names: Vec<String>,
    initial: BTreeSet<StateId>,
    accepting: BTreeSet<StateId>,
    transitions: Vec<Transition>,
    /// Outgoing transitions per state.
    out: Vec<Vec<TransId>>,
}

impl RegisterAutomaton {
    /// Creates an automaton with `k` registers over `schema`, initially with
    /// no states.
    pub fn new(k: u16, schema: Schema) -> Self {
        RegisterAutomaton {
            k,
            schema,
            state_names: Vec::new(),
            initial: BTreeSet::new(),
            accepting: BTreeSet::new(),
            transitions: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Number of registers `k`.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The database schema `σ`.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether the automaton has no database (empty schema).
    pub fn has_no_database(&self) -> bool {
        self.schema.is_empty()
    }

    /// Adds a state with a display name, returning its id.
    pub fn add_state(&mut self, name: &str) -> StateId {
        self.state_names.push(name.to_string());
        self.out.push(Vec::new());
        StateId(self.state_names.len() as u32 - 1)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_names.len() as u32).map(StateId)
    }

    /// The display name of a state.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.idx()]
    }

    /// Looks up a state by name (first match).
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId(i as u32))
    }

    /// Marks a state initial.
    pub fn set_initial(&mut self, s: StateId) {
        self.initial.insert(s);
    }

    /// Marks a state accepting (member of the Büchi set `F`).
    pub fn set_accepting(&mut self, s: StateId) {
        self.accepting.insert(s);
    }

    /// The initial states `I`.
    pub fn initial_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.initial.iter().copied()
    }

    /// The accepting states `F`.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting.iter().copied()
    }

    /// Whether `s` is initial.
    pub fn is_initial(&self, s: StateId) -> bool {
        self.initial.contains(&s)
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting.contains(&s)
    }

    /// Adds a transition `(from, δ, to)`. The type is validated (register
    /// ranges, arities, satisfiability).
    pub fn add_transition(
        &mut self,
        from: StateId,
        ty: SigmaType,
        to: StateId,
    ) -> Result<TransId, CoreError> {
        if from.idx() >= self.num_states() {
            return Err(CoreError::UnknownState(from.0));
        }
        if to.idx() >= self.num_states() {
            return Err(CoreError::UnknownState(to.0));
        }
        if ty.k() != self.k {
            return Err(CoreError::RegisterCountMismatch {
                expected: self.k,
                got: ty.k(),
            });
        }
        ty.validate(&self.schema)?;
        ty.analyze(&self.schema)?; // must be satisfiable
        let id = TransId(self.transitions.len() as u32);
        self.out[from.idx()].push(id);
        self.transitions.push(Transition { from, ty, to });
        Ok(id)
    }

    /// Adds a transition like [`RegisterAutomaton::add_transition`], but
    /// runs the satisfiability validation through a shared
    /// [`SatCache`](rega_data::SatCache) (tied to this automaton's schema),
    /// so constructions that duplicate the same type across many
    /// transitions — completion, the state-driven normal form, the
    /// projection skeletons — analyze each distinct type once.
    pub fn add_transition_interned(
        &mut self,
        from: StateId,
        ty: SigmaType,
        to: StateId,
        cache: &rega_data::SatCache,
    ) -> Result<TransId, CoreError> {
        if from.idx() >= self.num_states() {
            return Err(CoreError::UnknownState(from.0));
        }
        if to.idx() >= self.num_states() {
            return Err(CoreError::UnknownState(to.0));
        }
        if ty.k() != self.k {
            return Err(CoreError::RegisterCountMismatch {
                expected: self.k,
                got: ty.k(),
            });
        }
        // `analyze` re-validates term ranges and arities internally, so the
        // cached result covers both checks of the direct path.
        cache.analyze(&ty)?; // must be satisfiable
        let id = TransId(self.transitions.len() as u32);
        self.out[from.idx()].push(id);
        self.transitions.push(Transition { from, ty, to });
        Ok(id)
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// All transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransId> {
        (0..self.transitions.len() as u32).map(TransId)
    }

    /// The transition with the given id.
    pub fn transition(&self, t: TransId) -> &Transition {
        &self.transitions[t.idx()]
    }

    /// Outgoing transitions of a state.
    pub fn outgoing(&self, s: StateId) -> &[TransId] {
        &self.out[s.idx()]
    }

    /// Whether the automaton is *state-driven*: each state has at most one
    /// outgoing type (possibly used by several transitions).
    pub fn is_state_driven(&self) -> bool {
        self.out.iter().all(|ts| {
            let mut ty: Option<&SigmaType> = None;
            ts.iter().all(|t| {
                let this = &self.transitions[t.idx()].ty;
                match ty {
                    None => {
                        ty = Some(this);
                        true
                    }
                    Some(prev) => prev == this,
                }
            })
        })
    }

    /// The unique outgoing type of a state of a state-driven automaton.
    pub fn state_type(&self, s: StateId) -> Option<&SigmaType> {
        self.out[s.idx()]
            .first()
            .map(|t| &self.transitions[t.idx()].ty)
    }

    /// Whether every transition type is complete.
    pub fn is_complete(&self) -> Result<bool, CoreError> {
        for t in &self.transitions {
            if !t.ty.is_complete(&self.schema)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Total size measure: states + transitions + literals (used by the
    /// blow-up experiments of E2).
    pub fn size(&self) -> usize {
        self.num_states()
            + self.num_transitions()
            + self.transitions.iter().map(|t| t.ty.len()).sum::<usize>()
    }
}

impl fmt::Display for RegisterAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "register automaton: k={}, {} states, {} transitions",
            self.k,
            self.num_states(),
            self.num_transitions()
        )?;
        for s in self.states() {
            let mut flags = String::new();
            if self.is_initial(s) {
                flags.push_str(" [init]");
            }
            if self.is_accepting(s) {
                flags.push_str(" [acc]");
            }
            writeln!(f, "  state {}{}", self.state_name(s), flags)?;
            for &t in self.outgoing(s) {
                let tr = self.transition(t);
                writeln!(f, "    --[{}]--> {}", tr.ty, self.state_name(tr.to))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rega_data::{Literal, Term};

    fn two_state() -> RegisterAutomaton {
        let mut a = RegisterAutomaton::new(1, Schema::empty());
        let p = a.add_state("p");
        let q = a.add_state("q");
        a.set_initial(p);
        a.set_accepting(p);
        a.add_transition(p, SigmaType::empty(1), q).unwrap();
        a.add_transition(q, SigmaType::empty(1), p).unwrap();
        a
    }

    #[test]
    fn build_and_query() {
        let a = two_state();
        assert_eq!(a.num_states(), 2);
        assert_eq!(a.num_transitions(), 2);
        let p = a.state_by_name("p").unwrap();
        assert!(a.is_initial(p));
        assert!(a.is_accepting(p));
        assert_eq!(a.outgoing(p).len(), 1);
    }

    #[test]
    fn rejects_unsatisfiable_type() {
        let mut a = RegisterAutomaton::new(1, Schema::empty());
        let p = a.add_state("p");
        let bad = SigmaType::new(
            1,
            [
                Literal::eq(Term::x(0), Term::y(0)),
                Literal::neq(Term::x(0), Term::y(0)),
            ],
        );
        assert!(a.add_transition(p, bad, p).is_err());
    }

    #[test]
    fn rejects_wrong_register_count() {
        let mut a = RegisterAutomaton::new(1, Schema::empty());
        let p = a.add_state("p");
        assert!(matches!(
            a.add_transition(p, SigmaType::empty(2), p),
            Err(CoreError::RegisterCountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unknown_state() {
        let mut a = RegisterAutomaton::new(1, Schema::empty());
        let p = a.add_state("p");
        assert!(a
            .add_transition(p, SigmaType::empty(1), StateId(7))
            .is_err());
    }

    #[test]
    fn state_driven_detection() {
        let a = two_state();
        assert!(a.is_state_driven());
        let mut b = two_state();
        let p = b.state_by_name("p").unwrap();
        let t = SigmaType::new(1, [Literal::eq(Term::x(0), Term::y(0))]);
        b.add_transition(p, t, p).unwrap();
        assert!(!b.is_state_driven());
    }

    #[test]
    fn completeness_detection() {
        let a = two_state();
        assert!(!a.is_complete().unwrap()); // empty type is not complete
        let mut b = RegisterAutomaton::new(1, Schema::empty());
        let p = b.add_state("p");
        b.set_initial(p);
        b.set_accepting(p);
        let t = SigmaType::new(1, [Literal::eq(Term::x(0), Term::y(0))]);
        b.add_transition(p, t, p).unwrap();
        assert!(b.is_complete().unwrap());
    }

    #[test]
    fn display_contains_names() {
        let a = two_state();
        let s = a.to_string();
        assert!(s.contains("state p"));
        assert!(s.contains("[init]"));
    }
}
