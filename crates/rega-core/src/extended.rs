//! Extended register automata (Section 3): register automata with *global*
//! regular (in)equality constraints.
//!
//! An extended automaton is a pair `𝒜 = (A, Σ)` where `Σ` is a finite set of
//! regular expressions over the states `Q`, each written `e=ᵢⱼ` or `e≠ᵢⱼ`.
//! A run satisfies `Σ` if for all positions `n ≤ m`: whenever the factor
//! `q_n … q_m` belongs to `e=ᵢⱼ` (resp. `e≠ᵢⱼ`), the values `d_n[i]` and
//! `d_m[j]` are equal (resp. distinct).

use crate::automaton::{RegisterAutomaton, StateId};
use crate::error::CoreError;
use crate::monitor::ConstraintMonitor;
use crate::run::LassoRun;
use rega_automata::{Dfa, Regex};
use rega_data::{Database, RegIdx};
use std::collections::HashMap;
use std::fmt;

/// Whether a global constraint demands equality or inequality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `e=ᵢⱼ` — matched endpoints must hold equal values.
    Equal,
    /// `e≠ᵢⱼ` — matched endpoints must hold distinct values.
    NotEqual,
}

/// A compiled global constraint `eᵢⱼ`.
#[derive(Clone, Debug)]
pub struct GlobalConstraint {
    /// Equality or inequality.
    pub kind: ConstraintKind,
    /// Source register `i` (value read at the factor's first position).
    pub i: RegIdx,
    /// Target register `j` (value read at the factor's last position).
    pub j: RegIdx,
    /// The defining regular expression over states, when the constraint was
    /// given as one (`None` for constraints built directly as automata,
    /// e.g. by the Lemma 21 constructions).
    pub regex: Option<Regex<StateId>>,
    /// The compiled monitor DFA over the automaton's full state alphabet.
    dfa: Dfa<StateId>,
    /// Per DFA state: whether an accepting state is still reachable (dead
    /// monitor runs are pruned).
    alive: Vec<bool>,
}

impl GlobalConstraint {
    /// The compiled DFA.
    pub fn dfa(&self) -> &Dfa<StateId> {
        &self.dfa
    }

    /// Whether a monitor run in this DFA state can still reach acceptance.
    pub fn is_alive(&self, dfa_state: usize) -> bool {
        self.alive[dfa_state]
    }
}

/// An extended register automaton `𝒜 = (A, Σ)`.
#[derive(Clone, Debug)]
pub struct ExtendedAutomaton {
    ra: RegisterAutomaton,
    constraints: Vec<GlobalConstraint>,
}

impl ExtendedAutomaton {
    /// Wraps a register automaton with an (initially empty) constraint set.
    /// With no constraints, the extended automaton has exactly the runs of
    /// `A`.
    pub fn new(ra: RegisterAutomaton) -> Self {
        ExtendedAutomaton {
            ra,
            constraints: Vec::new(),
        }
    }

    /// The underlying register automaton `A`.
    pub fn ra(&self) -> &RegisterAutomaton {
        &self.ra
    }

    /// The global constraints `Σ`.
    pub fn constraints(&self) -> &[GlobalConstraint] {
        &self.constraints
    }

    /// Number of registers.
    pub fn k(&self) -> u16 {
        self.ra.k()
    }

    /// Adds a global constraint given by a regular expression over states.
    pub fn add_constraint(
        &mut self,
        kind: ConstraintKind,
        i: RegIdx,
        j: RegIdx,
        regex: Regex<StateId>,
    ) -> Result<usize, CoreError> {
        let k = self.ra.k();
        for r in [i, j] {
            if r.0 >= k {
                return Err(CoreError::ConstraintRegisterOutOfRange { index: r.0, k });
            }
        }
        for s in regex.letters() {
            if s.idx() >= self.ra.num_states() {
                return Err(CoreError::ConstraintUnknownState(format!("q{}", s.0)));
            }
        }
        let alphabet: Vec<StateId> = self.ra.states().collect();
        let dfa = Dfa::from_regex(&regex, &alphabet);
        self.push_constraint(kind, i, j, Some(regex), dfa)
    }

    /// Adds a global constraint given directly as a (total) DFA over the
    /// automaton's states. Used by the projection constructions, whose
    /// constraints come out of subset constructions (Lemma 21) rather than
    /// textual expressions.
    pub fn add_constraint_dfa(
        &mut self,
        kind: ConstraintKind,
        i: RegIdx,
        j: RegIdx,
        dfa: Dfa<StateId>,
    ) -> Result<usize, CoreError> {
        let k = self.ra.k();
        for r in [i, j] {
            if r.0 >= k {
                return Err(CoreError::ConstraintRegisterOutOfRange { index: r.0, k });
            }
        }
        for s in self.ra.states() {
            if dfa.letter_index(&s).is_none() {
                return Err(CoreError::ConstraintUnknownState(format!(
                    "DFA alphabet is missing state `{}`",
                    self.ra.state_name(s)
                )));
            }
        }
        self.push_constraint(kind, i, j, None, dfa)
    }

    fn push_constraint(
        &mut self,
        kind: ConstraintKind,
        i: RegIdx,
        j: RegIdx,
        regex: Option<Regex<StateId>>,
        dfa: Dfa<StateId>,
    ) -> Result<usize, CoreError> {
        let alive = (0..dfa.num_states())
            .map(|s| dfa.can_accept_from(s))
            .collect();
        self.constraints.push(GlobalConstraint {
            kind,
            i,
            j,
            regex,
            dfa,
            alive,
        });
        Ok(self.constraints.len() - 1)
    }

    /// Adds a constraint from another automaton, re-based through the state
    /// surjection `old_of` (each of *this* automaton's states behaves like
    /// its image). Used when constructions refine the state space.
    pub fn add_lifted_constraint(
        &mut self,
        c: &GlobalConstraint,
        old_of: impl Fn(StateId) -> StateId,
    ) -> Result<usize, CoreError> {
        let new_alphabet: Vec<StateId> = self.ra.states().collect();
        let dfa = c.dfa.rebase_alphabet(new_alphabet, |s| old_of(*s));
        self.push_constraint(c.kind, c.i, c.j, None, dfa)
    }

    /// Adds a constraint from a textual regular expression whose atoms are
    /// state names, e.g. `"p1 p2* p1"`.
    pub fn add_constraint_str(
        &mut self,
        kind: ConstraintKind,
        i: RegIdx,
        j: RegIdx,
        expr: &str,
    ) -> Result<usize, CoreError> {
        let regex = Regex::parse(expr, |name| self.ra.state_by_name(name))
            .map_err(|e| CoreError::ConstraintUnknownState(e.to_string()))?;
        self.add_constraint(kind, i, j, regex)
    }

    /// Checks whether a lasso run is a run of the extended automaton over
    /// `db`: validity for the underlying register automaton (including
    /// Büchi acceptance) *and* satisfaction of all global constraints over
    /// the infinite unfolding.
    ///
    /// Constraint satisfaction over the infinite word is decided exactly:
    /// the monitor configuration evolves deterministically, the run is
    /// ultimately periodic, and the configuration space is finite (monitor
    /// states × values occurring in the run), so the monitor trajectory is
    /// itself eventually periodic; we iterate until a configuration repeats
    /// at the same loop phase.
    pub fn check_lasso_run(&self, db: &Database, run: &LassoRun) -> Result<(), CoreError> {
        run.validate(&self.ra, db)?;
        let mut monitor = ConstraintMonitor::new(self);
        let mut seen: HashMap<(usize, Vec<u8>), ()> = HashMap::new();
        let mut m = 0usize;
        loop {
            let cfg = run.config_at(m);
            if let Some(violation) = monitor.step(self, cfg.state, &cfg.regs) {
                return Err(CoreError::InvalidRun(format!(
                    "global constraint {} violated at position {} (register {} vs {})",
                    violation.constraint, m, violation.i, violation.j,
                )));
            }
            m += 1;
            if m >= run.loop_start {
                let phase = (m - run.loop_start) % run.period();
                let key = (phase, monitor.fingerprint());
                if seen.insert(key, ()).is_some() {
                    return Ok(());
                }
            }
        }
    }

    /// Whether a finite run prefix avoids violating any constraint *so far*
    /// (a prefix may of course still be doomed later).
    pub fn check_finite_prefix(
        &self,
        db: &Database,
        run: &crate::run::FiniteRun,
    ) -> Result<(), CoreError> {
        run.validate(&self.ra, db)?;
        let mut monitor = ConstraintMonitor::new(self);
        for (m, cfg) in run.configs.iter().enumerate() {
            if let Some(v) = monitor.step(self, cfg.state, &cfg.regs) {
                return Err(CoreError::InvalidRun(format!(
                    "global constraint {} violated at position {m}",
                    v.constraint
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ExtendedAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ra)?;
        for (n, c) in self.constraints.iter().enumerate() {
            let op = match c.kind {
                ConstraintKind::Equal => "=",
                ConstraintKind::NotEqual => "≠",
            };
            match &c.regex {
                Some(r) => writeln!(
                    f,
                    "  constraint {}: e{}[{},{}] = {}",
                    n,
                    op,
                    c.i.0 + 1,
                    c.j.0 + 1,
                    r.map(&|s: &StateId| self.ra.state_name(*s).to_string())
                )?,
                None => writeln!(
                    f,
                    "  constraint {}: e{}[{},{}] = <{}-state DFA>",
                    n,
                    op,
                    c.i.0 + 1,
                    c.j.0 + 1,
                    c.dfa.num_states()
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::run::Config;
    use rega_data::{Schema, Value};

    #[test]
    fn example5_constraint_accepts_constant_p1_value() {
        let ext = paper::example5();
        let db = Database::new(Schema::empty());
        let p1 = ext.ra().state_by_name("p1").unwrap();
        let p2 = ext.ra().state_by_name("p2").unwrap();
        // p1(d1) p2(d2) p2(d3) looping back to p1(d1): t ids from paper::example5
        let t_p1p2 = ext.ra().outgoing(p1)[0];
        let p2outs = ext.ra().outgoing(p2);
        let t_p2p2 = p2outs
            .iter()
            .copied()
            .find(|&t| ext.ra().transition(t).to == p2)
            .unwrap();
        let t_p2p1 = p2outs
            .iter()
            .copied()
            .find(|&t| ext.ra().transition(t).to == p1)
            .unwrap();
        let run = LassoRun::new(
            vec![
                Config::new(p1, vec![Value(1)]),
                Config::new(p2, vec![Value(2)]),
                Config::new(p2, vec![Value(3)]),
            ],
            vec![t_p1p2, t_p2p2, t_p2p1],
            0,
        );
        assert!(ext.check_lasso_run(&db, &run).is_ok());
    }

    #[test]
    fn example5_constraint_rejects_changing_p1_value() {
        let ext = paper::example5();
        let db = Database::new(Schema::empty());
        let p1 = ext.ra().state_by_name("p1").unwrap();
        let p2 = ext.ra().state_by_name("p2").unwrap();
        let t_p1p2 = ext.ra().outgoing(p1)[0];
        let p2outs = ext.ra().outgoing(p2);
        let t_p2p1 = p2outs
            .iter()
            .copied()
            .find(|&t| ext.ra().transition(t).to == p1)
            .unwrap();
        // p1(d1) p2(d2) p1(d3) p2(d2) looping: p1 values differ (1 vs 3).
        let run = LassoRun::new(
            vec![
                Config::new(p1, vec![Value(1)]),
                Config::new(p2, vec![Value(2)]),
                Config::new(p1, vec![Value(3)]),
                Config::new(p2, vec![Value(2)]),
            ],
            vec![t_p1p2, t_p2p1, t_p1p2, t_p2p1],
            0,
        );
        assert!(ext.check_lasso_run(&db, &run).is_err());
    }

    #[test]
    fn example7_all_distinct_rejects_lasso_repeats() {
        // Any lasso run of Example 7's automaton repeats values in the loop,
        // so it violates the all-distinct constraint.
        let ext = paper::example7();
        let db = Database::new(Schema::empty());
        let q = ext.ra().state_by_name("q").unwrap();
        let t = ext.ra().outgoing(q)[0];
        let run = LassoRun::new(
            vec![
                Config::new(q, vec![Value(1)]),
                Config::new(q, vec![Value(2)]),
            ],
            vec![t, t],
            0,
        );
        assert!(ext.check_lasso_run(&db, &run).is_err());
    }

    #[test]
    fn example7_prefix_with_distinct_values_ok() {
        let ext = paper::example7();
        let db = Database::new(Schema::empty());
        let q = ext.ra().state_by_name("q").unwrap();
        let t = ext.ra().outgoing(q)[0];
        let mut run = crate::run::FiniteRun::start(Config::new(q, vec![Value(1)]));
        for v in 2..10 {
            run.push(t, Config::new(q, vec![Value(v)]));
        }
        assert!(ext.check_finite_prefix(&db, &run).is_ok());
        // Repeating a value violates.
        run.push(t, Config::new(q, vec![Value(5)]));
        assert!(ext.check_finite_prefix(&db, &run).is_err());
    }

    #[test]
    fn constraint_validation() {
        let (ra, _) = paper::example1();
        let mut ext = ExtendedAutomaton::new(ra);
        assert!(ext
            .add_constraint_str(ConstraintKind::Equal, RegIdx(5), RegIdx(0), "q1")
            .is_err());
        assert!(ext
            .add_constraint_str(ConstraintKind::Equal, RegIdx(0), RegIdx(0), "nosuch")
            .is_err());
        assert!(ext
            .add_constraint_str(ConstraintKind::Equal, RegIdx(0), RegIdx(0), "q1 q2* q1")
            .is_ok());
    }
}
